//! A read-only file system backed by a (simulated) remote HTTP server, with a
//! block/page cache.
//!
//! The paper's LaTeX editor mounts a full TeX Live distribution this way: the
//! developer uploads the distribution to an HTTP server, and Browsix's file
//! system fetches individual files lazily the first time they are opened.
//! While a complete distribution holds over 60,000 files, a typical document
//! touches only a few megabytes of them, so lazy loading plus browser caching
//! makes the first build cheap and subsequent builds instantaneous.
//!
//! [`HttpFs`] reproduces that behaviour and pushes it one level further than
//! the original whole-file cache: file contents are cached in fixed-size
//! **pages** (default [`DEFAULT_PAGE_SIZE`] bytes, tunable with
//! [`HttpFs::with_page_size`]), fetched with ranged requests
//! ([`RemoteEndpoint::fetch_range`]) and **read ahead** a few pages at a time
//! ([`HttpFs::with_readahead`]).  A sequential reader therefore issues one
//! ranged request per read-ahead window instead of refetching the file, and a
//! random reader of a large `.fmt` file only ever pays for the pages it
//! touches.  [`HttpFsStats`] reports fetches, page hits/misses and bytes
//! actually transferred, which the evaluation uses.
//!
//! Open handles ([`FileSystem::open_handle`]) bind directly to a file's page
//! map — the `httpfs` "inode" — so descriptor reads skip the manifest lookup
//! entirely.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use browsix_browser::{PlatformError, RemoteEndpoint};

use crate::backend::{FileSystem, FsResult, IoStats};
use crate::errno::Errno;
use crate::handle::{deny_write_open, FileHandle};
use crate::path::{components, normalize};
use crate::types::{now_millis, DirEntry, FileType, Metadata, OpenFlags};

/// Default page size of the block cache: 64 KiB, large enough to amortise a
/// round trip, small enough that sparse readers of big files do not pay for
/// the whole file.
pub const DEFAULT_PAGE_SIZE: usize = 64 * 1024;

/// Default number of extra pages fetched beyond the requested range
/// (read-ahead window).
pub const DEFAULT_READAHEAD_PAGES: u64 = 2;

/// Fetch statistics for an [`HttpFs`] mount.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HttpFsStats {
    /// Number of ranged remote fetches performed.
    pub fetches: u64,
    /// Number of pages served from the local page cache.
    pub cache_hits: u64,
    /// Number of pages fetched from the remote server (page-cache misses).
    pub pages_fetched: u64,
    /// Total bytes fetched from the remote server.
    pub bytes_fetched: u64,
}

/// The cached pages of one remote file — the `httpfs` inode.
#[derive(Debug, Default)]
struct PageMap {
    /// Page index → page contents (all pages are `page_size` long except
    /// possibly the last).
    pages: BTreeMap<u64, Arc<Vec<u8>>>,
    /// The authoritative remote size, learned from the first ranged response
    /// (the manifest size is only advisory, like a stale directory listing).
    remote_size: Option<u64>,
}

#[derive(Debug)]
struct CachedFile {
    /// Normalised path, the key ranged requests are issued under.
    path: String,
    /// Size advertised by the manifest (used until the remote corrects it).
    manifest_size: u64,
    pages: Mutex<PageMap>,
}

impl CachedFile {
    fn size(&self) -> u64 {
        self.pages.lock().remote_size.unwrap_or(self.manifest_size)
    }
}

/// Shared internals: split out behind an `Arc` so open handles stay valid
/// independently of the `HttpFs` value itself.
struct HttpInner {
    endpoint: RemoteEndpoint,
    /// Known remote files: normalised path -> advertised size in bytes.
    manifest: BTreeMap<String, u64>,
    page_size: usize,
    readahead_pages: u64,
    files: Mutex<HashMap<String, Arc<CachedFile>>>,
    stats: Mutex<HttpFsStats>,
    mounted_ms: u64,
}

impl HttpInner {
    fn map_fetch_error(e: PlatformError) -> Errno {
        match e {
            PlatformError::HttpStatus(404) => Errno::ENOENT,
            PlatformError::NetworkUnavailable => Errno::ENETUNREACH,
            _ => Errno::EIO,
        }
    }

    /// The page-cache entry for `path` (which must be in the manifest),
    /// creating it on first access.
    fn cached_file(&self, normalized: &str) -> FsResult<Arc<CachedFile>> {
        let manifest_size = *self.manifest.get(normalized).ok_or(Errno::ENOENT)?;
        let mut files = self.files.lock();
        Ok(Arc::clone(files.entry(normalized.to_owned()).or_insert_with(|| {
            Arc::new(CachedFile {
                path: normalized.to_owned(),
                manifest_size,
                pages: Mutex::new(PageMap::default()),
            })
        })))
    }

    /// Ensures pages `first..=last` of `file` are cached, fetching missing
    /// runs with ranged requests extended by the read-ahead window.  Counts
    /// hits and misses for exactly the `first..=last` range.  `size_hint` is
    /// the best known file size (the authoritative remote size once learned,
    /// otherwise whatever the caller trusts), bounding the fetch.
    fn ensure_pages(&self, file: &CachedFile, first: u64, last: u64, size_hint: u64) -> FsResult<()> {
        let page_size = self.page_size as u64;
        let mut map = file.pages.lock();
        // Count hits/misses for the requested range before fetching.
        let mut missing: Vec<u64> = Vec::new();
        {
            let mut stats = self.stats.lock();
            for page in first..=last {
                if map.pages.contains_key(&page) {
                    stats.cache_hits += 1;
                } else {
                    missing.push(page);
                }
            }
        }
        if missing.is_empty() {
            return Ok(());
        }
        // Coalesce the missing pages into contiguous runs, then extend the
        // final run by the read-ahead window — but only across pages that
        // are actually missing, so read-ahead never refetches cached data.
        let mut runs: Vec<(u64, u64)> = Vec::new();
        for page in missing {
            match runs.last_mut() {
                Some((_, end)) if *end + 1 == page => *end = page,
                _ => runs.push((page, page)),
            }
        }
        if let Some((_, end)) = runs.last_mut() {
            let mut extra = 0;
            while extra < self.readahead_pages && !map.pages.contains_key(&(*end + 1)) {
                *end += 1;
                extra += 1;
            }
        }
        for (start, end) in runs {
            // Clamp to the (best-known) end of the file.
            let size = map.remote_size.unwrap_or(size_hint);
            let last_page = if size == 0 { 0 } else { (size - 1) / page_size };
            let end = end.min(last_page);
            let start = start.min(end);
            let fetch_from = start * page_size;
            let fetch_len = ((end - start + 1) * page_size) as usize;
            let (bytes, total) = self
                .endpoint
                .fetch_range(&file.path, fetch_from, fetch_len)
                .map_err(Self::map_fetch_error)?;
            map.remote_size = Some(total);
            {
                let mut stats = self.stats.lock();
                stats.fetches += 1;
                stats.bytes_fetched += bytes.len() as u64;
            }
            let mut fetched_pages = 0u64;
            for (i, chunk) in bytes.chunks(self.page_size).enumerate() {
                map.pages.insert(start + i as u64, Arc::new(chunk.to_vec()));
                fetched_pages += 1;
            }
            if bytes.is_empty() && total == 0 {
                // Zero-length remote file: remember the (single, empty) page
                // so is_cached and repeat reads do not refetch.
                map.pages.insert(0, Arc::new(Vec::new()));
                fetched_pages = 1;
            }
            self.stats.lock().pages_fetched += fetched_pages;
        }
        Ok(())
    }

    /// Reads `[offset, offset+len)` of `file` out of the page cache, faulting
    /// pages in as needed.
    fn read_cached(&self, file: &CachedFile, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let known = file.pages.lock().remote_size;
        // Until the remote reports its authoritative size, trust the larger
        // of the manifest and the request itself: a manifest that understates
        // the real size must not silently truncate reads.
        let size = known.unwrap_or_else(|| file.manifest_size.max(offset.saturating_add(len as u64)));
        let start = offset.min(size);
        let end = start.saturating_add(len as u64).min(size);
        if start >= end {
            // Still touch the remote once for never-fetched files so a ghost
            // manifest entry surfaces ENOENT rather than succeeding.
            if known.is_none() {
                self.ensure_pages(file, 0, 0, size.max(1))?;
                return self.read_cached(file, offset, len);
            }
            return Ok(Vec::new());
        }
        let page_size = self.page_size as u64;
        let first = start / page_size;
        let last = (end - 1) / page_size;
        self.ensure_pages(file, first, last, size)?;
        // The remote may have reported a different authoritative size
        // (smaller or larger than the manifest claimed); re-clamp.
        let size = file.size();
        let start = offset.min(size);
        let end = offset.saturating_add(len as u64).min(size);
        if start >= end {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity((end - start) as usize);
        let map = file.pages.lock();
        for page in first..=last {
            let page_start = page * page_size;
            let Some(data) = map.pages.get(&page) else { break };
            let from = start.saturating_sub(page_start).min(data.len() as u64) as usize;
            let to = (end.saturating_sub(page_start)).min(data.len() as u64) as usize;
            if from < to {
                out.extend_from_slice(&data[from..to]);
            }
        }
        Ok(out)
    }
}

/// A lazily-loading, read-only file system backed by a remote HTTP server,
/// caching file contents in pages.
pub struct HttpFs {
    inner: Arc<HttpInner>,
}

/// An open `httpfs` file: bound to the file's page map at open time, so reads
/// go straight to the cache without a manifest lookup.
struct HttpHandle {
    file: Arc<CachedFile>,
    inner: Arc<HttpInner>,
    mounted_ms: u64,
}

impl FileHandle for HttpHandle {
    fn backend_name(&self) -> &'static str {
        "httpfs"
    }

    fn metadata(&self) -> FsResult<Metadata> {
        Ok(Metadata {
            file_type: FileType::Regular,
            size: self.file.size(),
            mode: 0o444,
            mtime_ms: self.mounted_ms,
            atime_ms: self.mounted_ms,
        })
    }

    fn read_at(&self, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        self.inner.read_cached(&self.file, offset, len)
    }

    fn write_at(&self, _offset: u64, _data: &[u8]) -> FsResult<usize> {
        Err(Errno::EROFS)
    }

    fn truncate(&self, _size: u64) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn map_page(&self, page_index: u64, page_size: usize) -> FsResult<Arc<Vec<u8>>> {
        // When the mapping's page geometry matches the block cache's, hand
        // out the cache page itself: the mapping references page-cache memory
        // with no copy.  Mismatched geometries (or a short tail page, which
        // mmap must zero-fill to a full page) fall back to the copying
        // default.
        if page_size == self.inner.page_size {
            let offset = page_index * page_size as u64;
            let size = {
                let known = self.file.pages.lock().remote_size;
                known.unwrap_or_else(|| self.file.size())
            };
            if offset + page_size as u64 <= size {
                self.inner.ensure_pages(&self.file, page_index, page_index, size)?;
                if let Some(page) = self.file.pages.lock().pages.get(&page_index) {
                    if page.len() == page_size {
                        return Ok(Arc::clone(page));
                    }
                }
            }
        }
        let mut data = self.read_at(page_index * page_size as u64, page_size)?;
        data.resize(page_size, 0);
        Ok(Arc::new(data))
    }
}

impl std::fmt::Debug for HttpFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpFs")
            .field("files", &self.inner.manifest.len())
            .field("page_size", &self.inner.page_size)
            .field("stats", &self.stats())
            .finish()
    }
}

impl HttpFs {
    /// Creates an HTTP-backed file system from a manifest of
    /// `(path, size_in_bytes)` entries served by `endpoint`.
    pub fn new(endpoint: RemoteEndpoint, manifest: impl IntoIterator<Item = (String, u64)>) -> HttpFs {
        let manifest = manifest
            .into_iter()
            .map(|(path, size)| (normalize(&path), size))
            .collect();
        HttpFs {
            inner: Arc::new(HttpInner {
                endpoint,
                manifest,
                page_size: DEFAULT_PAGE_SIZE,
                readahead_pages: DEFAULT_READAHEAD_PAGES,
                files: Mutex::new(HashMap::new()),
                stats: Mutex::new(HttpFsStats::default()),
                mounted_ms: now_millis(),
            }),
        }
    }

    /// Sets the page-cache block size (bytes, must be non-zero).  Smaller
    /// pages reduce over-fetch for random reads; larger pages amortise round
    /// trips for sequential ones.  This is the knob the README documents.
    pub fn with_page_size(mut self, page_size: usize) -> HttpFs {
        assert!(page_size > 0, "page size must be non-zero");
        Arc::get_mut(&mut self.inner)
            .expect("with_page_size must be called before handles are opened")
            .page_size = page_size;
        self
    }

    /// Sets how many extra pages a miss fetches beyond the requested range.
    pub fn with_readahead(mut self, pages: u64) -> HttpFs {
        Arc::get_mut(&mut self.inner)
            .expect("with_readahead must be called before handles are opened")
            .readahead_pages = pages;
        self
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.inner.page_size
    }

    /// Number of files advertised by the manifest.
    pub fn manifest_len(&self) -> usize {
        self.inner.manifest.len()
    }

    /// Fetch statistics so far.
    pub fn stats(&self) -> HttpFsStats {
        *self.inner.stats.lock()
    }

    /// Whether every page of `path` has been fetched into the cache.
    pub fn is_cached(&self, path: &str) -> bool {
        let normalized = normalize(path);
        let files = self.inner.files.lock();
        let Some(file) = files.get(&normalized) else {
            return false;
        };
        let map = file.pages.lock();
        let Some(size) = map.remote_size else { return false };
        if size == 0 {
            return true;
        }
        let last_page = (size - 1) / self.inner.page_size as u64;
        (0..=last_page).all(|p| map.pages.contains_key(&p))
    }

    /// Eagerly fetches every file in the manifest, mirroring the original
    /// (pre-Browsix) BrowserFS overlay behaviour of reading the entire
    /// read-only underlay at initialisation.  Used by the lazy-vs-eager
    /// ablation experiment.
    ///
    /// # Errors
    ///
    /// Returns the first fetch error encountered.
    pub fn prefetch_all(&self) -> FsResult<()> {
        let paths: Vec<(String, u64)> = self.inner.manifest.iter().map(|(p, s)| (p.clone(), *s)).collect();
        for (path, size) in paths {
            let file = self.inner.cached_file(&path)?;
            let last_page = if size == 0 {
                0
            } else {
                (size - 1) / self.inner.page_size as u64
            };
            self.inner.ensure_pages(&file, 0, last_page, size)?;
        }
        Ok(())
    }

    fn is_implied_dir(&self, path: &str) -> bool {
        let normalized = normalize(path);
        if normalized == "/" {
            return true;
        }
        let prefix = format!("{normalized}/");
        self.inner.manifest.keys().any(|p| p.starts_with(&prefix))
    }
}

impl FileSystem for HttpFs {
    fn backend_name(&self) -> &'static str {
        "httpfs"
    }

    fn read_only(&self) -> bool {
        true
    }

    fn io_stats(&self) -> IoStats {
        let stats = self.stats();
        IoStats {
            page_cache_hits: stats.cache_hits,
            page_cache_misses: stats.pages_fetched,
            ..IoStats::default()
        }
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        let normalized = normalize(path);
        if self.inner.manifest.contains_key(&normalized) {
            // Prefer the authoritative (remote-reported) size once any page
            // of the file has been fetched.
            let size = self
                .inner
                .files
                .lock()
                .get(&normalized)
                .map(|f| f.size())
                .unwrap_or_else(|| self.inner.manifest[&normalized]);
            return Ok(Metadata {
                file_type: FileType::Regular,
                size,
                mode: 0o444,
                mtime_ms: self.inner.mounted_ms,
                atime_ms: self.inner.mounted_ms,
            });
        }
        if self.is_implied_dir(&normalized) {
            return Ok(Metadata {
                file_type: FileType::Directory,
                size: 0,
                mode: 0o555,
                mtime_ms: self.inner.mounted_ms,
                atime_ms: self.inner.mounted_ms,
            });
        }
        Err(Errno::ENOENT)
    }

    fn read_dir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let normalized = normalize(path);
        if self.inner.manifest.contains_key(&normalized) {
            return Err(Errno::ENOTDIR);
        }
        if !self.is_implied_dir(&normalized) {
            return Err(Errno::ENOENT);
        }
        let depth = components(&normalized).len();
        let prefix = if normalized == "/" {
            String::from("/")
        } else {
            format!("{normalized}/")
        };
        let mut entries: BTreeMap<String, FileType> = BTreeMap::new();
        for file_path in self.inner.manifest.keys() {
            if !file_path.starts_with(&prefix) {
                continue;
            }
            let comps = components(file_path);
            if comps.len() == depth + 1 {
                entries.insert(comps[depth].clone(), FileType::Regular);
            } else if comps.len() > depth + 1 {
                entries.entry(comps[depth].clone()).or_insert(FileType::Directory);
            }
        }
        Ok(entries
            .into_iter()
            .map(|(name, file_type)| DirEntry { name, file_type })
            .collect())
    }

    fn mkdir(&self, _path: &str) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn rmdir(&self, _path: &str) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn create(&self, _path: &str, _mode: u32) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn unlink(&self, _path: &str) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn rename(&self, _from: &str, _to: &str) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    /// Reads a whole file, re-checking the size after the first fetch so a
    /// manifest that under- (or over-)states the remote size still yields the
    /// complete authoritative contents.
    fn read_file(&self, path: &str) -> FsResult<Vec<u8>> {
        let handle = self.open_handle(path, OpenFlags::read_only())?;
        crate::handle::read_full(handle.as_ref())
    }

    fn open_handle(&self, path: &str, flags: OpenFlags) -> FsResult<Arc<dyn FileHandle>> {
        deny_write_open(flags)?;
        let normalized = normalize(path);
        if !self.inner.manifest.contains_key(&normalized) {
            if self.is_implied_dir(&normalized) {
                return Err(Errno::EISDIR);
            }
            return Err(Errno::ENOENT);
        }
        let file = self.inner.cached_file(&normalized)?;
        Ok(Arc::new(HttpHandle {
            file,
            inner: Arc::clone(&self.inner),
            mounted_ms: self.inner.mounted_ms,
        }))
    }

    fn set_times(&self, _path: &str, _atime_ms: u64, _mtime_ms: u64) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn chmod(&self, _path: &str, _mode: u32) -> FsResult<()> {
        Err(Errno::EROFS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browsix_browser::{NetworkProfile, StaticFiles};

    fn texlive_fs() -> HttpFs {
        let files = StaticFiles::new();
        files.insert("/texmf/article.cls", b"class file contents".to_vec());
        files.insert("/texmf/fonts/cmr10.tfm", b"metric".to_vec());
        files.insert("/texmf/plain.fmt", vec![7u8; 1024]);
        let endpoint = RemoteEndpoint::with_static_files(files, NetworkProfile::instant());
        HttpFs::new(
            endpoint,
            vec![
                ("/texmf/article.cls".to_string(), 19),
                ("/texmf/fonts/cmr10.tfm".to_string(), 6),
                ("/texmf/plain.fmt".to_string(), 1024),
            ],
        )
    }

    #[test]
    fn files_are_fetched_lazily_and_cached() {
        let fs = texlive_fs();
        assert_eq!(fs.stats(), HttpFsStats::default());
        assert!(!fs.is_cached("/texmf/article.cls"));

        let data = fs.read_file("/texmf/article.cls").unwrap();
        assert_eq!(data, b"class file contents");
        assert!(fs.is_cached("/texmf/article.cls"));
        let after_first = fs.stats();
        assert_eq!(after_first.fetches, 1);
        assert_eq!(after_first.bytes_fetched, 19);

        // Second read hits the page cache: no new fetch.
        let _ = fs.read_file("/texmf/article.cls").unwrap();
        let after_second = fs.stats();
        assert_eq!(after_second.fetches, 1);
        assert!(after_second.cache_hits >= 1);
    }

    #[test]
    fn stat_uses_manifest_without_fetching() {
        let fs = texlive_fs();
        let meta = fs.stat("/texmf/plain.fmt").unwrap();
        assert_eq!(meta.size, 1024);
        assert_eq!(fs.stats().fetches, 0);
        assert!(fs.stat("/texmf").unwrap().is_dir());
        assert_eq!(fs.stat("/missing.sty"), Err(Errno::ENOENT));
    }

    #[test]
    fn read_dir_reflects_manifest_structure() {
        let fs = texlive_fs();
        let names: Vec<String> = fs.read_dir("/texmf").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["article.cls", "fonts", "plain.fmt"]);
        assert_eq!(fs.manifest_len(), 3);
        assert_eq!(fs.read_dir("/texmf/article.cls"), Err(Errno::ENOTDIR));
    }

    #[test]
    fn prefetch_all_loads_everything() {
        let fs = texlive_fs();
        fs.prefetch_all().unwrap();
        let stats = fs.stats();
        assert_eq!(stats.fetches, 3);
        assert_eq!(stats.bytes_fetched, 19 + 6 + 1024);
        assert!(fs.is_cached("/texmf/plain.fmt"));
    }

    #[test]
    fn offline_endpoint_surfaces_enetunreach() {
        let files = StaticFiles::new();
        files.insert("/pkg.sty", b"x".to_vec());
        let endpoint = RemoteEndpoint::with_static_files(files, NetworkProfile::instant());
        endpoint.set_online(false);
        let fs = HttpFs::new(endpoint, vec![("/pkg.sty".to_string(), 1)]);
        assert_eq!(fs.read_file("/pkg.sty"), Err(Errno::ENETUNREACH));
    }

    #[test]
    fn manifest_entry_missing_remotely_is_enoent() {
        let endpoint = RemoteEndpoint::with_static_files(StaticFiles::new(), NetworkProfile::instant());
        let fs = HttpFs::new(endpoint, vec![("/ghost.sty".to_string(), 10)]);
        assert_eq!(fs.read_file("/ghost.sty"), Err(Errno::ENOENT));
    }

    #[test]
    fn writes_are_rejected() {
        let fs = texlive_fs();
        assert!(fs.read_only());
        assert_eq!(fs.write_at("/texmf/article.cls", 0, b"x"), Err(Errno::EROFS));
        assert_eq!(fs.create("/new.sty", 0o644), Err(Errno::EROFS));
        assert_eq!(fs.unlink("/texmf/article.cls"), Err(Errno::EROFS));
        assert_eq!(fs.mkdir("/newdir"), Err(Errno::EROFS));
    }

    // ---- page-cache behaviour -------------------------------------------------

    /// A 1000-byte file served in 100-byte pages with 2 pages of read-ahead.
    fn paged_fs() -> HttpFs {
        let files = StaticFiles::new();
        let body: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        files.insert("/big.bin", body);
        let endpoint = RemoteEndpoint::with_static_files(files, NetworkProfile::instant());
        HttpFs::new(endpoint, vec![("/big.bin".to_string(), 1000)])
            .with_page_size(100)
            .with_readahead(2)
    }

    #[test]
    fn random_reads_fetch_only_touched_pages() {
        let fs = paged_fs();
        // One 10-byte read in the middle of the file: one ranged fetch of
        // page 5 plus 2 read-ahead pages = 300 bytes, not the whole 1000.
        let data = fs.read_at("/big.bin", 500, 10).unwrap();
        assert_eq!(data.len(), 10);
        assert_eq!(data[0], (500u32 % 251) as u8);
        let stats = fs.stats();
        assert_eq!(stats.fetches, 1);
        assert_eq!(stats.pages_fetched, 3);
        assert_eq!(stats.bytes_fetched, 300);
        assert!(!fs.is_cached("/big.bin"));
    }

    #[test]
    fn sequential_reads_benefit_from_readahead() {
        let fs = paged_fs();
        let h = fs.open_handle("/big.bin", OpenFlags::read_only()).unwrap();
        let mut assembled = Vec::new();
        for chunk_start in (0..1000).step_by(100) {
            assembled.extend(h.read_at(chunk_start as u64, 100).unwrap());
        }
        assert_eq!(assembled.len(), 1000);
        assert_eq!(assembled[999], (999u32 % 251) as u8);
        let stats = fs.stats();
        // 10 pages, each miss run pulls readahead: far fewer fetches than
        // pages, and every byte fetched exactly once.
        assert!(stats.fetches < 10, "fetches = {}", stats.fetches);
        assert_eq!(stats.bytes_fetched, 1000);
        assert!(stats.cache_hits > 0);
        assert!(fs.is_cached("/big.bin"));
    }

    #[test]
    fn reads_spanning_page_boundaries_assemble_correctly() {
        let fs = paged_fs();
        let data = fs.read_at("/big.bin", 95, 10).unwrap();
        let expected: Vec<u8> = (95..105u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(data, expected);
        // Read past the end is short.
        assert_eq!(fs.read_at("/big.bin", 990, 100).unwrap().len(), 10);
        assert!(fs.read_at("/big.bin", 2000, 10).unwrap().is_empty());
    }

    #[test]
    fn readahead_never_refetches_cached_pages() {
        let fs = paged_fs();
        // Fault page 5: the read-ahead window pulls pages 5-7.
        let _ = fs.read_at("/big.bin", 500, 10).unwrap();
        assert_eq!(fs.stats().bytes_fetched, 300);
        // Fault page 4: pages 5-7 are cached, so the read-ahead extension
        // must stop at page 5 and fetch exactly one page.
        let _ = fs.read_at("/big.bin", 400, 10).unwrap();
        let stats = fs.stats();
        assert_eq!(stats.fetches, 2);
        assert_eq!(stats.pages_fetched, 4, "page 5-7 must not be re-fetched");
        assert_eq!(stats.bytes_fetched, 400);
    }

    #[test]
    fn understated_manifest_size_does_not_truncate_reads() {
        // Manifest claims 100 bytes; the remote file is really 1000.
        let files = StaticFiles::new();
        let body: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        files.insert("/grown.bin", body.clone());
        let endpoint = RemoteEndpoint::with_static_files(files, NetworkProfile::instant());
        let fs = HttpFs::new(endpoint, vec![("/grown.bin".to_string(), 100)]).with_page_size(100);

        // An explicit long read returns everything the remote has.
        assert_eq!(fs.read_at("/grown.bin", 0, 1000).unwrap(), body);
        // Whole-file reads learn the corrected size and return it all.
        let fs2 = {
            let files = StaticFiles::new();
            files.insert("/grown.bin", body.clone());
            let endpoint = RemoteEndpoint::with_static_files(files, NetworkProfile::instant());
            HttpFs::new(endpoint, vec![("/grown.bin".to_string(), 100)]).with_page_size(100)
        };
        assert_eq!(fs2.read_file("/grown.bin").unwrap(), body);
        assert_eq!(fs2.stat("/grown.bin").unwrap().size, 1000);
    }

    #[test]
    fn handle_metadata_tracks_authoritative_size() {
        // Manifest lies about the size; the first fetch corrects it.
        let files = StaticFiles::new();
        files.insert("/short.txt", b"abc".to_vec());
        let endpoint = RemoteEndpoint::with_static_files(files, NetworkProfile::instant());
        let fs = HttpFs::new(endpoint, vec![("/short.txt".to_string(), 999)]);
        let h = fs.open_handle("/short.txt", OpenFlags::read_only()).unwrap();
        assert_eq!(h.metadata().unwrap().size, 999);
        assert_eq!(h.read_at(0, 100).unwrap(), b"abc");
        assert_eq!(h.metadata().unwrap().size, 3);
        assert_eq!(fs.stat("/short.txt").unwrap().size, 3);
    }

    #[test]
    fn open_handle_enforces_types_and_read_only() {
        let fs = texlive_fs();
        assert!(matches!(
            fs.open_handle("/texmf", OpenFlags::read_only()),
            Err(Errno::EISDIR)
        ));
        assert!(matches!(
            fs.open_handle("/nope", OpenFlags::read_only()),
            Err(Errno::ENOENT)
        ));
        assert!(matches!(
            fs.open_handle("/texmf/article.cls", OpenFlags::read_write()),
            Err(Errno::EROFS)
        ));
        let h = fs.open_handle("/texmf/article.cls", OpenFlags::read_only()).unwrap();
        assert_eq!(h.write_at(0, b"x"), Err(Errno::EROFS));
        assert_eq!(h.truncate(0), Err(Errno::EROFS));
        assert_eq!(h.backend_name(), "httpfs");
    }

    #[test]
    fn io_stats_report_page_counters() {
        let fs = paged_fs();
        let _ = fs.read_at("/big.bin", 0, 100).unwrap();
        let _ = fs.read_at("/big.bin", 0, 100).unwrap();
        let io = fs.io_stats();
        assert!(io.page_cache_misses > 0);
        assert!(io.page_cache_hits > 0);
        assert_eq!(io.dentry_hits, 0);
        assert_eq!(io.copy_ups, 0);
    }
}
