//! A read-only file system backed by a (simulated) remote HTTP server.
//!
//! The paper's LaTeX editor mounts a full TeX Live distribution this way: the
//! developer uploads the distribution to an HTTP server, and Browsix's file
//! system fetches individual files lazily the first time they are opened.
//! While a complete distribution holds over 60,000 files, a typical document
//! touches only a few megabytes of them, so lazy loading plus browser caching
//! makes the first build cheap and subsequent builds instantaneous.
//!
//! [`HttpFs`] reproduces that behaviour: it is constructed from a *manifest*
//! (the list of remote paths and their sizes — the analogue of the listing
//! BrowserFS's XHR backend downloads at mount time) and a
//! [`RemoteEndpoint`](browsix_browser::RemoteEndpoint).  File data is fetched
//! on first access and cached; [`HttpFsStats`] reports how much was actually
//! transferred, which the evaluation uses.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use browsix_browser::{PlatformError, RemoteEndpoint};

use crate::backend::{FileSystem, FsResult};
use crate::errno::Errno;
use crate::path::{components, normalize};
use crate::types::{now_millis, DirEntry, FileType, Metadata};

/// Fetch statistics for an [`HttpFs`] mount.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HttpFsStats {
    /// Number of remote fetches performed (cache misses).
    pub fetches: u64,
    /// Number of reads served from the local cache.
    pub cache_hits: u64,
    /// Total bytes fetched from the remote server.
    pub bytes_fetched: u64,
}

#[derive(Debug, Default)]
struct HttpFsState {
    cache: HashMap<String, Arc<Vec<u8>>>,
    stats: HttpFsStats,
}

/// A lazily-loading, read-only file system backed by a remote HTTP server.
pub struct HttpFs {
    endpoint: RemoteEndpoint,
    /// Known remote files: normalised path -> advertised size in bytes.
    manifest: BTreeMap<String, u64>,
    state: Mutex<HttpFsState>,
    mounted_ms: u64,
}

impl std::fmt::Debug for HttpFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpFs")
            .field("files", &self.manifest.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl HttpFs {
    /// Creates an HTTP-backed file system from a manifest of
    /// `(path, size_in_bytes)` entries served by `endpoint`.
    pub fn new(endpoint: RemoteEndpoint, manifest: impl IntoIterator<Item = (String, u64)>) -> HttpFs {
        let manifest = manifest
            .into_iter()
            .map(|(path, size)| (normalize(&path), size))
            .collect();
        HttpFs {
            endpoint,
            manifest,
            state: Mutex::new(HttpFsState::default()),
            mounted_ms: now_millis(),
        }
    }

    /// Number of files advertised by the manifest.
    pub fn manifest_len(&self) -> usize {
        self.manifest.len()
    }

    /// Fetch statistics so far.
    pub fn stats(&self) -> HttpFsStats {
        self.state.lock().stats
    }

    /// Whether `path` has already been fetched into the cache.
    pub fn is_cached(&self, path: &str) -> bool {
        self.state.lock().cache.contains_key(&normalize(path))
    }

    /// Eagerly fetches every file in the manifest, mirroring the original
    /// (pre-Browsix) BrowserFS overlay behaviour of reading the entire
    /// read-only underlay at initialisation.  Used by the lazy-vs-eager
    /// ablation experiment.
    ///
    /// # Errors
    ///
    /// Returns the first fetch error encountered.
    pub fn prefetch_all(&self) -> FsResult<()> {
        let paths: Vec<String> = self.manifest.keys().cloned().collect();
        for path in paths {
            self.fetch(&path)?;
        }
        Ok(())
    }

    fn is_implied_dir(&self, path: &str) -> bool {
        let normalized = normalize(path);
        if normalized == "/" {
            return true;
        }
        let prefix = format!("{normalized}/");
        self.manifest.keys().any(|p| p.starts_with(&prefix))
    }

    fn fetch(&self, path: &str) -> FsResult<Arc<Vec<u8>>> {
        let normalized = normalize(path);
        {
            let mut state = self.state.lock();
            if let Some(data) = state.cache.get(&normalized).cloned() {
                state.stats.cache_hits += 1;
                return Ok(data);
            }
        }
        if !self.manifest.contains_key(&normalized) {
            return Err(Errno::ENOENT);
        }
        let data = self.endpoint.fetch(&normalized).map_err(|e| match e {
            PlatformError::HttpStatus(404) => Errno::ENOENT,
            PlatformError::NetworkUnavailable => Errno::ENETUNREACH,
            _ => Errno::EIO,
        })?;
        let data = Arc::new(data);
        let mut state = self.state.lock();
        state.stats.fetches += 1;
        state.stats.bytes_fetched += data.len() as u64;
        state.cache.insert(normalized, Arc::clone(&data));
        Ok(data)
    }
}

impl FileSystem for HttpFs {
    fn backend_name(&self) -> &'static str {
        "httpfs"
    }

    fn read_only(&self) -> bool {
        true
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        let normalized = normalize(path);
        if let Some(&size) = self.manifest.get(&normalized) {
            // Prefer the cached (authoritative) size if the file was fetched.
            let size = self
                .state
                .lock()
                .cache
                .get(&normalized)
                .map(|d| d.len() as u64)
                .unwrap_or(size);
            return Ok(Metadata {
                file_type: FileType::Regular,
                size,
                mode: 0o444,
                mtime_ms: self.mounted_ms,
                atime_ms: self.mounted_ms,
            });
        }
        if self.is_implied_dir(&normalized) {
            return Ok(Metadata {
                file_type: FileType::Directory,
                size: 0,
                mode: 0o555,
                mtime_ms: self.mounted_ms,
                atime_ms: self.mounted_ms,
            });
        }
        Err(Errno::ENOENT)
    }

    fn read_dir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let normalized = normalize(path);
        if self.manifest.contains_key(&normalized) {
            return Err(Errno::ENOTDIR);
        }
        if !self.is_implied_dir(&normalized) {
            return Err(Errno::ENOENT);
        }
        let depth = components(&normalized).len();
        let prefix = if normalized == "/" {
            String::from("/")
        } else {
            format!("{normalized}/")
        };
        let mut entries: BTreeMap<String, FileType> = BTreeMap::new();
        for file_path in self.manifest.keys() {
            if !file_path.starts_with(&prefix) {
                continue;
            }
            let comps = components(file_path);
            if comps.len() == depth + 1 {
                entries.insert(comps[depth].clone(), FileType::Regular);
            } else if comps.len() > depth + 1 {
                entries.entry(comps[depth].clone()).or_insert(FileType::Directory);
            }
        }
        Ok(entries
            .into_iter()
            .map(|(name, file_type)| DirEntry { name, file_type })
            .collect())
    }

    fn mkdir(&self, _path: &str) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn rmdir(&self, _path: &str) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn create(&self, _path: &str, _mode: u32) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn unlink(&self, _path: &str) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn rename(&self, _from: &str, _to: &str) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn read_at(&self, path: &str, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let normalized = normalize(path);
        if !self.manifest.contains_key(&normalized) {
            if self.is_implied_dir(&normalized) {
                return Err(Errno::EISDIR);
            }
            return Err(Errno::ENOENT);
        }
        let data = self.fetch(&normalized)?;
        let start = (offset as usize).min(data.len());
        let end = start.saturating_add(len).min(data.len());
        Ok(data[start..end].to_vec())
    }

    fn write_at(&self, _path: &str, _offset: u64, _data: &[u8]) -> FsResult<usize> {
        Err(Errno::EROFS)
    }

    fn truncate(&self, _path: &str, _size: u64) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn set_times(&self, _path: &str, _atime_ms: u64, _mtime_ms: u64) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn chmod(&self, _path: &str, _mode: u32) -> FsResult<()> {
        Err(Errno::EROFS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browsix_browser::{NetworkProfile, StaticFiles};

    fn texlive_fs() -> HttpFs {
        let files = StaticFiles::new();
        files.insert("/texmf/article.cls", b"class file contents".to_vec());
        files.insert("/texmf/fonts/cmr10.tfm", b"metric".to_vec());
        files.insert("/texmf/plain.fmt", vec![7u8; 1024]);
        let endpoint = RemoteEndpoint::with_static_files(files, NetworkProfile::instant());
        HttpFs::new(
            endpoint,
            vec![
                ("/texmf/article.cls".to_string(), 19),
                ("/texmf/fonts/cmr10.tfm".to_string(), 6),
                ("/texmf/plain.fmt".to_string(), 1024),
            ],
        )
    }

    #[test]
    fn files_are_fetched_lazily_and_cached() {
        let fs = texlive_fs();
        assert_eq!(fs.stats(), HttpFsStats::default());
        assert!(!fs.is_cached("/texmf/article.cls"));

        let data = fs.read_file("/texmf/article.cls").unwrap();
        assert_eq!(data, b"class file contents");
        assert!(fs.is_cached("/texmf/article.cls"));
        let after_first = fs.stats();
        assert_eq!(after_first.fetches, 1);
        assert_eq!(after_first.bytes_fetched, 19);

        // Second read hits the cache: no new fetch.
        let _ = fs.read_file("/texmf/article.cls").unwrap();
        let after_second = fs.stats();
        assert_eq!(after_second.fetches, 1);
        assert!(after_second.cache_hits >= 1);
    }

    #[test]
    fn stat_uses_manifest_without_fetching() {
        let fs = texlive_fs();
        let meta = fs.stat("/texmf/plain.fmt").unwrap();
        assert_eq!(meta.size, 1024);
        assert_eq!(fs.stats().fetches, 0);
        assert!(fs.stat("/texmf").unwrap().is_dir());
        assert_eq!(fs.stat("/missing.sty"), Err(Errno::ENOENT));
    }

    #[test]
    fn read_dir_reflects_manifest_structure() {
        let fs = texlive_fs();
        let names: Vec<String> = fs.read_dir("/texmf").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["article.cls", "fonts", "plain.fmt"]);
        assert_eq!(fs.manifest_len(), 3);
        assert_eq!(fs.read_dir("/texmf/article.cls"), Err(Errno::ENOTDIR));
    }

    #[test]
    fn prefetch_all_loads_everything() {
        let fs = texlive_fs();
        fs.prefetch_all().unwrap();
        let stats = fs.stats();
        assert_eq!(stats.fetches, 3);
        assert_eq!(stats.bytes_fetched, 19 + 6 + 1024);
        assert!(fs.is_cached("/texmf/plain.fmt"));
    }

    #[test]
    fn offline_endpoint_surfaces_enetunreach() {
        let files = StaticFiles::new();
        files.insert("/pkg.sty", b"x".to_vec());
        let endpoint = RemoteEndpoint::with_static_files(files, NetworkProfile::instant());
        endpoint.set_online(false);
        let fs = HttpFs::new(endpoint, vec![("/pkg.sty".to_string(), 1)]);
        assert_eq!(fs.read_file("/pkg.sty"), Err(Errno::ENETUNREACH));
    }

    #[test]
    fn manifest_entry_missing_remotely_is_enoent() {
        let endpoint = RemoteEndpoint::with_static_files(StaticFiles::new(), NetworkProfile::instant());
        let fs = HttpFs::new(endpoint, vec![("/ghost.sty".to_string(), 10)]);
        assert_eq!(fs.read_file("/ghost.sty"), Err(Errno::ENOENT));
    }

    #[test]
    fn writes_are_rejected() {
        let fs = texlive_fs();
        assert!(fs.read_only());
        assert_eq!(fs.write_at("/texmf/article.cls", 0, b"x"), Err(Errno::EROFS));
        assert_eq!(fs.create("/new.sty", 0o644), Err(Errno::EROFS));
        assert_eq!(fs.unlink("/texmf/article.cls"), Err(Errno::EROFS));
        assert_eq!(fs.mkdir("/newdir"), Err(Errno::EROFS));
    }
}
