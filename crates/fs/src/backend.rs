//! The [`FileSystem`] trait implemented by every backend.
//!
//! BrowserFS exposes a single node-style API over very different storage
//! targets (in-memory, zip files, XMLHttpRequest, Dropbox, overlays); Browsix
//! reuses that interface and routes the kernel's path-based system calls to
//! it.  Our equivalent is a path-based, object-safe trait with interior
//! mutability so a backend can sit behind an `Arc` and be shared by the
//! kernel and every process.

use std::sync::Arc;

use crate::errno::Errno;
use crate::handle::FileHandle;
use crate::types::{DirEntry, Metadata, OpenFlags};

/// Result alias used by all file-system operations.
pub type FsResult<T> = Result<T, Errno>;

/// Cache and copy-up counters exposed by every layer of the VFS stack.
///
/// Each backend reports its own contribution; composing layers
/// ([`MountedFs`](crate::MountedFs), [`OverlayFs`](crate::OverlayFs)) merge
/// the counters of the backends beneath them, so the kernel can hand the host
/// one aggregate snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Dentry-cache hits in the mount table (path resolved without a walk).
    pub dentry_hits: u64,
    /// Dentry-cache misses (path resolution had to scan the mount table).
    pub dentry_misses: u64,
    /// Pages served from an `httpfs` page cache without touching the network.
    pub page_cache_hits: u64,
    /// Pages fetched from the remote server (page-cache misses).
    pub page_cache_misses: u64,
    /// Files materialised in an overlay's writable layer by copy-up.
    pub copy_ups: u64,
}

impl IoStats {
    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: IoStats) {
        self.dentry_hits += other.dentry_hits;
        self.dentry_misses += other.dentry_misses;
        self.page_cache_hits += other.page_cache_hits;
        self.page_cache_misses += other.page_cache_misses;
        self.copy_ups += other.copy_ups;
    }
}

/// A file-system backend.
///
/// All paths are absolute within the backend (they begin with `/`), already
/// normalised by the caller ([`MountedFs`](crate::MountedFs) does this).
/// Implementations use interior mutability: methods take `&self` so a backend
/// can be shared behind an `Arc` by many processes, which is exactly the
/// multi-process sharing Browsix adds on top of BrowserFS.
pub trait FileSystem: Send + Sync {
    /// A short name identifying the backend type (e.g. `"memfs"`,
    /// `"httpfs"`), used in diagnostics and the feature table.
    fn backend_name(&self) -> &'static str;

    /// Whether the backend rejects all mutating operations.
    fn read_only(&self) -> bool {
        false
    }

    /// Returns metadata for the node at `path`.
    ///
    /// # Errors
    ///
    /// [`Errno::ENOENT`] if the node does not exist; [`Errno::ENOTDIR`] if a
    /// non-final component is not a directory.
    fn stat(&self, path: &str) -> FsResult<Metadata>;

    /// Lists the entries of the directory at `path` (excluding `.`/`..`).
    ///
    /// # Errors
    ///
    /// [`Errno::ENOENT`] if missing, [`Errno::ENOTDIR`] if not a directory.
    fn read_dir(&self, path: &str) -> FsResult<Vec<DirEntry>>;

    /// Creates a directory at `path`.
    ///
    /// # Errors
    ///
    /// [`Errno::EEXIST`] if a node already exists, [`Errno::ENOENT`] if the
    /// parent is missing, [`Errno::EROFS`] on read-only backends.
    fn mkdir(&self, path: &str) -> FsResult<()>;

    /// Removes the *empty* directory at `path`.
    ///
    /// # Errors
    ///
    /// [`Errno::ENOTEMPTY`] if it still has entries, [`Errno::ENOTDIR`] if it
    /// is not a directory, [`Errno::ENOENT`] if missing.
    fn rmdir(&self, path: &str) -> FsResult<()>;

    /// Creates an empty regular file at `path` (the `O_CREAT` half of `open`).
    /// Succeeds silently if a regular file already exists.
    ///
    /// # Errors
    ///
    /// [`Errno::EISDIR`] if `path` is a directory, [`Errno::ENOENT`] if the
    /// parent is missing, [`Errno::EROFS`] on read-only backends.
    fn create(&self, path: &str, mode: u32) -> FsResult<()>;

    /// Removes the regular file at `path`.
    ///
    /// # Errors
    ///
    /// [`Errno::EISDIR`] if `path` is a directory, [`Errno::ENOENT`] if
    /// missing, [`Errno::EROFS`] on read-only backends.
    fn unlink(&self, path: &str) -> FsResult<()>;

    /// Renames `from` to `to`, replacing `to` if it is a regular file.
    ///
    /// # Errors
    ///
    /// [`Errno::ENOENT`] if `from` is missing, [`Errno::EROFS`] on read-only
    /// backends.
    fn rename(&self, from: &str, to: &str) -> FsResult<()>;

    /// Resolves `path` **once** and returns a [`FileHandle`] bound to the
    /// node, through which all subsequent data-plane I/O flows.  `flags`
    /// drive backend policy: read-only backends reject write-mode opens, the
    /// overlay arms copy-up-on-first-write for them.  Creation and
    /// truncate-on-open are the caller's job ([`FileSystem::create`] and
    /// [`FileHandle::truncate`]); `open_handle` only opens what exists.
    ///
    /// # Errors
    ///
    /// [`Errno::ENOENT`] if missing, [`Errno::EISDIR`] if `path` is a
    /// directory, [`Errno::EROFS`] for write-mode opens of read-only backends.
    fn open_handle(&self, path: &str, flags: OpenFlags) -> FsResult<Arc<dyn FileHandle>>;

    /// Reads up to `len` bytes from the regular file at `path`, starting at
    /// byte `offset`.  Reads past the end of the file return a short (possibly
    /// empty) buffer.
    ///
    /// Legacy path-per-operation shim: opens a throwaway handle for every
    /// call.  Kernel descriptor I/O holds a [`FileHandle`] instead; this
    /// remains for one-shot callers (`read_file`, staging, tests).
    ///
    /// # Errors
    ///
    /// [`Errno::ENOENT`] if missing, [`Errno::EISDIR`] if a directory.
    fn read_at(&self, path: &str, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        self.open_handle(path, OpenFlags::read_only())?.read_at(offset, len)
    }

    /// Writes `data` into the regular file at `path` at byte `offset`,
    /// extending the file (zero-filled) if the offset lies past the end.
    /// Returns the number of bytes written.
    ///
    /// Legacy path-per-operation shim over [`FileSystem::open_handle`].
    ///
    /// # Errors
    ///
    /// [`Errno::ENOENT`] if missing, [`Errno::EISDIR`] if a directory,
    /// [`Errno::EROFS`] on read-only backends.
    fn write_at(&self, path: &str, offset: u64, data: &[u8]) -> FsResult<usize> {
        let flags = OpenFlags {
            write: true,
            ..OpenFlags::default()
        };
        self.open_handle(path, flags)?.write_at(offset, data)
    }

    /// Truncates (or zero-extends) the regular file at `path` to `size` bytes.
    ///
    /// Legacy path-per-operation shim over [`FileSystem::open_handle`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`FileSystem::write_at`].
    fn truncate(&self, path: &str, size: u64) -> FsResult<()> {
        let flags = OpenFlags {
            write: true,
            ..OpenFlags::default()
        };
        self.open_handle(path, flags)?.truncate(size)
    }

    /// Updates access/modification times (the `utimes` system call).
    ///
    /// # Errors
    ///
    /// [`Errno::ENOENT`] if missing, [`Errno::EROFS`] on read-only backends.
    fn set_times(&self, path: &str, atime_ms: u64, mtime_ms: u64) -> FsResult<()>;

    /// Changes permission bits.
    ///
    /// # Errors
    ///
    /// [`Errno::ENOENT`] if missing, [`Errno::EROFS`] on read-only backends.
    fn chmod(&self, path: &str, mode: u32) -> FsResult<()>;

    /// Whether a node exists at `path`.
    fn exists(&self, path: &str) -> bool {
        self.stat(path).is_ok()
    }

    /// Cache/copy-up counters for this backend, including any backends it
    /// composes (overlay underlays, mounted file systems).  Backends with no
    /// caches report zeros.
    fn io_stats(&self) -> IoStats {
        IoStats::default()
    }

    /// Reads an entire regular file.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FileSystem::read_at`].
    fn read_file(&self, path: &str) -> FsResult<Vec<u8>> {
        let meta = self.stat(path)?;
        if meta.is_dir() {
            return Err(Errno::EISDIR);
        }
        self.read_at(path, 0, meta.size as usize)
    }

    /// Creates/replaces an entire regular file with `data`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FileSystem::create`] and [`FileSystem::write_at`].
    fn write_file(&self, path: &str, data: &[u8]) -> FsResult<()> {
        self.create(path, 0o644)?;
        self.truncate(path, 0)?;
        if !data.is_empty() {
            self.write_at(path, 0, data)?;
        }
        Ok(())
    }
}

/// Creates every missing ancestor directory of `path` (like `mkdir -p` on the
/// parent), a helper several backends and the staging code share.
///
/// # Errors
///
/// Propagates any error other than [`Errno::EEXIST`] from the backend.
pub fn make_parent_dirs(fs: &dyn FileSystem, path: &str) -> FsResult<()> {
    let parent = crate::path::dirname(path);
    let mut current = String::from("/");
    for component in crate::path::components(&parent) {
        if current != "/" {
            current.push('/');
        }
        current.push_str(&component);
        match fs.mkdir(&current) {
            Ok(()) | Err(Errno::EEXIST) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memfs::MemFs;

    #[test]
    fn default_read_file_and_write_file_round_trip() {
        let fs = MemFs::new();
        fs.write_file("/hello.txt", b"hello world").unwrap();
        assert_eq!(fs.read_file("/hello.txt").unwrap(), b"hello world");
        // write_file truncates prior contents.
        fs.write_file("/hello.txt", b"hi").unwrap();
        assert_eq!(fs.read_file("/hello.txt").unwrap(), b"hi");
    }

    #[test]
    fn exists_defaults_to_stat() {
        let fs = MemFs::new();
        assert!(!fs.exists("/nope"));
        fs.write_file("/yes", b"1").unwrap();
        assert!(fs.exists("/yes"));
    }

    #[test]
    fn make_parent_dirs_creates_chain() {
        let fs = MemFs::new();
        make_parent_dirs(&fs, "/a/b/c/file.txt").unwrap();
        assert!(fs.stat("/a/b/c").unwrap().is_dir());
        // Idempotent.
        make_parent_dirs(&fs, "/a/b/c/file.txt").unwrap();
    }

    #[test]
    fn read_file_of_directory_is_eisdir() {
        let fs = MemFs::new();
        fs.mkdir("/dir").unwrap();
        assert_eq!(fs.read_file("/dir"), Err(Errno::EISDIR));
    }
}
