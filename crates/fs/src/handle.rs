//! Open-file handles: the data plane of the VFS.
//!
//! Browsix's original BrowserFS port exposed a node-style, path-string API, so
//! every `read` or `write` on an open descriptor re-resolved its path — a
//! mount-table scan, a normalisation pass and a component walk per operation,
//! and in `httpfs` potentially a refetch of the whole file.  The handle layer
//! fixes that by resolving a name exactly once, at `open`:
//!
//! ```text
//! descriptor I/O (kernel fd.rs) ──► FileHandle        (this module)
//! path lookup    (sys_open)     ──► dentry cache      (mount.rs)
//!                                   mount table       (mount.rs)
//!                                   backend inode     (memfs / overlay /
//!                                                      httpfs / bundle)
//! ```
//!
//! A [`FileHandle`] is the VFS analogue of a Unix *open file description*
//! stripped of its offset (the kernel keeps offsets on its descriptor
//! objects, so `dup` can share them): an `Arc`-shared object bound to a
//! resolved node, answering positional reads and writes without ever touching
//! a path string again.  Because handles hold the node itself (for `memfs`,
//! an `Arc` to the file's contents), they keep working across `rename` and
//! even `unlink` — exactly the inode semantics POSIX programs expect.
//!
//! Backends implement [`FileSystem::open_handle`](crate::FileSystem::open_handle);
//! the legacy path-based `read_at`/`write_at`/`truncate` methods survive only
//! as default shims that open a throwaway handle per operation, which is also
//! what the `fs_handles` benchmark measures the handle layer against.

use std::sync::Arc;

use crate::backend::FsResult;
use crate::errno::Errno;
use crate::types::Metadata;

/// An open file, bound to a node resolved once at `open` time.
///
/// Methods take `&self`: a handle sits behind an `Arc` shared by `dup`ed
/// descriptors and inherited descriptor tables, and all mutation goes through
/// the backend node's own interior locking.
pub trait FileHandle: Send + Sync {
    /// The backend that produced this handle (diagnostics / feature table).
    fn backend_name(&self) -> &'static str;

    /// Metadata of the underlying node, always current (reads the node, not a
    /// cached copy).
    ///
    /// # Errors
    ///
    /// Backend-specific; [`Errno::EIO`] if the node became unreachable.
    fn metadata(&self) -> FsResult<Metadata>;

    /// Reads up to `len` bytes starting at byte `offset`.  Reads past the end
    /// of the file return a short (possibly empty) buffer.
    ///
    /// # Errors
    ///
    /// [`Errno::EIO`]-class errors from the backend (network failures for
    /// `httpfs` pages, for example).
    fn read_at(&self, offset: u64, len: usize) -> FsResult<Vec<u8>>;

    /// Writes `data` at byte `offset`, zero-filling any gap past the current
    /// end.  Returns the number of bytes written.
    ///
    /// # Errors
    ///
    /// [`Errno::EROFS`] on read-only backends.
    fn write_at(&self, offset: u64, data: &[u8]) -> FsResult<usize>;

    /// Appends `data` at the current end of file **atomically**: the
    /// seek-to-end and the write happen under the node's lock, so two handles
    /// (or two `dup`ed descriptors) appending concurrently can never overwrite
    /// each other — the `O_APPEND` guarantee.  Returns the file size after the
    /// write (the offset a descriptor should advance to).
    ///
    /// The default implementation is a non-atomic `metadata` + `write_at`
    /// fallback, acceptable only for read-only backends (where `write_at`
    /// fails anyway); writable backends override it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FileHandle::write_at`].
    fn append(&self, data: &[u8]) -> FsResult<u64> {
        let end = self.metadata()?.size;
        let written = self.write_at(end, data)?;
        Ok(end + written as u64)
    }

    /// Truncates (or zero-extends) the file to `size` bytes.
    ///
    /// # Errors
    ///
    /// [`Errno::EROFS`] on read-only backends.
    fn truncate(&self, size: u64) -> FsResult<()>;

    /// Flushes the file's data to its backing store.  In-memory backends have
    /// nothing to flush, so the default succeeds.
    ///
    /// # Errors
    ///
    /// Backend-specific I/O errors.
    fn fsync(&self) -> FsResult<()> {
        Ok(())
    }

    /// Materialises one `page_size`-sized page of the file for a memory
    /// mapping: page `page_index` covers bytes
    /// `[page_index * page_size, (page_index + 1) * page_size)`, zero-filled
    /// past the end of the file (`mmap` fill semantics).
    ///
    /// The default faults the page in through [`FileHandle::read_at`] — which
    /// for `httpfs` already goes through its block/page cache — and copies it
    /// into a fresh `Arc`.  Backends that keep `Arc`'d cache pages of the
    /// right geometry override this to return the cache page itself, so a
    /// mapping shares memory with the page cache instead of copying it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FileHandle::read_at`].
    fn map_page(&self, page_index: u64, page_size: usize) -> FsResult<Arc<Vec<u8>>> {
        let mut data = self.read_at(page_index * page_size as u64, page_size)?;
        data.resize(page_size, 0);
        Ok(Arc::new(data))
    }
}

/// Reads an entire file through a handle, re-checking the size after each
/// read: backends with advisory sizes (an `httpfs` manifest) correct their
/// metadata on first fetch, and a single `metadata` + `read_at` pair would
/// silently truncate (or over-allocate).  Converges in two reads for a
/// stable backend; a bounded retry guards against one that keeps changing
/// its mind.
///
/// # Errors
///
/// Propagates the handle's errors; [`Errno::EIO`] if the reported size never
/// stabilises.
pub fn read_full(handle: &dyn FileHandle) -> FsResult<Vec<u8>> {
    let mut size = handle.metadata()?.size;
    for _ in 0..4 {
        let data = handle.read_at(0, size.max(1) as usize)?;
        let authoritative = handle.metadata()?.size;
        if authoritative == size {
            return Ok(data);
        }
        size = authoritative;
    }
    Err(Errno::EIO)
}

/// Rejects a write-mode open on a read-only backend; shared helper for the
/// read-only backends (`bundle`, `httpfs`).
///
/// # Errors
///
/// [`Errno::EROFS`] if `flags` request write access.
pub(crate) fn deny_write_open(flags: crate::types::OpenFlags) -> FsResult<()> {
    if flags.write || flags.truncate || flags.append {
        return Err(Errno::EROFS);
    }
    Ok(())
}

/// A handle over an immutable byte buffer, used by [`BundleFs`](crate::BundleFs)
/// (and tests): the node is the `Arc`'d data itself.
pub(crate) struct StaticHandle {
    pub(crate) backend: &'static str,
    pub(crate) data: Arc<Vec<u8>>,
    pub(crate) mode: u32,
    pub(crate) timestamp_ms: u64,
}

impl FileHandle for StaticHandle {
    fn backend_name(&self) -> &'static str {
        self.backend
    }

    fn metadata(&self) -> FsResult<Metadata> {
        Ok(Metadata {
            file_type: crate::types::FileType::Regular,
            size: self.data.len() as u64,
            mode: self.mode,
            mtime_ms: self.timestamp_ms,
            atime_ms: self.timestamp_ms,
        })
    }

    fn read_at(&self, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let start = (offset as usize).min(self.data.len());
        let end = start.saturating_add(len).min(self.data.len());
        Ok(self.data[start..end].to_vec())
    }

    fn write_at(&self, _offset: u64, _data: &[u8]) -> FsResult<usize> {
        Err(Errno::EROFS)
    }

    fn truncate(&self, _size: u64) -> FsResult<()> {
        Err(Errno::EROFS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::OpenFlags;

    fn static_handle(data: &[u8]) -> StaticHandle {
        StaticHandle {
            backend: "static",
            data: Arc::new(data.to_vec()),
            mode: 0o444,
            timestamp_ms: 7,
        }
    }

    #[test]
    fn static_handle_reads_and_rejects_writes() {
        let h = static_handle(b"hello world");
        assert_eq!(h.read_at(0, 5).unwrap(), b"hello");
        assert_eq!(h.read_at(6, 100).unwrap(), b"world");
        assert!(h.read_at(100, 4).unwrap().is_empty());
        assert_eq!(h.metadata().unwrap().size, 11);
        assert_eq!(h.write_at(0, b"x"), Err(Errno::EROFS));
        assert_eq!(h.truncate(0), Err(Errno::EROFS));
        assert_eq!(h.append(b"x"), Err(Errno::EROFS));
        assert_eq!(h.fsync(), Ok(()));
        assert_eq!(h.backend_name(), "static");
    }

    #[test]
    fn deny_write_open_checks_all_write_flags() {
        assert!(deny_write_open(OpenFlags::read_only()).is_ok());
        assert_eq!(deny_write_open(OpenFlags::read_write()), Err(Errno::EROFS));
        assert_eq!(deny_write_open(OpenFlags::append_create()), Err(Errno::EROFS));
        assert_eq!(
            deny_write_open(OpenFlags {
                read: true,
                truncate: true,
                ..OpenFlags::default()
            }),
            Err(Errno::EROFS)
        );
    }
}
