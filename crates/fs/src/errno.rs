//! POSIX error numbers.
//!
//! Browsix speaks the Linux system-call ABI to the language runtimes it
//! integrates with (musl expects negative errno values from `wait4`,
//! Emscripten's syscall layer passes them straight through), so the whole
//! stack shares this single error type.

use std::error::Error;
use std::fmt;

/// A POSIX error number.
///
/// The numeric values match Linux so they can be passed through the
/// system-call interface unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(clippy::upper_case_acronyms)]
pub enum Errno {
    /// Operation not permitted.
    EPERM,
    /// No such file or directory.
    ENOENT,
    /// No such process.
    ESRCH,
    /// Interrupted system call.
    EINTR,
    /// I/O error.
    EIO,
    /// No such device or address.
    ENXIO,
    /// Bad file descriptor.
    EBADF,
    /// No child processes.
    ECHILD,
    /// Resource temporarily unavailable.
    EAGAIN,
    /// Out of memory.
    ENOMEM,
    /// Permission denied.
    EACCES,
    /// Bad address.
    EFAULT,
    /// Device or resource busy.
    EBUSY,
    /// File exists.
    EEXIST,
    /// Cross-device link.
    EXDEV,
    /// Not a directory.
    ENOTDIR,
    /// Is a directory.
    EISDIR,
    /// Invalid argument.
    EINVAL,
    /// Too many open files in system.
    ENFILE,
    /// Too many open files.
    EMFILE,
    /// No space left on device.
    ENOSPC,
    /// Illegal seek.
    ESPIPE,
    /// Read-only file system.
    EROFS,
    /// Broken pipe.
    EPIPE,
    /// Numerical result out of range.
    ERANGE,
    /// File name too long.
    ENAMETOOLONG,
    /// Function not implemented.
    ENOSYS,
    /// Directory not empty.
    ENOTEMPTY,
    /// Value too large for defined data type.
    EOVERFLOW,
    /// Operation not supported.
    ENOTSUP,
    /// Address already in use.
    EADDRINUSE,
    /// Cannot assign requested address.
    EADDRNOTAVAIL,
    /// Network is unreachable.
    ENETUNREACH,
    /// Connection reset by peer.
    ECONNRESET,
    /// Socket is not connected.
    ENOTCONN,
    /// Connection timed out.
    ETIMEDOUT,
    /// Connection refused.
    ECONNREFUSED,
    /// Operation not supported on socket (not a socket).
    ENOTSOCK,
}

impl Errno {
    /// The Linux error number for this error.
    pub fn code(self) -> i32 {
        match self {
            Errno::EPERM => 1,
            Errno::ENOENT => 2,
            Errno::ESRCH => 3,
            Errno::EINTR => 4,
            Errno::EIO => 5,
            Errno::ENXIO => 6,
            Errno::EBADF => 9,
            Errno::ECHILD => 10,
            Errno::EAGAIN => 11,
            Errno::ENOMEM => 12,
            Errno::EACCES => 13,
            Errno::EFAULT => 14,
            Errno::EBUSY => 16,
            Errno::EEXIST => 17,
            Errno::EXDEV => 18,
            Errno::ENOTDIR => 20,
            Errno::EISDIR => 21,
            Errno::EINVAL => 22,
            Errno::ENFILE => 23,
            Errno::EMFILE => 24,
            Errno::ENOSPC => 28,
            Errno::ESPIPE => 29,
            Errno::EROFS => 30,
            Errno::EPIPE => 32,
            Errno::ERANGE => 34,
            Errno::ENAMETOOLONG => 36,
            Errno::ENOSYS => 38,
            Errno::ENOTEMPTY => 39,
            Errno::EOVERFLOW => 75,
            Errno::ENOTSUP => 95,
            Errno::EADDRINUSE => 98,
            Errno::EADDRNOTAVAIL => 99,
            Errno::ENETUNREACH => 101,
            Errno::ECONNRESET => 104,
            Errno::ENOTCONN => 107,
            Errno::ETIMEDOUT => 110,
            Errno::ECONNREFUSED => 111,
            Errno::ENOTSOCK => 88,
        }
    }

    /// The negated error number, as returned through the system-call ABI.
    pub fn as_syscall_return(self) -> i64 {
        -(self.code() as i64)
    }

    /// Reconstructs an `Errno` from a Linux error number, if known.
    pub fn from_code(code: i32) -> Option<Errno> {
        ALL_ERRNOS.iter().copied().find(|e| e.code() == code)
    }

    /// The symbolic name, e.g. `"ENOENT"`.
    pub fn name(self) -> &'static str {
        match self {
            Errno::EPERM => "EPERM",
            Errno::ENOENT => "ENOENT",
            Errno::ESRCH => "ESRCH",
            Errno::EINTR => "EINTR",
            Errno::EIO => "EIO",
            Errno::ENXIO => "ENXIO",
            Errno::EBADF => "EBADF",
            Errno::ECHILD => "ECHILD",
            Errno::EAGAIN => "EAGAIN",
            Errno::ENOMEM => "ENOMEM",
            Errno::EACCES => "EACCES",
            Errno::EFAULT => "EFAULT",
            Errno::EBUSY => "EBUSY",
            Errno::EEXIST => "EEXIST",
            Errno::EXDEV => "EXDEV",
            Errno::ENOTDIR => "ENOTDIR",
            Errno::EISDIR => "EISDIR",
            Errno::EINVAL => "EINVAL",
            Errno::ENFILE => "ENFILE",
            Errno::EMFILE => "EMFILE",
            Errno::ENOSPC => "ENOSPC",
            Errno::ESPIPE => "ESPIPE",
            Errno::EROFS => "EROFS",
            Errno::EPIPE => "EPIPE",
            Errno::ERANGE => "ERANGE",
            Errno::ENAMETOOLONG => "ENAMETOOLONG",
            Errno::ENOSYS => "ENOSYS",
            Errno::ENOTEMPTY => "ENOTEMPTY",
            Errno::EOVERFLOW => "EOVERFLOW",
            Errno::ENOTSUP => "ENOTSUP",
            Errno::EADDRINUSE => "EADDRINUSE",
            Errno::EADDRNOTAVAIL => "EADDRNOTAVAIL",
            Errno::ENETUNREACH => "ENETUNREACH",
            Errno::ECONNRESET => "ECONNRESET",
            Errno::ENOTCONN => "ENOTCONN",
            Errno::ETIMEDOUT => "ETIMEDOUT",
            Errno::ECONNREFUSED => "ECONNREFUSED",
            Errno::ENOTSOCK => "ENOTSOCK",
        }
    }

    /// A short human-readable description (what `strerror` would print).
    pub fn strerror(self) -> &'static str {
        match self {
            Errno::EPERM => "operation not permitted",
            Errno::ENOENT => "no such file or directory",
            Errno::ESRCH => "no such process",
            Errno::EINTR => "interrupted system call",
            Errno::EIO => "input/output error",
            Errno::ENXIO => "no such device or address",
            Errno::EBADF => "bad file descriptor",
            Errno::ECHILD => "no child processes",
            Errno::EAGAIN => "resource temporarily unavailable",
            Errno::ENOMEM => "cannot allocate memory",
            Errno::EACCES => "permission denied",
            Errno::EFAULT => "bad address",
            Errno::EBUSY => "device or resource busy",
            Errno::EEXIST => "file exists",
            Errno::EXDEV => "invalid cross-device link",
            Errno::ENOTDIR => "not a directory",
            Errno::EISDIR => "is a directory",
            Errno::EINVAL => "invalid argument",
            Errno::ENFILE => "too many open files in system",
            Errno::EMFILE => "too many open files",
            Errno::ENOSPC => "no space left on device",
            Errno::ESPIPE => "illegal seek",
            Errno::EROFS => "read-only file system",
            Errno::EPIPE => "broken pipe",
            Errno::ERANGE => "numerical result out of range",
            Errno::ENAMETOOLONG => "file name too long",
            Errno::ENOSYS => "function not implemented",
            Errno::ENOTEMPTY => "directory not empty",
            Errno::EOVERFLOW => "value too large for defined data type",
            Errno::ENOTSUP => "operation not supported",
            Errno::EADDRINUSE => "address already in use",
            Errno::EADDRNOTAVAIL => "cannot assign requested address",
            Errno::ENETUNREACH => "network is unreachable",
            Errno::ECONNRESET => "connection reset by peer",
            Errno::ENOTCONN => "transport endpoint is not connected",
            Errno::ETIMEDOUT => "connection timed out",
            Errno::ECONNREFUSED => "connection refused",
            Errno::ENOTSOCK => "socket operation on non-socket",
        }
    }
}

/// All errno values known to the crate (used for code/name round-trip tests
/// and by the `strerror` utility).
pub const ALL_ERRNOS: &[Errno] = &[
    Errno::EPERM,
    Errno::ENOENT,
    Errno::ESRCH,
    Errno::EINTR,
    Errno::EIO,
    Errno::ENXIO,
    Errno::EBADF,
    Errno::ECHILD,
    Errno::EAGAIN,
    Errno::ENOMEM,
    Errno::EACCES,
    Errno::EFAULT,
    Errno::EBUSY,
    Errno::EEXIST,
    Errno::EXDEV,
    Errno::ENOTDIR,
    Errno::EISDIR,
    Errno::EINVAL,
    Errno::ENFILE,
    Errno::EMFILE,
    Errno::ENOSPC,
    Errno::ESPIPE,
    Errno::EROFS,
    Errno::EPIPE,
    Errno::ERANGE,
    Errno::ENAMETOOLONG,
    Errno::ENOSYS,
    Errno::ENOTEMPTY,
    Errno::EOVERFLOW,
    Errno::ENOTSUP,
    Errno::EADDRINUSE,
    Errno::EADDRNOTAVAIL,
    Errno::ENETUNREACH,
    Errno::ECONNRESET,
    Errno::ENOTCONN,
    Errno::ETIMEDOUT,
    Errno::ECONNREFUSED,
    Errno::ENOTSOCK,
];

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.strerror(), self.name())
    }
}

impl Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        for &errno in ALL_ERRNOS {
            assert!(seen.insert(errno.code()), "duplicate code for {errno:?}");
            assert_eq!(Errno::from_code(errno.code()), Some(errno));
        }
    }

    #[test]
    fn unknown_code_maps_to_none() {
        assert_eq!(Errno::from_code(0), None);
        assert_eq!(Errno::from_code(-1), None);
        assert_eq!(Errno::from_code(4096), None);
    }

    #[test]
    fn syscall_return_is_negative() {
        assert_eq!(Errno::ENOENT.as_syscall_return(), -2);
        assert_eq!(Errno::EPERM.as_syscall_return(), -1);
        assert!(ALL_ERRNOS.iter().all(|e| e.as_syscall_return() < 0));
    }

    #[test]
    fn linux_abi_values_match() {
        assert_eq!(Errno::ENOENT.code(), 2);
        assert_eq!(Errno::EBADF.code(), 9);
        assert_eq!(Errno::ECHILD.code(), 10);
        assert_eq!(Errno::EEXIST.code(), 17);
        assert_eq!(Errno::EINVAL.code(), 22);
        assert_eq!(Errno::EPIPE.code(), 32);
        assert_eq!(Errno::ENOTEMPTY.code(), 39);
        assert_eq!(Errno::ECONNREFUSED.code(), 111);
    }

    #[test]
    fn display_contains_name_and_description() {
        let text = Errno::ENOENT.to_string();
        assert!(text.contains("ENOENT"));
        assert!(text.contains("no such file or directory"));
    }

    #[test]
    fn names_match_debug() {
        for &errno in ALL_ERRNOS {
            assert_eq!(format!("{errno:?}"), errno.name());
        }
    }
}
