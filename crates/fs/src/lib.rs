//! # browsix-fs — the shared file system
//!
//! Browsix extends Doppio's BrowserFS with multi-process support and lazy
//! loading of HTTP-backed files.  This crate reproduces that file-system layer
//! for the Rust port of Browsix:
//!
//! * [`errno`] — POSIX error numbers shared by the whole stack.
//! * [`path`] — purely lexical path manipulation (normalisation, joining).
//! * [`types`] — metadata, directory entries, open flags.
//! * [`backend`] — the [`FileSystem`] trait every backend implements.
//! * [`handle`] — the [`FileHandle`] trait: open-file handles bound to a
//!   node resolved once at `open`, the data plane of the VFS.
//! * [`memfs`] — a writable in-memory file system.
//! * [`httpfs`] — a read-only file system backed by a simulated remote HTTP
//!   server; files are fetched lazily on first access and cached, exactly like
//!   the TeX Live mount in the paper's LaTeX editor.
//! * [`bundle`] — a read-only file system built ahead of time from a static
//!   bundle (the analogue of BrowserFS's zip backend).
//! * [`overlay`] — a writable overlay on top of a read-only underlay with
//!   copy-up, whiteouts and the lazy-vs-eager initialisation choice the paper
//!   calls out as a key optimisation.
//! * [`mount`] — a mount table composing backends into one hierarchy.
//! * [`locks`] — advisory multi-process locks, Browsix's addition to the
//!   overlay so concurrent processes do not interleave destructively.
//!
//! # Example
//!
//! ```
//! use browsix_fs::{MemFs, MountedFs, FileSystem};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), browsix_fs::Errno> {
//! let root = MountedFs::new(Arc::new(MemFs::new()));
//! root.mkdir("/home")?;
//! root.write_file("/home/main.tex", b"\\documentclass{article}")?;
//! assert_eq!(root.read_file("/home/main.tex")?, b"\\documentclass{article}");
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod bundle;
pub mod errno;
pub mod handle;
pub mod httpfs;
pub mod locks;
pub mod memfs;
pub mod mount;
pub mod overlay;
pub mod path;
pub mod types;

pub use backend::{FileSystem, FsResult, IoStats};
pub use bundle::{Bundle, BundleFs};
pub use errno::Errno;
pub use handle::{read_full, FileHandle};
pub use httpfs::{HttpFs, HttpFsStats};
pub use locks::{LockKind, PathLocks};
pub use memfs::{detached_handle, MemFs};
pub use mount::MountedFs;
pub use overlay::{OverlayFs, OverlayMode};
pub use types::{DirEntry, FileType, Metadata, OpenFlags};
