//! Lexical path manipulation.
//!
//! Browsix paths are always Unix-style, rooted at `/`, and resolved inside the
//! kernel (there is no host file system underneath).  These helpers perform
//! the purely lexical parts: normalisation, joining relative paths onto a
//! working directory, and splitting into components.

/// Normalises `path` lexically: collapses `//`, resolves `.` and `..`, and
/// guarantees the result is absolute (relative inputs are interpreted against
/// `/`).  `..` at the root stays at the root, as in POSIX.
///
/// ```
/// use browsix_fs::path::normalize;
/// assert_eq!(normalize("/usr//share/./fonts/../doc"), "/usr/share/doc");
/// assert_eq!(normalize("a/b"), "/a/b");
/// assert_eq!(normalize("/../.."), "/");
/// ```
pub fn normalize(path: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for component in path.split('/') {
        match component {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            other => parts.push(other),
        }
    }
    if parts.is_empty() {
        "/".to_owned()
    } else {
        format!("/{}", parts.join("/"))
    }
}

/// Joins `path` onto `base` (the current working directory) and normalises the
/// result.  Absolute paths ignore `base`, exactly like `chdir`-relative
/// resolution in a kernel.
///
/// ```
/// use browsix_fs::path::resolve;
/// assert_eq!(resolve("/home/user", "docs/main.tex"), "/home/user/docs/main.tex");
/// assert_eq!(resolve("/home/user", "/etc/passwd"), "/etc/passwd");
/// assert_eq!(resolve("/home/user", ".."), "/home");
/// ```
pub fn resolve(base: &str, path: &str) -> String {
    if path.starts_with('/') {
        normalize(path)
    } else {
        normalize(&format!("{base}/{path}"))
    }
}

/// Splits a normalised path into its components.  The root maps to an empty
/// component list.
pub fn components(path: &str) -> Vec<String> {
    let normalized = normalize(path);
    normalized
        .split('/')
        .filter(|c| !c.is_empty())
        .map(|c| c.to_owned())
        .collect()
}

/// The parent directory of `path` (the root is its own parent).
pub fn dirname(path: &str) -> String {
    let normalized = normalize(path);
    match normalized.rfind('/') {
        Some(0) => "/".to_owned(),
        Some(idx) => normalized[..idx].to_owned(),
        None => "/".to_owned(),
    }
}

/// The final component of `path`; the root's basename is `"/"`.
pub fn basename(path: &str) -> String {
    let normalized = normalize(path);
    if normalized == "/" {
        return "/".to_owned();
    }
    normalized
        .rsplit('/')
        .next()
        .map(|s| s.to_owned())
        .unwrap_or_else(|| "/".to_owned())
}

/// Whether `path` is `prefix` itself or lies underneath it.  Both sides are
/// normalised first.
pub fn starts_with(path: &str, prefix: &str) -> bool {
    let path = normalize(path);
    let prefix = normalize(prefix);
    if prefix == "/" {
        return true;
    }
    path == prefix || path.starts_with(&format!("{prefix}/"))
}

/// Rewrites `path` (which must be equal to or under `prefix`) so it becomes
/// relative to `prefix`, returning an absolute path within that subtree.
/// Returns `None` if `path` is not under `prefix`.
pub fn strip_prefix(path: &str, prefix: &str) -> Option<String> {
    let path = normalize(path);
    let prefix = normalize(prefix);
    if prefix == "/" {
        return Some(path);
    }
    if path == prefix {
        return Some("/".to_owned());
    }
    path.strip_prefix(&format!("{prefix}/")).map(|rest| format!("/{rest}"))
}

/// The file extension of `path` (without the dot), if any.
pub fn extension(path: &str) -> Option<String> {
    let base = basename(path);
    let idx = base.rfind('.')?;
    if idx == 0 || idx + 1 == base.len() {
        return None;
    }
    Some(base[idx + 1..].to_owned())
}

/// A simple glob matcher supporting `*` (any run of non-separator characters)
/// and `?` (any single non-separator character), as used by the shell's
/// pathname expansion.
pub fn glob_match(pattern: &str, name: &str) -> bool {
    fn inner(pattern: &[u8], name: &[u8]) -> bool {
        match (pattern.first(), name.first()) {
            (None, None) => true,
            (Some(b'*'), _) => {
                // '*' matches zero or more characters (never '/').
                if inner(&pattern[1..], name) {
                    return true;
                }
                match name.first() {
                    Some(&c) if c != b'/' => inner(pattern, &name[1..]),
                    _ => false,
                }
            }
            (Some(b'?'), Some(&c)) if c != b'/' => inner(&pattern[1..], &name[1..]),
            (Some(&p), Some(&c)) if p == c => inner(&pattern[1..], &name[1..]),
            _ => false,
        }
    }
    inner(pattern.as_bytes(), name.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_handles_dots_and_slashes() {
        assert_eq!(normalize("/"), "/");
        assert_eq!(normalize(""), "/");
        assert_eq!(normalize("//usr///bin//"), "/usr/bin");
        assert_eq!(normalize("/a/./b/./c"), "/a/b/c");
        assert_eq!(normalize("/a/b/../c"), "/a/c");
        assert_eq!(normalize("/a/b/c/../../.."), "/");
        assert_eq!(normalize("/../../x"), "/x");
        assert_eq!(normalize("relative/path"), "/relative/path");
    }

    #[test]
    fn resolve_respects_cwd_and_absolute_paths() {
        assert_eq!(resolve("/home", "file.txt"), "/home/file.txt");
        assert_eq!(resolve("/home", "./file.txt"), "/home/file.txt");
        assert_eq!(resolve("/home/user", "../etc"), "/home/etc");
        assert_eq!(resolve("/home", "/absolute"), "/absolute");
        assert_eq!(resolve("/", "bin"), "/bin");
    }

    #[test]
    fn components_dirname_basename() {
        assert_eq!(components("/usr/bin/ls"), vec!["usr", "bin", "ls"]);
        assert!(components("/").is_empty());
        assert_eq!(dirname("/usr/bin/ls"), "/usr/bin");
        assert_eq!(dirname("/usr"), "/");
        assert_eq!(dirname("/"), "/");
        assert_eq!(basename("/usr/bin/ls"), "ls");
        assert_eq!(basename("/"), "/");
    }

    #[test]
    fn prefix_relations() {
        assert!(starts_with("/usr/bin/ls", "/usr"));
        assert!(starts_with("/usr", "/usr"));
        assert!(starts_with("/anything", "/"));
        assert!(!starts_with("/usr2/bin", "/usr"));
        assert_eq!(strip_prefix("/usr/bin/ls", "/usr"), Some("/bin/ls".into()));
        assert_eq!(strip_prefix("/usr", "/usr"), Some("/".into()));
        assert_eq!(strip_prefix("/var/log", "/usr"), None);
        assert_eq!(strip_prefix("/var/log", "/"), Some("/var/log".into()));
    }

    #[test]
    fn extensions() {
        assert_eq!(extension("/a/b/main.tex"), Some("tex".into()));
        assert_eq!(extension("/a/b/Makefile"), None);
        assert_eq!(extension("/a/b/.hidden"), None);
        assert_eq!(extension("/a/b/archive.tar.gz"), Some("gz".into()));
        assert_eq!(extension("/a/b/trailing."), None);
    }

    #[test]
    fn globbing() {
        assert!(glob_match("*.txt", "notes.txt"));
        assert!(!glob_match("*.txt", "notes.text"));
        assert!(glob_match("ma?n.tex", "main.tex"));
        assert!(glob_match("*", "anything"));
        assert!(!glob_match("*", "dir/file"));
        assert!(glob_match("a*b*c", "axxbyyc"));
        assert!(!glob_match("a*b*c", "axxbyy"));
        assert!(glob_match("", ""));
    }

    #[test]
    fn normalize_is_idempotent_on_samples() {
        for sample in ["/a/../b/./c//", "x/y/z", "/", "///", "/..", "a/.."] {
            let once = normalize(sample);
            assert_eq!(normalize(&once), once);
        }
    }
}
