//! The mount table: composing backends into a single hierarchy.
//!
//! BrowserFS supports "multiple mounted filesystems in a single hierarchical
//! directory structure"; the Browsix kernel holds one such composed instance
//! and routes every path-based system call through it.  [`MountedFs`] plays
//! that role here: a root backend plus any number of mounts, itself
//! implementing [`FileSystem`] so the kernel deals with a single object.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::backend::{FileSystem, FsResult};
use crate::errno::Errno;
use crate::path::{basename, dirname, normalize, starts_with, strip_prefix};
use crate::types::{DirEntry, FileType, Metadata};

struct Mount {
    point: String,
    fs: Arc<dyn FileSystem>,
}

/// A composed file system: one root backend plus zero or more mounts.
pub struct MountedFs {
    root: Arc<dyn FileSystem>,
    mounts: RwLock<Vec<Mount>>,
}

impl std::fmt::Debug for MountedFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mounts: Vec<String> = self
            .mounts
            .read()
            .iter()
            .map(|m| format!("{} ({})", m.point, m.fs.backend_name()))
            .collect();
        f.debug_struct("MountedFs")
            .field("root", &self.root.backend_name())
            .field("mounts", &mounts)
            .finish()
    }
}

impl MountedFs {
    /// Creates a mount table with `root` mounted at `/`.
    pub fn new(root: Arc<dyn FileSystem>) -> MountedFs {
        MountedFs {
            root,
            mounts: RwLock::new(Vec::new()),
        }
    }

    /// Mounts `fs` at `point` (an absolute path).  Longer mount points shadow
    /// shorter ones, so `/usr/share/texmf` can be mounted inside `/usr`.
    ///
    /// # Errors
    ///
    /// [`Errno::EINVAL`] if `point` is `/` (replace the root instead), or
    /// [`Errno::EBUSY`] if something is already mounted there.
    pub fn mount(&self, point: &str, fs: Arc<dyn FileSystem>) -> FsResult<()> {
        let point = normalize(point);
        if point == "/" {
            return Err(Errno::EINVAL);
        }
        let mut mounts = self.mounts.write();
        if mounts.iter().any(|m| m.point == point) {
            return Err(Errno::EBUSY);
        }
        mounts.push(Mount { point, fs });
        // Longest mount point first so resolution picks the most specific.
        mounts.sort_by_key(|m| std::cmp::Reverse(m.point.len()));
        Ok(())
    }

    /// Unmounts whatever is mounted at `point`.
    ///
    /// # Errors
    ///
    /// [`Errno::EINVAL`] if nothing is mounted there.
    pub fn unmount(&self, point: &str) -> FsResult<()> {
        let point = normalize(point);
        let mut mounts = self.mounts.write();
        let before = mounts.len();
        mounts.retain(|m| m.point != point);
        if mounts.len() == before {
            Err(Errno::EINVAL)
        } else {
            Ok(())
        }
    }

    /// The list of active mount points (excluding the root), most specific
    /// first.
    pub fn mount_points(&self) -> Vec<String> {
        self.mounts.read().iter().map(|m| m.point.clone()).collect()
    }

    /// Resolves `path` to the responsible backend and the path within it.
    fn route(&self, path: &str) -> (Arc<dyn FileSystem>, String) {
        let normalized = normalize(path);
        let mounts = self.mounts.read();
        for mount in mounts.iter() {
            if starts_with(&normalized, &mount.point) {
                let inner = strip_prefix(&normalized, &mount.point).unwrap_or_else(|| "/".to_owned());
                return (Arc::clone(&mount.fs), inner);
            }
        }
        (Arc::clone(&self.root), normalized)
    }

    /// Mount points whose parent directory is `dir` — these must show up in
    /// directory listings even if the underlying backend has no entry there.
    fn mounts_directly_under(&self, dir: &str) -> Vec<String> {
        let dir = normalize(dir);
        self.mounts
            .read()
            .iter()
            .filter(|m| dirname(&m.point) == dir)
            .map(|m| basename(&m.point))
            .collect()
    }
}

impl FileSystem for MountedFs {
    fn backend_name(&self) -> &'static str {
        "mounted"
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        let normalized = normalize(path);
        // A mount point is always a directory, even if the root backend has
        // nothing at that path.
        if self.mounts.read().iter().any(|m| m.point == normalized) {
            let (fs, inner) = self.route(&normalized);
            return fs.stat(&inner).or_else(|_| Ok(Metadata::directory()));
        }
        let (fs, inner) = self.route(&normalized);
        fs.stat(&inner)
    }

    fn read_dir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let (fs, inner) = self.route(path);
        let mut entries: BTreeMap<String, DirEntry> = BTreeMap::new();
        match fs.read_dir(&inner) {
            Ok(list) => {
                for entry in list {
                    entries.insert(entry.name.clone(), entry);
                }
            }
            Err(e) => {
                // The directory may exist purely as a parent of mount points.
                if self.mounts_directly_under(path).is_empty() {
                    return Err(e);
                }
            }
        }
        for name in self.mounts_directly_under(path) {
            entries.insert(
                name.clone(),
                DirEntry {
                    name,
                    file_type: FileType::Directory,
                },
            );
        }
        Ok(entries.into_values().collect())
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        let (fs, inner) = self.route(path);
        fs.mkdir(&inner)
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        let normalized = normalize(path);
        if self.mounts.read().iter().any(|m| m.point == normalized) {
            return Err(Errno::EBUSY);
        }
        let (fs, inner) = self.route(path);
        fs.rmdir(&inner)
    }

    fn create(&self, path: &str, mode: u32) -> FsResult<()> {
        let (fs, inner) = self.route(path);
        fs.create(&inner, mode)
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        let (fs, inner) = self.route(path);
        fs.unlink(&inner)
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let (from_fs, from_inner) = self.route(from);
        let (to_fs, to_inner) = self.route(to);
        if Arc::ptr_eq(&from_fs, &to_fs) {
            return from_fs.rename(&from_inner, &to_inner);
        }
        // Cross-mount rename: copy then delete, as libc does for EXDEV-aware
        // callers; we do it kernel-side because guests expect mv to work.
        let meta = from_fs.stat(&from_inner)?;
        if meta.is_dir() {
            return Err(Errno::EXDEV);
        }
        let data = from_fs.read_file(&from_inner)?;
        to_fs.write_file(&to_inner, &data)?;
        from_fs.unlink(&from_inner)
    }

    fn read_at(&self, path: &str, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let (fs, inner) = self.route(path);
        fs.read_at(&inner, offset, len)
    }

    fn write_at(&self, path: &str, offset: u64, data: &[u8]) -> FsResult<usize> {
        let (fs, inner) = self.route(path);
        fs.write_at(&inner, offset, data)
    }

    fn truncate(&self, path: &str, size: u64) -> FsResult<()> {
        let (fs, inner) = self.route(path);
        fs.truncate(&inner, size)
    }

    fn set_times(&self, path: &str, atime_ms: u64, mtime_ms: u64) -> FsResult<()> {
        let (fs, inner) = self.route(path);
        fs.set_times(&inner, atime_ms, mtime_ms)
    }

    fn chmod(&self, path: &str, mode: u32) -> FsResult<()> {
        let (fs, inner) = self.route(path);
        fs.chmod(&inner, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{Bundle, BundleFs};
    use crate::memfs::MemFs;

    fn texmf_bundle() -> Arc<dyn FileSystem> {
        let mut bundle = Bundle::new();
        bundle.insert_text("/article.cls", "class");
        bundle.insert_text("/fonts/cmr10.tfm", "font");
        Arc::new(BundleFs::new(bundle))
    }

    #[test]
    fn root_operations_pass_through() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        fs.mkdir("/home").unwrap();
        fs.write_file("/home/file", b"data").unwrap();
        assert_eq!(fs.read_file("/home/file").unwrap(), b"data");
        assert_eq!(fs.backend_name(), "mounted");
    }

    #[test]
    fn mounted_backend_receives_inner_paths() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        fs.mkdir("/usr").unwrap();
        fs.mount("/usr/texmf", texmf_bundle()).unwrap();
        assert_eq!(fs.read_file("/usr/texmf/article.cls").unwrap(), b"class");
        assert_eq!(fs.read_file("/usr/texmf/fonts/cmr10.tfm").unwrap(), b"font");
        assert!(fs.stat("/usr/texmf").unwrap().is_dir());
        assert!(fs.stat("/usr/texmf/fonts").unwrap().is_dir());
    }

    #[test]
    fn mount_points_show_in_parent_listings() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        fs.mkdir("/usr").unwrap();
        fs.mount("/usr/texmf", texmf_bundle()).unwrap();
        let names: Vec<String> = fs.read_dir("/usr").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["texmf"]);
        // Even when the parent directory does not exist in the root backend.
        let fs2 = MountedFs::new(Arc::new(MemFs::new()));
        fs2.mount("/opt/pkg", texmf_bundle()).unwrap();
        let names: Vec<String> = fs2.read_dir("/opt").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["pkg"]);
    }

    #[test]
    fn longest_mount_wins() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        let outer = Arc::new(MemFs::new());
        outer.write_file("/marker", b"outer").unwrap();
        let inner = Arc::new(MemFs::new());
        inner.write_file("/marker", b"inner").unwrap();
        fs.mount("/mnt", outer).unwrap();
        fs.mount("/mnt/inner", inner).unwrap();
        assert_eq!(fs.read_file("/mnt/marker").unwrap(), b"outer");
        assert_eq!(fs.read_file("/mnt/inner/marker").unwrap(), b"inner");
        assert_eq!(fs.mount_points(), vec!["/mnt/inner".to_string(), "/mnt".to_string()]);
    }

    #[test]
    fn duplicate_and_root_mounts_are_rejected() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        fs.mount("/a", Arc::new(MemFs::new())).unwrap();
        assert_eq!(fs.mount("/a", Arc::new(MemFs::new())), Err(Errno::EBUSY));
        assert_eq!(fs.mount("/", Arc::new(MemFs::new())), Err(Errno::EINVAL));
        assert_eq!(fs.rmdir("/a"), Err(Errno::EBUSY));
    }

    #[test]
    fn unmount_removes_routing() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        fs.mount("/data", texmf_bundle()).unwrap();
        assert!(fs.exists("/data/article.cls"));
        fs.unmount("/data").unwrap();
        assert!(!fs.exists("/data/article.cls"));
        assert_eq!(fs.unmount("/data"), Err(Errno::EINVAL));
    }

    #[test]
    fn cross_mount_rename_copies_file() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        let scratch = Arc::new(MemFs::new());
        fs.mount("/tmp", scratch).unwrap();
        fs.write_file("/source.txt", b"payload").unwrap();
        fs.rename("/source.txt", "/tmp/dest.txt").unwrap();
        assert_eq!(fs.read_file("/tmp/dest.txt").unwrap(), b"payload");
        assert!(!fs.exists("/source.txt"));
    }

    #[test]
    fn writes_to_read_only_mounts_fail() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        fs.mount("/ro", texmf_bundle()).unwrap();
        assert_eq!(fs.write_file("/ro/new", b"x"), Err(Errno::EROFS));
    }
}
