//! The mount table: composing backends into a single hierarchy, with a
//! dentry cache in front.
//!
//! BrowserFS supports "multiple mounted filesystems in a single hierarchical
//! directory structure"; the Browsix kernel holds one such composed instance
//! and routes every path-based system call through it.  [`MountedFs`] plays
//! that role here: a root backend plus any number of mounts, itself
//! implementing [`FileSystem`] so the kernel deals with a single object.
//!
//! Two things make the composed view fast:
//!
//! * a **dentry cache** mapping already-seen paths to their resolved
//!   `(backend, inner path)` pair, so `stat`-heavy workloads (`ls`, a
//!   recursive `grep`) stop re-normalising strings and re-scanning the mount
//!   table on every call.  Entries are invalidated on `rename`/`unlink`/
//!   `rmdir` (the whole subtree) and the cache is flushed on mount-table
//!   changes.  Hit/miss counters surface through
//!   [`FileSystem::io_stats`].
//! * **open-file handles**: [`FileSystem::open_handle`] resolves the mount
//!   point once and returns the backend's handle directly, so descriptor I/O
//!   never routes through the mount table again.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::backend::{FileSystem, FsResult, IoStats};
use crate::errno::Errno;
use crate::handle::FileHandle;
use crate::path::{basename, dirname, normalize, starts_with, strip_prefix};
use crate::types::{DirEntry, FileType, Metadata, OpenFlags};

/// Upper bound on cached dentries; the cache is flushed wholesale when it
/// fills (simple, and a 4096-entry working set covers the case studies).
const DENTRY_CACHE_CAPACITY: usize = 4096;

struct Mount {
    point: String,
    fs: Arc<dyn FileSystem>,
}

/// A resolved path: the backend responsible for it and the path within that
/// backend.  Routing depends only on the mount table, so cached entries stay
/// valid until the table changes (invalidation on namespace ops is belt and
/// braces, and keeps the door open for caching negative lookups later).
#[derive(Clone)]
struct Dentry {
    fs: Arc<dyn FileSystem>,
    inner: String,
}

#[derive(Default)]
struct DentryCache {
    entries: Mutex<HashMap<String, Dentry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DentryCache {
    fn get(&self, path: &str) -> Option<Dentry> {
        let cached = self.entries.lock().get(path).cloned();
        if cached.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        cached
    }

    fn insert(&self, path: String, dentry: Dentry) {
        let mut entries = self.entries.lock();
        if entries.len() >= DENTRY_CACHE_CAPACITY {
            entries.clear();
        }
        entries.insert(path, dentry);
    }

    /// Drops `path` and everything beneath it.
    fn invalidate_subtree(&self, path: &str) {
        let normalized = normalize(path);
        self.entries.lock().retain(|p, _| !starts_with(p, &normalized));
    }

    fn clear(&self) {
        self.entries.lock().clear();
    }

    fn counters(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

/// A composed file system: one root backend plus zero or more mounts.
pub struct MountedFs {
    root: Arc<dyn FileSystem>,
    mounts: RwLock<Vec<Mount>>,
    dcache: DentryCache,
}

impl std::fmt::Debug for MountedFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mounts: Vec<String> = self
            .mounts
            .read()
            .iter()
            .map(|m| format!("{} ({})", m.point, m.fs.backend_name()))
            .collect();
        f.debug_struct("MountedFs")
            .field("root", &self.root.backend_name())
            .field("mounts", &mounts)
            .finish()
    }
}

impl MountedFs {
    /// Creates a mount table with `root` mounted at `/`.
    pub fn new(root: Arc<dyn FileSystem>) -> MountedFs {
        MountedFs {
            root,
            mounts: RwLock::new(Vec::new()),
            dcache: DentryCache::default(),
        }
    }

    /// Mounts `fs` at `point` (an absolute path).  Longer mount points shadow
    /// shorter ones, so `/usr/share/texmf` can be mounted inside `/usr`.
    ///
    /// # Errors
    ///
    /// [`Errno::EINVAL`] if `point` is `/` (replace the root instead), or
    /// [`Errno::EBUSY`] if something is already mounted there.
    pub fn mount(&self, point: &str, fs: Arc<dyn FileSystem>) -> FsResult<()> {
        let point = normalize(point);
        if point == "/" {
            return Err(Errno::EINVAL);
        }
        let mut mounts = self.mounts.write();
        if mounts.iter().any(|m| m.point == point) {
            return Err(Errno::EBUSY);
        }
        mounts.push(Mount { point, fs });
        // Longest mount point first so resolution picks the most specific.
        mounts.sort_by_key(|m| std::cmp::Reverse(m.point.len()));
        // Routing changed: every cached dentry is suspect.
        self.dcache.clear();
        Ok(())
    }

    /// Unmounts whatever is mounted at `point`.
    ///
    /// # Errors
    ///
    /// [`Errno::EINVAL`] if nothing is mounted there.
    pub fn unmount(&self, point: &str) -> FsResult<()> {
        let point = normalize(point);
        let mut mounts = self.mounts.write();
        let before = mounts.len();
        mounts.retain(|m| m.point != point);
        if mounts.len() == before {
            Err(Errno::EINVAL)
        } else {
            self.dcache.clear();
            Ok(())
        }
    }

    /// The list of active mount points (excluding the root), most specific
    /// first.
    pub fn mount_points(&self) -> Vec<String> {
        self.mounts.read().iter().map(|m| m.point.clone()).collect()
    }

    /// Dentry-cache hit and miss counts since creation.
    pub fn dentry_cache_counters(&self) -> (u64, u64) {
        self.dcache.counters()
    }

    /// Resolves `path` to the responsible backend and the path within it,
    /// consulting the dentry cache first.
    fn route(&self, path: &str) -> (Arc<dyn FileSystem>, String) {
        let normalized = normalize(path);
        if let Some(dentry) = self.dcache.get(&normalized) {
            return (dentry.fs, dentry.inner);
        }
        // Resolve AND insert under the mount-table read lock: a concurrent
        // mount/unmount takes the write lock (and flushes the cache) either
        // strictly before or strictly after this block, so a stale dentry can
        // never be inserted after the flush.  Lock order is always
        // mounts → dcache, so this cannot deadlock with the flush paths.
        let mounts = self.mounts.read();
        let resolved = mounts
            .iter()
            .find(|mount| starts_with(&normalized, &mount.point))
            .map(|mount| {
                let inner = strip_prefix(&normalized, &mount.point).unwrap_or_else(|| "/".to_owned());
                (Arc::clone(&mount.fs), inner)
            })
            .unwrap_or_else(|| (Arc::clone(&self.root), normalized.clone()));
        self.dcache.insert(
            normalized,
            Dentry {
                fs: Arc::clone(&resolved.0),
                inner: resolved.1.clone(),
            },
        );
        resolved
    }

    /// Mount points whose parent directory is `dir` — these must show up in
    /// directory listings even if the underlying backend has no entry there.
    fn mounts_directly_under(&self, dir: &str) -> Vec<String> {
        let dir = normalize(dir);
        self.mounts
            .read()
            .iter()
            .filter(|m| dirname(&m.point) == dir)
            .map(|m| basename(&m.point))
            .collect()
    }
}

impl FileSystem for MountedFs {
    fn backend_name(&self) -> &'static str {
        "mounted"
    }

    fn io_stats(&self) -> IoStats {
        let (dentry_hits, dentry_misses) = self.dcache.counters();
        let mut stats = IoStats {
            dentry_hits,
            dentry_misses,
            ..IoStats::default()
        };
        stats.merge(self.root.io_stats());
        for mount in self.mounts.read().iter() {
            stats.merge(mount.fs.io_stats());
        }
        stats
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        let normalized = normalize(path);
        // A mount point is always a directory, even if the root backend has
        // nothing at that path.
        if self.mounts.read().iter().any(|m| m.point == normalized) {
            let (fs, inner) = self.route(&normalized);
            return fs.stat(&inner).or_else(|_| Ok(Metadata::directory()));
        }
        let (fs, inner) = self.route(&normalized);
        fs.stat(&inner)
    }

    fn read_dir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let (fs, inner) = self.route(path);
        let mut entries: BTreeMap<String, DirEntry> = BTreeMap::new();
        match fs.read_dir(&inner) {
            Ok(list) => {
                for entry in list {
                    entries.insert(entry.name.clone(), entry);
                }
            }
            Err(e) => {
                // The directory may exist purely as a parent of mount points.
                if self.mounts_directly_under(path).is_empty() {
                    return Err(e);
                }
            }
        }
        for name in self.mounts_directly_under(path) {
            entries.insert(
                name.clone(),
                DirEntry {
                    name,
                    file_type: FileType::Directory,
                },
            );
        }
        Ok(entries.into_values().collect())
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        let (fs, inner) = self.route(path);
        fs.mkdir(&inner)
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        let normalized = normalize(path);
        if self.mounts.read().iter().any(|m| m.point == normalized) {
            return Err(Errno::EBUSY);
        }
        let (fs, inner) = self.route(path);
        let result = fs.rmdir(&inner);
        if result.is_ok() {
            self.dcache.invalidate_subtree(&normalized);
        }
        result
    }

    fn create(&self, path: &str, mode: u32) -> FsResult<()> {
        let (fs, inner) = self.route(path);
        fs.create(&inner, mode)
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        let (fs, inner) = self.route(path);
        let result = fs.unlink(&inner);
        if result.is_ok() {
            self.dcache.invalidate_subtree(path);
        }
        result
    }

    /// Renames within one backend.  A rename whose source and destination
    /// resolve to *different* mounts fails with [`Errno::EXDEV`], exactly as
    /// `rename(2)` does across device boundaries — callers that want the
    /// copy-then-unlink behaviour (like `mv`) must do it themselves.
    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        let (from_fs, from_inner) = self.route(from);
        let (to_fs, to_inner) = self.route(to);
        if !Arc::ptr_eq(&from_fs, &to_fs) {
            return Err(Errno::EXDEV);
        }
        let result = from_fs.rename(&from_inner, &to_inner);
        if result.is_ok() {
            self.dcache.invalidate_subtree(from);
            self.dcache.invalidate_subtree(to);
        }
        result
    }

    /// Resolves the mount point once; the returned handle goes straight to
    /// the owning backend for every subsequent operation.
    fn open_handle(&self, path: &str, flags: OpenFlags) -> FsResult<Arc<dyn FileHandle>> {
        let (fs, inner) = self.route(path);
        fs.open_handle(&inner, flags)
    }

    fn set_times(&self, path: &str, atime_ms: u64, mtime_ms: u64) -> FsResult<()> {
        let (fs, inner) = self.route(path);
        fs.set_times(&inner, atime_ms, mtime_ms)
    }

    fn chmod(&self, path: &str, mode: u32) -> FsResult<()> {
        let (fs, inner) = self.route(path);
        fs.chmod(&inner, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{Bundle, BundleFs};
    use crate::memfs::MemFs;

    fn texmf_bundle() -> Arc<dyn FileSystem> {
        let mut bundle = Bundle::new();
        bundle.insert_text("/article.cls", "class");
        bundle.insert_text("/fonts/cmr10.tfm", "font");
        Arc::new(BundleFs::new(bundle))
    }

    #[test]
    fn root_operations_pass_through() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        fs.mkdir("/home").unwrap();
        fs.write_file("/home/file", b"data").unwrap();
        assert_eq!(fs.read_file("/home/file").unwrap(), b"data");
        assert_eq!(fs.backend_name(), "mounted");
    }

    #[test]
    fn mounted_backend_receives_inner_paths() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        fs.mkdir("/usr").unwrap();
        fs.mount("/usr/texmf", texmf_bundle()).unwrap();
        assert_eq!(fs.read_file("/usr/texmf/article.cls").unwrap(), b"class");
        assert_eq!(fs.read_file("/usr/texmf/fonts/cmr10.tfm").unwrap(), b"font");
        assert!(fs.stat("/usr/texmf").unwrap().is_dir());
        assert!(fs.stat("/usr/texmf/fonts").unwrap().is_dir());
    }

    #[test]
    fn mount_points_show_in_parent_listings() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        fs.mkdir("/usr").unwrap();
        fs.mount("/usr/texmf", texmf_bundle()).unwrap();
        let names: Vec<String> = fs.read_dir("/usr").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["texmf"]);
        // Even when the parent directory does not exist in the root backend.
        let fs2 = MountedFs::new(Arc::new(MemFs::new()));
        fs2.mount("/opt/pkg", texmf_bundle()).unwrap();
        let names: Vec<String> = fs2.read_dir("/opt").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["pkg"]);
    }

    #[test]
    fn longest_mount_wins() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        let outer = Arc::new(MemFs::new());
        outer.write_file("/marker", b"outer").unwrap();
        let inner = Arc::new(MemFs::new());
        inner.write_file("/marker", b"inner").unwrap();
        fs.mount("/mnt", outer).unwrap();
        fs.mount("/mnt/inner", inner).unwrap();
        assert_eq!(fs.read_file("/mnt/marker").unwrap(), b"outer");
        assert_eq!(fs.read_file("/mnt/inner/marker").unwrap(), b"inner");
        assert_eq!(fs.mount_points(), vec!["/mnt/inner".to_string(), "/mnt".to_string()]);
    }

    #[test]
    fn duplicate_and_root_mounts_are_rejected() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        fs.mount("/a", Arc::new(MemFs::new())).unwrap();
        assert_eq!(fs.mount("/a", Arc::new(MemFs::new())), Err(Errno::EBUSY));
        assert_eq!(fs.mount("/", Arc::new(MemFs::new())), Err(Errno::EINVAL));
        assert_eq!(fs.rmdir("/a"), Err(Errno::EBUSY));
    }

    #[test]
    fn unmount_removes_routing() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        fs.mount("/data", texmf_bundle()).unwrap();
        assert!(fs.exists("/data/article.cls"));
        fs.unmount("/data").unwrap();
        assert!(!fs.exists("/data/article.cls"));
        assert_eq!(fs.unmount("/data"), Err(Errno::EINVAL));
    }

    #[test]
    fn cross_mount_rename_is_exdev() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        let scratch = Arc::new(MemFs::new());
        fs.mount("/tmp", scratch).unwrap();
        fs.write_file("/source.txt", b"payload").unwrap();
        // rename(2) semantics: crossing a mount boundary is the caller's
        // problem (mv falls back to copy + unlink on EXDEV).
        assert_eq!(fs.rename("/source.txt", "/tmp/dest.txt"), Err(Errno::EXDEV));
        assert_eq!(fs.rename("/tmp/nope", "/elsewhere"), Err(Errno::EXDEV));
        // The source is untouched by the failed rename.
        assert_eq!(fs.read_file("/source.txt").unwrap(), b"payload");
        // Same-backend renames still work, on both sides of the mount.
        fs.rename("/source.txt", "/renamed.txt").unwrap();
        assert_eq!(fs.read_file("/renamed.txt").unwrap(), b"payload");
        fs.write_file("/tmp/a", b"1").unwrap();
        fs.rename("/tmp/a", "/tmp/b").unwrap();
        assert_eq!(fs.read_file("/tmp/b").unwrap(), b"1");
    }

    #[test]
    fn writes_to_read_only_mounts_fail() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        fs.mount("/ro", texmf_bundle()).unwrap();
        assert_eq!(fs.write_file("/ro/new", b"x"), Err(Errno::EROFS));
    }

    // ---- dentry cache ---------------------------------------------------------

    #[test]
    fn repeated_stats_hit_the_dentry_cache() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        fs.mkdir("/home").unwrap();
        fs.write_file("/home/file", b"data").unwrap();
        let (_, misses_before) = fs.dentry_cache_counters();
        for _ in 0..5 {
            fs.stat("/home/file").unwrap();
        }
        let (hits, misses) = fs.dentry_cache_counters();
        assert!(hits >= 4, "expected cache hits, got {hits}");
        // write_file may already have warmed the entry; at most one new miss.
        assert!(misses <= misses_before + 1, "repeated stats must not keep missing");
        let io = fs.io_stats();
        assert_eq!(io.dentry_hits, hits);
        assert_eq!(io.dentry_misses, misses);
    }

    #[test]
    fn dentry_cache_is_invalidated_by_namespace_ops() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        fs.mkdir("/d").unwrap();
        fs.write_file("/d/f", b"1").unwrap();
        fs.stat("/d/f").unwrap();
        fs.rename("/d/f", "/d/g").unwrap();
        assert_eq!(fs.stat("/d/f"), Err(Errno::ENOENT));
        assert_eq!(fs.read_file("/d/g").unwrap(), b"1");
        fs.unlink("/d/g").unwrap();
        assert_eq!(fs.stat("/d/g"), Err(Errno::ENOENT));
        fs.rmdir("/d").unwrap();
        assert_eq!(fs.stat("/d"), Err(Errno::ENOENT));
    }

    #[test]
    fn dentry_cache_is_flushed_on_mount_changes() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        fs.write_file("/data", b"root-file").unwrap();
        fs.unlink("/data").unwrap();
        fs.mkdir("/data").unwrap();
        fs.stat("/data").unwrap();
        // Mounting over /data must re-route cached descendants.
        fs.mount("/data", texmf_bundle()).unwrap();
        assert_eq!(fs.read_file("/data/article.cls").unwrap(), b"class");
        fs.unmount("/data").unwrap();
        assert_eq!(fs.stat("/data/article.cls"), Err(Errno::ENOENT));
    }

    // ---- handles through the mount table ---------------------------------------

    #[test]
    fn open_handle_resolves_the_mount_once() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        fs.mount("/ro", texmf_bundle()).unwrap();
        let h = fs.open_handle("/ro/article.cls", OpenFlags::read_only()).unwrap();
        assert_eq!(
            h.backend_name(),
            "bundlefs",
            "handle must come from the mounted backend"
        );
        assert_eq!(h.read_at(0, 5).unwrap(), b"class");

        fs.write_file("/local", b"root").unwrap();
        let h = fs.open_handle("/local", OpenFlags::read_write()).unwrap();
        assert_eq!(h.backend_name(), "memfs");
        h.write_at(0, b"ROOT").unwrap();
        assert_eq!(fs.read_file("/local").unwrap(), b"ROOT");
    }

    #[test]
    fn handle_io_is_unaffected_by_unmount_of_other_trees() {
        let fs = MountedFs::new(Arc::new(MemFs::new()));
        fs.mount("/ro", texmf_bundle()).unwrap();
        fs.write_file("/f", b"stable").unwrap();
        let h = fs.open_handle("/f", OpenFlags::read_only()).unwrap();
        fs.unmount("/ro").unwrap();
        assert_eq!(h.read_at(0, 6).unwrap(), b"stable");
    }
}
