//! File-system data types: metadata, directory entries and open flags.

use crate::errno::Errno;

/// The type of a file-system node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// A regular file.
    Regular,
    /// A directory.
    Directory,
    /// A symbolic link (only some backends support these).
    Symlink,
}

impl FileType {
    /// The `d_type`-style character used by `ls -l`-like listings.
    pub fn type_char(self) -> char {
        match self {
            FileType::Regular => '-',
            FileType::Directory => 'd',
            FileType::Symlink => 'l',
        }
    }

    /// The POSIX `st_mode` file-type bits.
    pub fn mode_bits(self) -> u32 {
        match self {
            FileType::Regular => 0o100000,
            FileType::Directory => 0o040000,
            FileType::Symlink => 0o120000,
        }
    }
}

/// Metadata returned by `stat`-family system calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metadata {
    /// File type.
    pub file_type: FileType,
    /// Size in bytes (directories report 0).
    pub size: u64,
    /// Permission bits (e.g. `0o644`).
    pub mode: u32,
    /// Last-modification time, milliseconds since the Unix epoch.
    pub mtime_ms: u64,
    /// Last-access time, milliseconds since the Unix epoch.
    pub atime_ms: u64,
}

impl Metadata {
    /// Metadata for a fresh regular file of `size` bytes.
    pub fn regular(size: u64) -> Metadata {
        let now = now_millis();
        Metadata {
            file_type: FileType::Regular,
            size,
            mode: 0o644,
            mtime_ms: now,
            atime_ms: now,
        }
    }

    /// Metadata for a directory.
    pub fn directory() -> Metadata {
        let now = now_millis();
        Metadata {
            file_type: FileType::Directory,
            size: 0,
            mode: 0o755,
            mtime_ms: now,
            atime_ms: now,
        }
    }

    /// Whether this node is a directory.
    pub fn is_dir(&self) -> bool {
        self.file_type == FileType::Directory
    }

    /// Whether this node is a regular file.
    pub fn is_file(&self) -> bool {
        self.file_type == FileType::Regular
    }

    /// The full `st_mode` value (type bits or-ed with permission bits).
    pub fn st_mode(&self) -> u32 {
        self.file_type.mode_bits() | (self.mode & 0o7777)
    }
}

/// A single entry returned by `readdir`/`getdents`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct DirEntry {
    /// The entry's name (no path separators).
    pub name: String,
    /// The entry's type.
    pub file_type: FileType,
}

impl DirEntry {
    /// Creates a regular-file entry.
    pub fn file(name: &str) -> DirEntry {
        DirEntry {
            name: name.to_owned(),
            file_type: FileType::Regular,
        }
    }

    /// Creates a directory entry.
    pub fn dir(name: &str) -> DirEntry {
        DirEntry {
            name: name.to_owned(),
            file_type: FileType::Directory,
        }
    }
}

impl PartialOrd for FileType {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FileType {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.mode_bits().cmp(&other.mode_bits())
    }
}

/// Open flags accepted by the `open` system call, mirroring the subset of
/// `O_*` flags that Browsix's runtimes use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpenFlags {
    /// Open for reading.
    pub read: bool,
    /// Open for writing.
    pub write: bool,
    /// Create the file if it does not exist.
    pub create: bool,
    /// Truncate the file to zero length on open.
    pub truncate: bool,
    /// All writes append to the end of the file.
    pub append: bool,
    /// Fail if `create` is set and the file already exists.
    pub exclusive: bool,
}

impl OpenFlags {
    /// Linux flag bit for write-only access.
    pub const O_WRONLY: u32 = 0o1;
    /// Linux flag bit for read-write access.
    pub const O_RDWR: u32 = 0o2;
    /// Linux flag bit for create.
    pub const O_CREAT: u32 = 0o100;
    /// Linux flag bit for exclusive create.
    pub const O_EXCL: u32 = 0o200;
    /// Linux flag bit for truncate.
    pub const O_TRUNC: u32 = 0o1000;
    /// Linux flag bit for append.
    pub const O_APPEND: u32 = 0o2000;

    /// Read-only open.
    pub fn read_only() -> OpenFlags {
        OpenFlags {
            read: true,
            ..OpenFlags::default()
        }
    }

    /// Write-only open that creates and truncates — what `>` redirection and
    /// `fopen("w")` do.
    pub fn write_create_truncate() -> OpenFlags {
        OpenFlags {
            write: true,
            create: true,
            truncate: true,
            ..OpenFlags::default()
        }
    }

    /// Append open that creates — what `>>` redirection does.
    pub fn append_create() -> OpenFlags {
        OpenFlags {
            write: true,
            create: true,
            append: true,
            ..OpenFlags::default()
        }
    }

    /// Read-write open.
    pub fn read_write() -> OpenFlags {
        OpenFlags {
            read: true,
            write: true,
            ..OpenFlags::default()
        }
    }

    /// Parses Linux-style numeric `open(2)` flags.
    ///
    /// # Errors
    ///
    /// Returns [`Errno::EINVAL`] if both `O_WRONLY` and `O_RDWR` are present.
    pub fn from_bits(bits: u32) -> Result<OpenFlags, Errno> {
        let access = bits & 0o3;
        let (read, write) = match access {
            0 => (true, false),
            Self::O_WRONLY => (false, true),
            Self::O_RDWR => (true, true),
            _ => return Err(Errno::EINVAL),
        };
        Ok(OpenFlags {
            read,
            write,
            create: bits & Self::O_CREAT != 0,
            exclusive: bits & Self::O_EXCL != 0,
            truncate: bits & Self::O_TRUNC != 0,
            append: bits & Self::O_APPEND != 0,
        })
    }

    /// Encodes these flags back into Linux-style numeric bits.
    pub fn to_bits(self) -> u32 {
        let mut bits = match (self.read, self.write) {
            (_, false) => 0,
            (false, true) => Self::O_WRONLY,
            (true, true) => Self::O_RDWR,
        };
        if self.create {
            bits |= Self::O_CREAT;
        }
        if self.exclusive {
            bits |= Self::O_EXCL;
        }
        if self.truncate {
            bits |= Self::O_TRUNC;
        }
        if self.append {
            bits |= Self::O_APPEND;
        }
        bits
    }
}

/// Milliseconds since the Unix epoch, the timestamp unit used throughout the
/// file system (JavaScript's `Date.now()` granularity).
pub fn now_millis() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_constructors() {
        let file = Metadata::regular(120);
        assert!(file.is_file());
        assert!(!file.is_dir());
        assert_eq!(file.size, 120);
        assert_eq!(file.st_mode() & 0o170000, 0o100000);

        let dir = Metadata::directory();
        assert!(dir.is_dir());
        assert_eq!(dir.st_mode() & 0o170000, 0o040000);
    }

    #[test]
    fn file_type_chars() {
        assert_eq!(FileType::Regular.type_char(), '-');
        assert_eq!(FileType::Directory.type_char(), 'd');
        assert_eq!(FileType::Symlink.type_char(), 'l');
    }

    #[test]
    fn open_flags_round_trip_through_bits() {
        let variants = [
            OpenFlags::read_only(),
            OpenFlags::write_create_truncate(),
            OpenFlags::append_create(),
            OpenFlags::read_write(),
            OpenFlags {
                write: true,
                create: true,
                exclusive: true,
                ..OpenFlags::default()
            },
        ];
        for flags in variants {
            let bits = flags.to_bits();
            let parsed = OpenFlags::from_bits(bits).unwrap();
            assert_eq!(parsed, flags, "bits {bits:o}");
        }
    }

    #[test]
    fn open_flags_reject_conflicting_access_mode() {
        assert_eq!(OpenFlags::from_bits(0o3), Err(Errno::EINVAL));
    }

    #[test]
    fn linux_open_bits_are_understood() {
        // O_WRONLY|O_CREAT|O_TRUNC = 0o1101, what creat(2) uses.
        let flags = OpenFlags::from_bits(0o1101).unwrap();
        assert!(flags.write && flags.create && flags.truncate && !flags.read);
        // O_RDWR|O_APPEND
        let flags = OpenFlags::from_bits(0o2002).unwrap();
        assert!(flags.read && flags.write && flags.append);
    }

    #[test]
    fn dir_entries_sort_by_name_then_type() {
        let mut entries = [DirEntry::file("b"), DirEntry::dir("a")];
        entries.sort();
        assert_eq!(entries[0].name, "a");
    }

    #[test]
    fn now_millis_is_monotonic_enough() {
        let a = now_millis();
        let b = now_millis();
        assert!(b >= a);
        assert!(a > 1_500_000_000_000); // after 2017
    }
}
