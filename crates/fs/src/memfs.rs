//! An in-memory file system, the workhorse writable backend.
//!
//! This is the analogue of BrowserFS's `InMemory` backend, restructured
//! around *inodes*: the directory tree maps names to nodes, and every regular
//! file's contents live in their own `Arc<RwLock<..>>` so an open
//! [`FileHandle`] can keep reading and writing the file
//! without ever re-walking the path — including after the file is renamed or
//! unlinked, exactly like a Unix inode held open.  It backs `/tmp`, the
//! writable layer of overlays, and the staged application files in the case
//! studies.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::backend::{FileSystem, FsResult};
use crate::errno::Errno;
use crate::handle::FileHandle;
use crate::path::components;
use crate::types::{now_millis, DirEntry, FileType, Metadata, OpenFlags};

/// The contents and attributes of one regular file — the inode.  Shared by
/// the directory tree and every open handle.
#[derive(Debug)]
struct FileNode {
    data: Vec<u8>,
    mode: u32,
    mtime_ms: u64,
    atime_ms: u64,
}

impl FileNode {
    fn metadata(&self) -> Metadata {
        Metadata {
            file_type: FileType::Regular,
            size: self.data.len() as u64,
            mode: self.mode,
            mtime_ms: self.mtime_ms,
            atime_ms: self.atime_ms,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    /// A regular file; cloning shares the inode.
    File(Arc<RwLock<FileNode>>),
    Dir {
        children: BTreeMap<String, Node>,
        mode: u32,
        mtime_ms: u64,
        atime_ms: u64,
    },
}

impl Node {
    fn new_dir() -> Node {
        let now = now_millis();
        Node::Dir {
            children: BTreeMap::new(),
            mode: 0o755,
            mtime_ms: now,
            atime_ms: now,
        }
    }

    fn new_file(mode: u32) -> Node {
        let now = now_millis();
        Node::File(Arc::new(RwLock::new(FileNode {
            data: Vec::new(),
            mode,
            mtime_ms: now,
            atime_ms: now,
        })))
    }

    fn metadata(&self) -> Metadata {
        match self {
            Node::File(inode) => inode.read().metadata(),
            Node::Dir {
                mode,
                mtime_ms,
                atime_ms,
                ..
            } => Metadata {
                file_type: FileType::Directory,
                size: 0,
                mode: *mode,
                mtime_ms: *mtime_ms,
                atime_ms: *atime_ms,
            },
        }
    }
}

/// A writable, in-memory file system.
#[derive(Debug)]
pub struct MemFs {
    root: RwLock<Node>,
}

/// A handle to an open `MemFs` file: an `Arc` straight to the inode, so I/O
/// never touches the directory tree (and survives rename/unlink).
struct MemHandle {
    inode: Arc<RwLock<FileNode>>,
}

impl FileHandle for MemHandle {
    fn backend_name(&self) -> &'static str {
        "memfs"
    }

    fn metadata(&self) -> FsResult<Metadata> {
        Ok(self.inode.read().metadata())
    }

    fn read_at(&self, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let inode = self.inode.read();
        let start = (offset as usize).min(inode.data.len());
        let end = start.saturating_add(len).min(inode.data.len());
        Ok(inode.data[start..end].to_vec())
    }

    fn write_at(&self, offset: u64, data: &[u8]) -> FsResult<usize> {
        let mut inode = self.inode.write();
        let offset = offset as usize;
        if inode.data.len() < offset {
            inode.data.resize(offset, 0);
        }
        let end = offset + data.len();
        if inode.data.len() < end {
            inode.data.resize(end, 0);
        }
        inode.data[offset..end].copy_from_slice(data);
        inode.mtime_ms = now_millis();
        Ok(data.len())
    }

    fn append(&self, data: &[u8]) -> FsResult<u64> {
        // Seek-to-end and write under one lock acquisition: concurrent
        // appenders can interleave but never overwrite (O_APPEND semantics).
        let mut inode = self.inode.write();
        inode.data.extend_from_slice(data);
        inode.mtime_ms = now_millis();
        Ok(inode.data.len() as u64)
    }

    fn truncate(&self, size: u64) -> FsResult<()> {
        let mut inode = self.inode.write();
        inode.data.resize(size as usize, 0);
        inode.mtime_ms = now_millis();
        Ok(())
    }
}

/// A handle over a fresh, anonymous inode not linked into any directory
/// tree.  The overlay promotes to one of these when a pending write's name
/// has been unlinked or renamed away (POSIX write-after-unlink semantics),
/// and the kernel's `shm_open` objects are backed by them — the data lives
/// exactly as long as the handle.
pub fn detached_handle(data: Vec<u8>) -> Arc<dyn FileHandle> {
    let now = now_millis();
    Arc::new(MemHandle {
        inode: Arc::new(RwLock::new(FileNode {
            data,
            mode: 0o600,
            mtime_ms: now,
            atime_ms: now,
        })),
    })
}

impl MemFs {
    /// Creates an empty file system containing only the root directory.
    pub fn new() -> MemFs {
        MemFs {
            root: RwLock::new(Node::new_dir()),
        }
    }

    /// Total number of nodes (files + directories, including the root); a
    /// cheap sanity metric used by tests and the boot-time statistics.
    pub fn node_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::File(_) => 1,
                Node::Dir { children, .. } => 1 + children.values().map(count).sum::<usize>(),
            }
        }
        count(&self.root.read())
    }

    fn with_node<T>(&self, path: &str, f: impl FnOnce(&Node) -> FsResult<T>) -> FsResult<T> {
        let root = self.root.read();
        let node = lookup(&root, path)?;
        f(node)
    }

    fn with_parent_mut<T>(
        &self,
        path: &str,
        f: impl FnOnce(&mut BTreeMap<String, Node>, &str) -> FsResult<T>,
    ) -> FsResult<T> {
        let comps = components(path);
        let (name, parents) = match comps.split_last() {
            Some((name, parents)) => (name.clone(), parents.to_vec()),
            None => return Err(Errno::EINVAL), // operating on "/"
        };
        let mut root = self.root.write();
        let mut current = &mut *root;
        for comp in &parents {
            current = match current {
                Node::Dir { children, .. } => children.get_mut(comp).ok_or(Errno::ENOENT)?,
                Node::File(_) => return Err(Errno::ENOTDIR),
            };
        }
        match current {
            Node::Dir { children, mtime_ms, .. } => {
                *mtime_ms = now_millis();
                f(children, &name)
            }
            Node::File(_) => Err(Errno::ENOTDIR),
        }
    }

    /// Resolves `path` to its inode (the open-time name resolution).
    fn file_inode(&self, path: &str) -> FsResult<Arc<RwLock<FileNode>>> {
        self.with_node(path, |node| match node {
            Node::File(inode) => Ok(Arc::clone(inode)),
            Node::Dir { .. } => Err(Errno::EISDIR),
        })
    }
}

impl Default for MemFs {
    fn default() -> Self {
        MemFs::new()
    }
}

fn lookup<'a>(root: &'a Node, path: &str) -> FsResult<&'a Node> {
    let mut current = root;
    for comp in components(path) {
        current = match current {
            Node::Dir { children, .. } => children.get(&comp).ok_or(Errno::ENOENT)?,
            Node::File(_) => return Err(Errno::ENOTDIR),
        };
    }
    Ok(current)
}

impl FileSystem for MemFs {
    fn backend_name(&self) -> &'static str {
        "memfs"
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        self.with_node(path, |node| Ok(node.metadata()))
    }

    fn read_dir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        self.with_node(path, |node| match node {
            Node::Dir { children, .. } => Ok(children
                .iter()
                .map(|(name, child)| DirEntry {
                    name: name.clone(),
                    file_type: child.metadata().file_type,
                })
                .collect()),
            Node::File(_) => Err(Errno::ENOTDIR),
        })
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        self.with_parent_mut(path, |children, name| {
            if children.contains_key(name) {
                return Err(Errno::EEXIST);
            }
            children.insert(name.to_owned(), Node::new_dir());
            Ok(())
        })
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        self.with_parent_mut(path, |children, name| match children.get(name) {
            Some(Node::Dir {
                children: grandchildren,
                ..
            }) => {
                if grandchildren.is_empty() {
                    children.remove(name);
                    Ok(())
                } else {
                    Err(Errno::ENOTEMPTY)
                }
            }
            Some(Node::File(_)) => Err(Errno::ENOTDIR),
            None => Err(Errno::ENOENT),
        })
    }

    fn create(&self, path: &str, mode: u32) -> FsResult<()> {
        self.with_parent_mut(path, |children, name| match children.get(name) {
            Some(Node::File(_)) => Ok(()),
            Some(Node::Dir { .. }) => Err(Errno::EISDIR),
            None => {
                children.insert(name.to_owned(), Node::new_file(mode));
                Ok(())
            }
        })
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        self.with_parent_mut(path, |children, name| match children.get(name) {
            Some(Node::File(_)) => {
                // Open handles keep the inode alive through their Arc; only
                // the name goes away, as with a real unlink.
                children.remove(name);
                Ok(())
            }
            Some(Node::Dir { .. }) => Err(Errno::EISDIR),
            None => Err(Errno::ENOENT),
        })
    }

    fn rename(&self, from: &str, to: &str) -> FsResult<()> {
        // Detach the source subtree, then reattach it at the destination.
        // File nodes are Arc-shared inodes, so open handles follow the move.
        let node = self.with_parent_mut(from, |children, name| children.remove(name).ok_or(Errno::ENOENT))?;
        let reattach = self.with_parent_mut(to, |children, name| {
            match children.get(name) {
                Some(Node::Dir { .. }) => return Err(Errno::EISDIR),
                _ => children.insert(name.to_owned(), node.clone()),
            };
            Ok(())
        });
        if reattach.is_err() {
            // Roll the detach back so a failed rename is not destructive.
            let _ = self.with_parent_mut(from, |children, name| {
                children.insert(name.to_owned(), node.clone());
                Ok(())
            });
        }
        reattach
    }

    fn open_handle(&self, path: &str, _flags: OpenFlags) -> FsResult<Arc<dyn FileHandle>> {
        let inode = self.file_inode(path)?;
        Ok(Arc::new(MemHandle { inode }))
    }

    fn set_times(&self, path: &str, atime_ms: u64, mtime_ms: u64) -> FsResult<()> {
        self.with_parent_mut(path, |children, name| match children.get_mut(name) {
            Some(Node::File(inode)) => {
                let mut inode = inode.write();
                inode.atime_ms = atime_ms;
                inode.mtime_ms = mtime_ms;
                Ok(())
            }
            Some(Node::Dir {
                atime_ms: a,
                mtime_ms: m,
                ..
            }) => {
                *a = atime_ms;
                *m = mtime_ms;
                Ok(())
            }
            None => Err(Errno::ENOENT),
        })
    }

    fn chmod(&self, path: &str, mode: u32) -> FsResult<()> {
        self.with_parent_mut(path, |children, name| match children.get_mut(name) {
            Some(Node::File(inode)) => {
                inode.write().mode = mode & 0o7777;
                Ok(())
            }
            Some(Node::Dir { mode: m, .. }) => {
                *m = mode & 0o7777;
                Ok(())
            }
            None => Err(Errno::ENOENT),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_exists_and_is_a_directory() {
        let fs = MemFs::new();
        assert!(fs.stat("/").unwrap().is_dir());
        assert!(fs.read_dir("/").unwrap().is_empty());
        assert_eq!(fs.node_count(), 1);
    }

    #[test]
    fn mkdir_create_write_read() {
        let fs = MemFs::new();
        fs.mkdir("/docs").unwrap();
        fs.create("/docs/a.txt", 0o644).unwrap();
        fs.write_at("/docs/a.txt", 0, b"hello").unwrap();
        assert_eq!(fs.read_at("/docs/a.txt", 0, 5).unwrap(), b"hello");
        assert_eq!(fs.stat("/docs/a.txt").unwrap().size, 5);
        assert_eq!(fs.node_count(), 3);
    }

    #[test]
    fn mkdir_missing_parent_is_enoent() {
        let fs = MemFs::new();
        assert_eq!(fs.mkdir("/a/b"), Err(Errno::ENOENT));
        assert_eq!(fs.create("/a/b.txt", 0o644), Err(Errno::ENOENT));
    }

    #[test]
    fn mkdir_existing_is_eexist() {
        let fs = MemFs::new();
        fs.mkdir("/a").unwrap();
        assert_eq!(fs.mkdir("/a"), Err(Errno::EEXIST));
    }

    #[test]
    fn unlink_and_rmdir_enforce_types() {
        let fs = MemFs::new();
        fs.mkdir("/d").unwrap();
        fs.write_file("/f", b"x").unwrap();
        assert_eq!(fs.unlink("/d"), Err(Errno::EISDIR));
        assert_eq!(fs.rmdir("/f"), Err(Errno::ENOTDIR));
        fs.unlink("/f").unwrap();
        fs.rmdir("/d").unwrap();
        assert!(!fs.exists("/f"));
        assert!(!fs.exists("/d"));
    }

    #[test]
    fn rmdir_non_empty_fails() {
        let fs = MemFs::new();
        fs.mkdir("/d").unwrap();
        fs.write_file("/d/f", b"x").unwrap();
        assert_eq!(fs.rmdir("/d"), Err(Errno::ENOTEMPTY));
    }

    #[test]
    fn sparse_writes_zero_fill() {
        let fs = MemFs::new();
        fs.create("/sparse", 0o644).unwrap();
        fs.write_at("/sparse", 4, b"tail").unwrap();
        let data = fs.read_file("/sparse").unwrap();
        assert_eq!(data, b"\0\0\0\0tail");
    }

    #[test]
    fn read_past_end_is_short() {
        let fs = MemFs::new();
        fs.write_file("/f", b"abc").unwrap();
        assert_eq!(fs.read_at("/f", 2, 10).unwrap(), b"c");
        assert!(fs.read_at("/f", 10, 10).unwrap().is_empty());
    }

    #[test]
    fn rename_moves_subtrees() {
        let fs = MemFs::new();
        fs.mkdir("/src").unwrap();
        fs.write_file("/src/a", b"1").unwrap();
        fs.mkdir("/dst").unwrap();
        fs.rename("/src", "/dst/moved").unwrap();
        assert!(!fs.exists("/src"));
        assert_eq!(fs.read_file("/dst/moved/a").unwrap(), b"1");
    }

    #[test]
    fn rename_onto_directory_fails_and_rolls_back() {
        let fs = MemFs::new();
        fs.write_file("/f", b"1").unwrap();
        fs.mkdir("/d").unwrap();
        assert_eq!(fs.rename("/f", "/d"), Err(Errno::EISDIR));
        assert_eq!(fs.read_file("/f").unwrap(), b"1");
    }

    #[test]
    fn rename_missing_source_is_enoent() {
        let fs = MemFs::new();
        assert_eq!(fs.rename("/nope", "/other"), Err(Errno::ENOENT));
    }

    #[test]
    fn truncate_grows_and_shrinks() {
        let fs = MemFs::new();
        fs.write_file("/f", b"abcdef").unwrap();
        fs.truncate("/f", 3).unwrap();
        assert_eq!(fs.read_file("/f").unwrap(), b"abc");
        fs.truncate("/f", 5).unwrap();
        assert_eq!(fs.read_file("/f").unwrap(), b"abc\0\0");
    }

    #[test]
    fn chmod_and_times() {
        let fs = MemFs::new();
        fs.write_file("/f", b"x").unwrap();
        fs.chmod("/f", 0o755).unwrap();
        assert_eq!(fs.stat("/f").unwrap().mode, 0o755);
        fs.set_times("/f", 1000, 2000).unwrap();
        let meta = fs.stat("/f").unwrap();
        assert_eq!(meta.atime_ms, 1000);
        assert_eq!(meta.mtime_ms, 2000);
        assert_eq!(fs.set_times("/missing", 0, 0), Err(Errno::ENOENT));
    }

    #[test]
    fn path_through_file_is_enotdir() {
        let fs = MemFs::new();
        fs.write_file("/f", b"x").unwrap();
        assert_eq!(fs.stat("/f/child"), Err(Errno::ENOTDIR));
        assert_eq!(fs.read_dir("/f"), Err(Errno::ENOTDIR));
    }

    #[test]
    fn readdir_is_sorted_by_name() {
        let fs = MemFs::new();
        fs.write_file("/c", b"").unwrap();
        fs.write_file("/a", b"").unwrap();
        fs.mkdir("/b").unwrap();
        let names: Vec<String> = fs.read_dir("/").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn operations_on_root_are_rejected() {
        let fs = MemFs::new();
        assert_eq!(fs.mkdir("/"), Err(Errno::EINVAL));
        assert_eq!(fs.unlink("/"), Err(Errno::EINVAL));
    }

    // ---- handle-layer (inode) behaviour -------------------------------------

    #[test]
    fn handle_io_round_trips_without_paths() {
        let fs = MemFs::new();
        fs.write_file("/f", b"hello world").unwrap();
        let h = fs.open_handle("/f", OpenFlags::read_write()).unwrap();
        assert_eq!(h.read_at(6, 5).unwrap(), b"world");
        assert_eq!(h.write_at(0, b"HELLO").unwrap(), 5);
        assert_eq!(fs.read_file("/f").unwrap(), b"HELLO world");
        h.truncate(5).unwrap();
        assert_eq!(h.metadata().unwrap().size, 5);
        assert_eq!(h.backend_name(), "memfs");
        h.fsync().unwrap();
    }

    #[test]
    fn open_handle_of_dir_is_eisdir_and_missing_is_enoent() {
        let fs = MemFs::new();
        fs.mkdir("/d").unwrap();
        assert!(matches!(
            fs.open_handle("/d", OpenFlags::read_only()),
            Err(Errno::EISDIR)
        ));
        assert!(matches!(
            fs.open_handle("/nope", OpenFlags::read_only()),
            Err(Errno::ENOENT)
        ));
    }

    #[test]
    fn handle_survives_rename_and_unlink() {
        let fs = MemFs::new();
        fs.write_file("/f", b"inode").unwrap();
        let h = fs.open_handle("/f", OpenFlags::read_write()).unwrap();
        fs.rename("/f", "/g").unwrap();
        assert_eq!(h.read_at(0, 5).unwrap(), b"inode");
        h.write_at(0, b"INODE").unwrap();
        assert_eq!(fs.read_file("/g").unwrap(), b"INODE");
        // After unlink the name is gone but the open handle still works.
        fs.unlink("/g").unwrap();
        assert_eq!(h.read_at(0, 5).unwrap(), b"INODE");
        assert_eq!(h.append(b"!").unwrap(), 6);
    }

    #[test]
    fn append_is_atomic_across_two_handles() {
        let fs = MemFs::new();
        fs.write_file("/log", b"").unwrap();
        let a = fs.open_handle("/log", OpenFlags::append_create()).unwrap();
        let b = fs.open_handle("/log", OpenFlags::append_create()).unwrap();
        // Interleaved appends from two independent opens: every write lands
        // at the then-current end of file, nothing is overwritten.
        assert_eq!(a.append(b"a1 ").unwrap(), 3);
        assert_eq!(b.append(b"b1 ").unwrap(), 6);
        assert_eq!(a.append(b"a2 ").unwrap(), 9);
        assert_eq!(b.append(b"b2 ").unwrap(), 12);
        assert_eq!(fs.read_file("/log").unwrap(), b"a1 b1 a2 b2 ");
    }
}
