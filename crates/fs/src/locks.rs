//! Advisory multi-process path locks.
//!
//! BrowserFS was written for a single process; Browsix "adds locking
//! operations to the overlay filesystem to prevent operations from different
//! processes from interleaving".  [`PathLocks`] is that mechanism: an
//! advisory, per-path reader/writer lock table keyed by process id, used by
//! the kernel around compound file-system operations (and exposed to guests
//! through `flock`-style helpers).

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::errno::Errno;
use crate::path::normalize;

/// The kind of lock being requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// A shared (reader) lock; any number may coexist.
    Shared,
    /// An exclusive (writer) lock; excludes all other locks.
    Exclusive,
}

#[derive(Debug, Default)]
struct LockState {
    /// Process ids currently holding a shared lock.
    shared: Vec<u32>,
    /// Process id holding the exclusive lock, if any.
    exclusive: Option<u32>,
}

/// An advisory lock table keyed by normalised path.
#[derive(Debug, Default)]
pub struct PathLocks {
    locks: Mutex<HashMap<String, LockState>>,
}

impl PathLocks {
    /// Creates an empty lock table.
    pub fn new() -> PathLocks {
        PathLocks::default()
    }

    /// Attempts to acquire a lock of `kind` on `path` for process `pid`.
    ///
    /// Lock acquisition is non-blocking, matching `flock(LOCK_NB)`: the kernel
    /// turns a failed acquisition into a retried/pending operation instead of
    /// blocking its event loop.
    ///
    /// # Errors
    ///
    /// [`Errno::EAGAIN`] if the lock is currently held incompatibly.
    pub fn try_lock(&self, path: &str, pid: u32, kind: LockKind) -> Result<(), Errno> {
        let path = normalize(path);
        let mut locks = self.locks.lock();
        let state = locks.entry(path).or_default();
        match kind {
            LockKind::Shared => {
                if state.exclusive.is_some() && state.exclusive != Some(pid) {
                    return Err(Errno::EAGAIN);
                }
                if !state.shared.contains(&pid) {
                    state.shared.push(pid);
                }
                Ok(())
            }
            LockKind::Exclusive => {
                let other_shared = state.shared.iter().any(|&holder| holder != pid);
                let other_exclusive = state.exclusive.is_some() && state.exclusive != Some(pid);
                if other_shared || other_exclusive {
                    return Err(Errno::EAGAIN);
                }
                state.exclusive = Some(pid);
                Ok(())
            }
        }
    }

    /// Releases any lock process `pid` holds on `path`.  Releasing a lock that
    /// is not held is a no-op, as with `flock`.
    pub fn unlock(&self, path: &str, pid: u32) {
        let path = normalize(path);
        let mut locks = self.locks.lock();
        if let Some(state) = locks.get_mut(&path) {
            state.shared.retain(|&holder| holder != pid);
            if state.exclusive == Some(pid) {
                state.exclusive = None;
            }
            if state.shared.is_empty() && state.exclusive.is_none() {
                locks.remove(&path);
            }
        }
    }

    /// Releases every lock held by `pid` (called when a process exits).
    pub fn release_all(&self, pid: u32) {
        let mut locks = self.locks.lock();
        locks.retain(|_, state| {
            state.shared.retain(|&holder| holder != pid);
            if state.exclusive == Some(pid) {
                state.exclusive = None;
            }
            !(state.shared.is_empty() && state.exclusive.is_none())
        });
    }

    /// Whether any process currently holds a lock on `path`.
    pub fn is_locked(&self, path: &str) -> bool {
        let path = normalize(path);
        self.locks.lock().contains_key(&path)
    }

    /// Number of paths with at least one lock holder.
    pub fn locked_paths(&self) -> usize {
        self.locks.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_locks_coexist() {
        let locks = PathLocks::new();
        locks.try_lock("/data", 1, LockKind::Shared).unwrap();
        locks.try_lock("/data", 2, LockKind::Shared).unwrap();
        assert!(locks.is_locked("/data"));
        assert_eq!(locks.locked_paths(), 1);
    }

    #[test]
    fn exclusive_lock_excludes_others() {
        let locks = PathLocks::new();
        locks.try_lock("/data", 1, LockKind::Exclusive).unwrap();
        assert_eq!(locks.try_lock("/data", 2, LockKind::Exclusive), Err(Errno::EAGAIN));
        assert_eq!(locks.try_lock("/data", 2, LockKind::Shared), Err(Errno::EAGAIN));
        // The holder itself may re-acquire.
        locks.try_lock("/data", 1, LockKind::Exclusive).unwrap();
        locks.try_lock("/data", 1, LockKind::Shared).unwrap();
    }

    #[test]
    fn shared_holders_block_exclusive_from_others() {
        let locks = PathLocks::new();
        locks.try_lock("/data", 1, LockKind::Shared).unwrap();
        assert_eq!(locks.try_lock("/data", 2, LockKind::Exclusive), Err(Errno::EAGAIN));
        // Upgrade by the sole shared holder succeeds.
        locks.try_lock("/data", 1, LockKind::Exclusive).unwrap();
    }

    #[test]
    fn unlock_releases_and_cleans_up() {
        let locks = PathLocks::new();
        locks.try_lock("/data", 1, LockKind::Exclusive).unwrap();
        locks.unlock("/data", 1);
        assert!(!locks.is_locked("/data"));
        locks.try_lock("/data", 2, LockKind::Exclusive).unwrap();
        // Unlocking something we do not hold is a no-op.
        locks.unlock("/data", 3);
        assert!(locks.is_locked("/data"));
    }

    #[test]
    fn release_all_drops_every_lock_of_a_process() {
        let locks = PathLocks::new();
        locks.try_lock("/a", 7, LockKind::Shared).unwrap();
        locks.try_lock("/b", 7, LockKind::Exclusive).unwrap();
        locks.try_lock("/a", 8, LockKind::Shared).unwrap();
        locks.release_all(7);
        assert!(!locks.is_locked("/b"));
        assert!(locks.is_locked("/a"));
        locks.try_lock("/b", 8, LockKind::Exclusive).unwrap();
    }

    #[test]
    fn paths_are_normalized_before_locking() {
        let locks = PathLocks::new();
        locks.try_lock("/a/../b", 1, LockKind::Exclusive).unwrap();
        assert_eq!(locks.try_lock("/b", 2, LockKind::Exclusive), Err(Errno::EAGAIN));
    }
}
