//! Read-only bundles: a file system built ahead of time from static content.
//!
//! BrowserFS ships a zip-file backend that web applications use to stage
//! read-only assets.  Browsix's LaTeX editor and meme generator both stage
//! files this way (Makefiles, document sources, fonts, base images).  Our
//! [`Bundle`] is the logical equivalent: a set of `(path, bytes)` pairs
//! assembled by a builder and served read-only by [`BundleFs`].

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::backend::{FileSystem, FsResult};
use crate::errno::Errno;
use crate::handle::{deny_write_open, FileHandle, StaticHandle};
use crate::path::{components, normalize};
use crate::types::{now_millis, DirEntry, FileType, Metadata, OpenFlags};

/// A static set of files, assembled with [`Bundle::insert`] and then mounted
/// through [`BundleFs`].
#[derive(Debug, Clone, Default)]
pub struct Bundle {
    files: BTreeMap<String, Arc<Vec<u8>>>,
}

impl Bundle {
    /// Creates an empty bundle.
    pub fn new() -> Bundle {
        Bundle::default()
    }

    /// Adds (or replaces) a file.  The path is normalised.
    pub fn insert(&mut self, path: &str, data: impl Into<Vec<u8>>) -> &mut Self {
        self.files.insert(normalize(path), Arc::new(data.into()));
        self
    }

    /// Adds a UTF-8 text file; convenience wrapper over [`Bundle::insert`].
    pub fn insert_text(&mut self, path: &str, text: &str) -> &mut Self {
        self.insert(path, text.as_bytes().to_vec())
    }

    /// Number of files in the bundle.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the bundle contains no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total payload size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.files.values().map(|d| d.len() as u64).sum()
    }

    /// Iterates over `(path, data)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.files.iter().map(|(p, d)| (p.as_str(), d.as_slice()))
    }

    /// Looks up a file by (normalised) path.
    pub fn get(&self, path: &str) -> Option<&[u8]> {
        self.files.get(&normalize(path)).map(|d| d.as_slice())
    }

    /// All file paths, sorted.
    pub fn paths(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }
}

/// A read-only [`FileSystem`] serving the contents of a [`Bundle`].
///
/// Directories are implied by file paths: if `/a/b/c.txt` exists, `/a` and
/// `/a/b` are directories.
#[derive(Debug)]
pub struct BundleFs {
    bundle: Bundle,
    created_ms: u64,
}

impl BundleFs {
    /// Wraps a bundle in a read-only file system.
    pub fn new(bundle: Bundle) -> BundleFs {
        BundleFs {
            bundle,
            created_ms: now_millis(),
        }
    }

    /// Access to the underlying bundle.
    pub fn bundle(&self) -> &Bundle {
        &self.bundle
    }

    fn is_implied_dir(&self, path: &str) -> bool {
        let normalized = normalize(path);
        if normalized == "/" {
            return true;
        }
        let prefix = format!("{normalized}/");
        self.bundle.files.keys().any(|p| p.starts_with(&prefix))
    }
}

impl FileSystem for BundleFs {
    fn backend_name(&self) -> &'static str {
        "bundlefs"
    }

    fn read_only(&self) -> bool {
        true
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        let normalized = normalize(path);
        if let Some(data) = self.bundle.files.get(&normalized) {
            return Ok(Metadata {
                file_type: FileType::Regular,
                size: data.len() as u64,
                mode: 0o444,
                mtime_ms: self.created_ms,
                atime_ms: self.created_ms,
            });
        }
        if self.is_implied_dir(&normalized) {
            return Ok(Metadata {
                file_type: FileType::Directory,
                size: 0,
                mode: 0o555,
                mtime_ms: self.created_ms,
                atime_ms: self.created_ms,
            });
        }
        Err(Errno::ENOENT)
    }

    fn read_dir(&self, path: &str) -> FsResult<Vec<DirEntry>> {
        let normalized = normalize(path);
        if self.bundle.files.contains_key(&normalized) {
            return Err(Errno::ENOTDIR);
        }
        if !self.is_implied_dir(&normalized) {
            return Err(Errno::ENOENT);
        }
        let depth = components(&normalized).len();
        let mut entries: BTreeMap<String, FileType> = BTreeMap::new();
        let prefix = if normalized == "/" {
            String::from("/")
        } else {
            format!("{normalized}/")
        };
        for file_path in self.bundle.files.keys() {
            if !file_path.starts_with(&prefix) {
                continue;
            }
            let comps = components(file_path);
            if comps.len() == depth + 1 {
                entries.insert(comps[depth].clone(), FileType::Regular);
            } else if comps.len() > depth + 1 {
                entries.entry(comps[depth].clone()).or_insert(FileType::Directory);
            }
        }
        Ok(entries
            .into_iter()
            .map(|(name, file_type)| DirEntry { name, file_type })
            .collect())
    }

    fn mkdir(&self, _path: &str) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn rmdir(&self, _path: &str) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn create(&self, _path: &str, _mode: u32) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn unlink(&self, _path: &str) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn rename(&self, _from: &str, _to: &str) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    /// The bundle's "inode" is the `Arc`'d byte buffer itself: the handle
    /// holds it directly, so reads never consult the path map again.
    fn open_handle(&self, path: &str, flags: OpenFlags) -> FsResult<Arc<dyn FileHandle>> {
        deny_write_open(flags)?;
        let normalized = normalize(path);
        match self.bundle.files.get(&normalized) {
            Some(data) => Ok(Arc::new(StaticHandle {
                backend: "bundlefs",
                data: Arc::clone(data),
                mode: 0o444,
                timestamp_ms: self.created_ms,
            })),
            None if self.is_implied_dir(&normalized) => Err(Errno::EISDIR),
            None => Err(Errno::ENOENT),
        }
    }

    fn set_times(&self, _path: &str, _atime_ms: u64, _mtime_ms: u64) -> FsResult<()> {
        Err(Errno::EROFS)
    }

    fn chmod(&self, _path: &str, _mode: u32) -> FsResult<()> {
        Err(Errno::EROFS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BundleFs {
        let mut bundle = Bundle::new();
        bundle
            .insert_text("/texmf/article.cls", "\\ProvidesClass{article}")
            .insert_text("/texmf/fonts/cmr10.tfm", "font data")
            .insert_text("/Makefile", "all: main.pdf");
        BundleFs::new(bundle)
    }

    #[test]
    fn bundle_builder_accumulates_files() {
        let mut bundle = Bundle::new();
        assert!(bundle.is_empty());
        bundle.insert("/a", vec![1, 2, 3]).insert_text("b/c", "hi");
        assert_eq!(bundle.len(), 2);
        assert_eq!(bundle.total_bytes(), 5);
        assert_eq!(bundle.get("b/c"), Some(&b"hi"[..]));
        assert_eq!(bundle.paths(), vec!["/a".to_string(), "/b/c".to_string()]);
        assert_eq!(bundle.iter().count(), 2);
    }

    #[test]
    fn stat_files_and_implied_directories() {
        let fs = sample();
        assert!(fs.stat("/texmf/article.cls").unwrap().is_file());
        assert!(fs.stat("/texmf").unwrap().is_dir());
        assert!(fs.stat("/texmf/fonts").unwrap().is_dir());
        assert!(fs.stat("/").unwrap().is_dir());
        assert_eq!(fs.stat("/missing"), Err(Errno::ENOENT));
    }

    #[test]
    fn read_dir_lists_files_and_subdirectories() {
        let fs = sample();
        let root: Vec<String> = fs.read_dir("/").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(root, vec!["Makefile", "texmf"]);
        let texmf = fs.read_dir("/texmf").unwrap();
        assert_eq!(texmf.len(), 2);
        assert!(texmf
            .iter()
            .any(|e| e.name == "fonts" && e.file_type == FileType::Directory));
        assert_eq!(fs.read_dir("/Makefile"), Err(Errno::ENOTDIR));
        assert_eq!(fs.read_dir("/nope"), Err(Errno::ENOENT));
    }

    #[test]
    fn reads_work_and_writes_are_rejected() {
        let fs = sample();
        assert_eq!(fs.read_file("/Makefile").unwrap(), b"all: main.pdf");
        assert_eq!(fs.read_at("/Makefile", 5, 4).unwrap(), b"main");
        assert!(fs.read_only());
        assert_eq!(fs.write_at("/Makefile", 0, b"x"), Err(Errno::EROFS));
        assert_eq!(fs.create("/new", 0o644), Err(Errno::EROFS));
        assert_eq!(fs.mkdir("/dir"), Err(Errno::EROFS));
        assert_eq!(fs.unlink("/Makefile"), Err(Errno::EROFS));
        assert_eq!(fs.rename("/Makefile", "/m"), Err(Errno::EROFS));
        assert_eq!(fs.truncate("/Makefile", 0), Err(Errno::EROFS));
        assert_eq!(fs.chmod("/Makefile", 0o600), Err(Errno::EROFS));
        assert_eq!(fs.set_times("/Makefile", 0, 0), Err(Errno::EROFS));
        assert_eq!(fs.rmdir("/texmf"), Err(Errno::EROFS));
    }

    #[test]
    fn read_of_directory_is_eisdir() {
        let fs = sample();
        assert_eq!(fs.read_at("/texmf", 0, 10), Err(Errno::EISDIR));
    }
}
