//! The LaTeX editor case study (paper §2 and §5.2, experiment E6).
//!
//! The editor's "Build PDF" button runs GNU Make inside Browsix; Make runs
//! `pdflatex` (twice, when references change) and `bibtex`; the TeX tools read
//! class files, packages and fonts from a TeX Live distribution mounted over
//! HTTP and fetched lazily on first access; and the resulting PDF is read back
//! by the web application.  A native build of the same single-page document
//! takes ~0.1 s; under Browsix it takes ~3 s with synchronous system calls and
//! ~12 s with asynchronous calls and the Emterpreter.
//!
//! The TeX toolchain here is a synthetic equivalent (see DESIGN.md): the
//! guest programs issue the same classes of system calls — reading sources,
//! lazily faulting in packages over the HTTP mount, writing `.aux`/`.bbl`/
//! `.log`/`.pdf` outputs, spawning subprocesses (with `fork` in Emterpreter
//! mode) — and charge calibrated compute so the end-to-end times reproduce the
//! paper's shape.

use std::sync::Arc;
use std::time::{Duration, Instant};

use browsix_browser::{NetworkProfile, RemoteEndpoint, StaticFiles};
use browsix_core::{BootConfig, Kernel};
use browsix_fs::{FileSystem, HttpFs, MemFs, MountedFs};
use browsix_runtime::{
    guest, EmscriptenLauncher, EmscriptenMode, ExecutionProfile, GuestFactory, NativeWorld, RuntimeEnv, SpawnStdio,
};

/// Compute units charged by one `pdflatex` pass over the sample document
/// (calibrated so the native build lands near 0.1 s and the Browsix builds
/// near 3 s / 12 s; see EXPERIMENTS.md).
pub const PDFLATEX_COMPUTE_UNITS: u64 = 120_000;
/// Compute units charged by one `bibtex` run.
pub const BIBTEX_COMPUTE_UNITS: u64 = 15_000;
/// Compute units charged by `make` itself (dependency scanning).
pub const MAKE_COMPUTE_UNITS: u64 = 2_000;

/// How the TeX tools are "compiled": which Emscripten mode and therefore which
/// system-call convention they use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatexMode {
    /// asm.js + synchronous system calls (Chrome with shared memory).
    Sync,
    /// Emterpreter + asynchronous system calls (all browsers; required for
    /// `make`'s use of `fork`).
    Async,
}

/// Builds the synthetic TeX Live distribution served over (simulated) HTTP.
///
/// The distribution is deliberately much larger than any single document
/// needs — the whole point of the lazy HTTP-backed mount is that only the
/// files a build touches are transferred.
pub fn texlive_distribution(package_count: usize) -> (StaticFiles, Vec<(String, u64)>) {
    let files = StaticFiles::new();
    let mut manifest = Vec::new();
    let mut add = |path: String, data: Vec<u8>| {
        manifest.push((path.clone(), data.len() as u64));
        files.insert(&path, data);
    };
    add("/article.cls".to_owned(), vec![b'%'; 48 * 1024]);
    add("/size10.clo".to_owned(), vec![b'%'; 8 * 1024]);
    add("/fonts/cmr10.tfm".to_owned(), vec![0u8; 12 * 1024]);
    add("/fonts/cmbx12.tfm".to_owned(), vec![0u8; 12 * 1024]);
    add("/fonts/cmtt10.tfm".to_owned(), vec![0u8; 12 * 1024]);
    add("/bst/plain.bst".to_owned(), vec![b'%'; 20 * 1024]);
    for i in 0..package_count {
        add(format!("/packages/pkg{i:03}.sty"), vec![b'%'; 16 * 1024]);
    }
    (files, manifest)
}

/// The standard sample project: a single-page paper with a bibliography, the
/// workload of the paper's LaTeX measurement.
pub fn sample_project(fs: &dyn FileSystem, dir: &str) {
    let _ = browsix_fs::backend::make_parent_dirs(fs, &format!("{dir}/main.tex"));
    let _ = fs.mkdir(dir);
    let tex = br#"\documentclass{article}
\usepackage{pkg001}
\usepackage{pkg004}
\usepackage{pkg010}
\usepackage{pkg017}
\begin{document}
\title{BROWSIX: Bridging the Gap Between Unix and the Browser}
\maketitle
A single page document with a bibliography~\cite{browsix}.
\bibliographystyle{plain}
\bibliography{main}
\end{document}
"#;
    let bib = br#"@inproceedings{browsix,
  title = {BROWSIX: Bridging the Gap Between Unix and the Browser},
  author = {Powers, Bobby and Vilk, John and Berger, Emery D.},
  booktitle = {ASPLOS},
  year = {2017},
}
"#;
    let makefile = br#"# Rebuild the paper: pdflatex, bibtex, then pdflatex again.
main.pdf: main.tex main.bib
	pdflatex main.tex
	bibtex main
	pdflatex main.tex
"#;
    fs.write_file(&format!("{dir}/main.tex"), tex).expect("stage main.tex");
    fs.write_file(&format!("{dir}/main.bib"), bib).expect("stage main.bib");
    fs.write_file(&format!("{dir}/Makefile"), makefile)
        .expect("stage Makefile");
}

// ---- the synthetic TeX toolchain ------------------------------------------------

fn scan_packages(tex: &str) -> Vec<String> {
    let mut packages = Vec::new();
    for line in tex.lines() {
        if let Some(rest) = line.trim().strip_prefix("\\usepackage{") {
            if let Some(name) = rest.strip_suffix('}') {
                packages.push(name.to_owned());
            }
        }
    }
    packages
}

/// The `pdflatex` guest program.
pub fn pdflatex_program() -> GuestFactory {
    guest("pdflatex", |env: &mut dyn RuntimeEnv| {
        let args = env.args();
        let Some(source) = args.iter().skip(1).find(|a| a.ends_with(".tex")) else {
            env.eprint("pdflatex: no input file\n");
            return 1;
        };
        let job = source.trim_end_matches(".tex").to_owned();
        let tex = match env.read_file(source) {
            Ok(data) => String::from_utf8_lossy(&data).into_owned(),
            Err(e) => {
                env.eprint(&format!("pdflatex: {source}: {e}\n"));
                return 1;
            }
        };
        env.print(&format!("This is pdfTeX (Browsix) processing {source}\n"));
        let mut log = String::from("pdflatex log\n");

        // The document class, font metrics and every referenced package are
        // read from the TeX Live mount; first access faults them in over HTTP.
        let mut inputs: Vec<String> = vec![
            "/usr/texlive/article.cls".to_owned(),
            "/usr/texlive/size10.clo".to_owned(),
            "/usr/texlive/fonts/cmr10.tfm".to_owned(),
            "/usr/texlive/fonts/cmbx12.tfm".to_owned(),
        ];
        for package in scan_packages(&tex) {
            inputs.push(format!("/usr/texlive/packages/{package}.sty"));
        }
        let mut missing = false;
        for path in &inputs {
            match env.read_file(path) {
                Ok(data) => {
                    env.charge_compute((data.len() as u64) / 2048 + 1);
                    log.push_str(&format!("({path})\n"));
                }
                Err(e) => {
                    env.eprint(&format!("! LaTeX Error: File `{path}' not found: {e}.\n"));
                    missing = true;
                }
            }
        }

        // Typesetting itself: the dominant compute cost.
        env.charge_compute(PDFLATEX_COMPUTE_UNITS);

        // Include the bibliography if bibtex has produced it.
        let bbl = env.read_file(&format!("{job}.bbl")).ok();
        let citations_resolved = bbl.is_some();

        // Outputs: .aux (citations for bibtex), .log, .pdf.
        let aux = format!("\\citation{{browsix}}\n\\bibdata{{{job}}}\n\\bibstyle{{plain}}\n");
        let _ = env.write_file(&format!("{job}.aux"), aux.as_bytes());
        let _ = env.write_file(&format!("{job}.log"), log.as_bytes());
        if missing {
            return 1;
        }
        let mut pdf = Vec::with_capacity(64 * 1024);
        pdf.extend_from_slice(b"%PDF-1.5\n%browsix synthetic build\n");
        pdf.extend_from_slice(tex.as_bytes());
        if let Some(bbl) = &bbl {
            pdf.extend_from_slice(bbl);
        }
        pdf.resize(64 * 1024, b' ');
        let _ = env.write_file(&format!("{job}.pdf"), &pdf);
        env.print(&format!(
            "Output written on {job}.pdf ({} page, {} bytes). Citations resolved: {}\n",
            1,
            pdf.len(),
            citations_resolved
        ));
        0
    })
}

/// The `bibtex` guest program.
pub fn bibtex_program() -> GuestFactory {
    guest("bibtex", |env: &mut dyn RuntimeEnv| {
        let args = env.args();
        let Some(job) = args.get(1).cloned() else {
            env.eprint("bibtex: missing aux file\n");
            return 1;
        };
        let aux = match env.read_file(&format!("{job}.aux")) {
            Ok(data) => data,
            Err(e) => {
                env.eprint(&format!("bibtex: {job}.aux: {e}\n"));
                return 1;
            }
        };
        let bib = match env.read_file(&format!("{job}.bib")) {
            Ok(data) => data,
            Err(e) => {
                env.eprint(&format!("bibtex: {job}.bib: {e}\n"));
                return 1;
            }
        };
        // The style file also comes from the lazily-loaded distribution.
        let _ = env.read_file("/usr/texlive/bst/plain.bst");
        env.charge_compute(BIBTEX_COMPUTE_UNITS + (aux.len() + bib.len()) as u64 / 1024);
        let bbl = format!(
            "\\begin{{thebibliography}}{{1}}\n\\bibitem{{browsix}} Powers et al. ASPLOS 2017.\n\\end{{thebibliography}}\n% from {} bytes of .bib\n",
            bib.len()
        );
        let _ = env.write_file(&format!("{job}.bbl"), bbl.as_bytes());
        env.print(&format!("This is BibTeX (Browsix): wrote {job}.bbl\n"));
        0
    })
}

/// The GNU Make guest program.
///
/// Parses the project Makefile and runs each recipe line.  As in the paper,
/// Make is the one tool that uses `fork`: when the runtime supports it
/// (Emterpreter mode), every recipe is executed by forking and having the
/// child spawn the command; under the synchronous convention it falls back to
/// a direct `spawn`, which is why the paper compiles Make with the
/// Emterpreter.
pub fn make_program() -> GuestFactory {
    guest("make", |env: &mut dyn RuntimeEnv| {
        let args = env.args();
        // `-C dir` switches directory first, as GNU make does.
        if let Some(pos) = args.iter().position(|a| a == "-C") {
            if let Some(dir) = args.get(pos + 1) {
                if let Err(e) = env.chdir(dir) {
                    env.eprint(&format!("make: chdir {dir}: {e}\n"));
                    return 2;
                }
            }
        }
        let makefile = match env.read_file("Makefile") {
            Ok(data) => String::from_utf8_lossy(&data).into_owned(),
            Err(e) => {
                env.eprint(&format!("make: Makefile: {e}\n"));
                return 2;
            }
        };
        env.charge_compute(MAKE_COMPUTE_UNITS);

        // Parse the first rule: "target: deps" followed by tab-indented recipe lines.
        let mut recipe = Vec::new();
        let mut deps: Vec<String> = Vec::new();
        let mut target = String::new();
        let mut in_rule = false;
        for line in makefile.lines() {
            if line.starts_with('#') || line.trim().is_empty() {
                continue;
            }
            if !line.starts_with('\t') {
                if in_rule {
                    break;
                }
                if let Some((t, d)) = line.split_once(':') {
                    target = t.trim().to_owned();
                    deps = d.split_whitespace().map(|s| s.to_owned()).collect();
                    in_rule = true;
                }
            } else if in_rule {
                recipe.push(line.trim().to_owned());
            }
        }
        if recipe.is_empty() {
            env.eprint("make: nothing to be done\n");
            return 0;
        }

        // Rebuild when the target is missing or older than any dependency.
        let target_mtime = env.stat(&target).map(|m| m.mtime_ms).ok();
        let out_of_date = match target_mtime {
            None => true,
            Some(target_mtime) => deps
                .iter()
                .any(|dep| env.stat(dep).map(|m| m.mtime_ms > target_mtime).unwrap_or(true)),
        };
        if !out_of_date {
            env.print(&format!("make: '{target}' is up to date.\n"));
            return 0;
        }

        for command in recipe {
            env.print(&format!("{command}\n"));
            let words: Vec<String> = command.split_whitespace().map(|s| s.to_owned()).collect();
            if words.is_empty() {
                continue;
            }
            let program = if words[0].contains('/') {
                words[0].clone()
            } else {
                format!("/usr/bin/{}", words[0])
            };
            // fork + exec, the paper's reason Make needs the Emterpreter.
            let status = match env.fork(command.as_bytes().to_vec()) {
                Ok(child) => env.wait(child as i32).map(|w| w.exit_code.unwrap_or(2)).unwrap_or(2),
                Err(_) => {
                    // Synchronous convention: no fork; spawn directly.
                    match env.spawn(&program, &words, SpawnStdio::inherit()) {
                        Ok(pid) => env.wait(pid as i32).map(|w| w.exit_code.unwrap_or(2)).unwrap_or(2),
                        Err(e) => {
                            env.eprint(&format!("make: {}: {e}\n", words[0]));
                            2
                        }
                    }
                }
            };
            if status != 0 {
                env.eprint(&format!("make: *** [{target}] Error {status}\n"));
                return status;
            }
        }
        0
    })
}

/// The forked-child half of [`make_program`]: when a Make process is started
/// from a fork image, the image holds the recipe command the child must run.
fn run_fork_child(env: &mut dyn RuntimeEnv, image: Vec<u8>) -> i32 {
    let command = String::from_utf8_lossy(&image).into_owned();
    let words: Vec<String> = command.split_whitespace().map(|s| s.to_owned()).collect();
    if words.is_empty() {
        return 0;
    }
    let program = if words[0].contains('/') {
        words[0].clone()
    } else {
        format!("/usr/bin/{}", words[0])
    };
    match env.spawn(&program, &words, SpawnStdio::inherit()) {
        Ok(pid) => env.wait(pid as i32).map(|w| w.exit_code.unwrap_or(2)).unwrap_or(2),
        Err(e) => {
            env.eprint(&format!("make (forked child): {}: {e}\n", words[0]));
            127
        }
    }
}

/// Wraps [`make_program`] so that fork children execute their recipe command,
/// mirroring the fork/exec pattern of the real Make.
pub fn make_with_fork_support() -> GuestFactory {
    let inner = make_program();
    std::sync::Arc::new(move || {
        let factory = std::sync::Arc::clone(&inner);
        Box::new(browsix_runtime::FnProgram::new(
            "make",
            move |env: &mut dyn RuntimeEnv| {
                if let Some(image) = env.fork_image() {
                    return run_fork_child(env, image);
                }
                factory().run(env)
            },
        ))
    })
}

// ---- host-side wiring -------------------------------------------------------------

/// Everything needed to run LaTeX builds in one configuration.
pub struct LatexEnvironment {
    /// The booted kernel.
    pub kernel: Kernel,
    /// The HTTP-backed TeX Live mount (for fetch statistics).
    pub texlive: Arc<HttpFs>,
    /// The remote endpoint serving the distribution.
    pub endpoint: RemoteEndpoint,
    /// The directory holding the sample project.
    pub project_dir: String,
}

impl LatexEnvironment {
    /// Boots a Browsix kernel with the TeX toolchain registered in `mode`,
    /// the TeX Live distribution mounted at `/usr/texlive`, and the sample
    /// project staged in `/home/paper`.
    ///
    /// `compute_scale` scales all calibrated compute costs (1.0 reproduces the
    /// paper's absolute numbers; benchmarks use a smaller value to keep wall
    /// time manageable while preserving ratios).  `network` selects the link
    /// model for the TeX Live mirror.
    pub fn boot(mode: LatexMode, compute_scale: f64, network: NetworkProfile) -> LatexEnvironment {
        let root = Arc::new(MountedFs::new(Arc::new(MemFs::new())));
        let (files, manifest) = texlive_distribution(60);
        let endpoint = RemoteEndpoint::with_static_files(files, network);
        let texlive = Arc::new(HttpFs::new(endpoint.clone(), manifest));
        root.mkdir("/usr").expect("mkdir /usr");
        root.mount("/usr/texlive", Arc::clone(&texlive) as Arc<dyn FileSystem>)
            .expect("mount texlive");

        let platform = match mode {
            LatexMode::Sync => browsix_browser::PlatformConfig::chrome(),
            LatexMode::Async => browsix_browser::PlatformConfig::firefox(),
        };
        let config = BootConfig::in_memory()
            .with_fs(Arc::clone(&root))
            .with_platform(platform);

        // Register the TeX toolchain under the Emscripten runtime in the
        // requested mode, with scaled profiles.
        let (emode, profile) = match mode {
            LatexMode::Sync => (EmscriptenMode::AsmJs, ExecutionProfile::browsix_sync_asmjs()),
            LatexMode::Async => (EmscriptenMode::Emterpreter, ExecutionProfile::browsix_emterpreter()),
        };
        let profile = profile.scaled(compute_scale);
        let registry = &config.registry;
        registry.register(
            "/usr/bin/pdflatex",
            Arc::new(EmscriptenLauncher::new("pdflatex", pdflatex_program(), emode).with_profile(profile.clone())),
        );
        registry.register(
            "/usr/bin/bibtex",
            Arc::new(EmscriptenLauncher::new("bibtex", bibtex_program(), emode).with_profile(profile.clone())),
        );
        // Make always uses the Emterpreter when it needs fork; in sync mode it
        // runs sync and falls back to spawn, as documented above.
        registry.register(
            "/usr/bin/make",
            Arc::new(EmscriptenLauncher::new("make", make_with_fork_support(), emode).with_profile(profile.clone())),
        );
        browsix_utils::register_browsix(registry, ExecutionProfile::browsix_async().scaled(compute_scale));
        browsix_shell::register_browsix(registry, profile);

        let kernel = Kernel::boot(config);
        let _ = kernel.fs().mkdir("/home");
        sample_project(kernel.fs().as_ref(), "/home/paper");
        LatexEnvironment {
            kernel,
            texlive,
            endpoint,
            project_dir: "/home/paper".to_owned(),
        }
    }

    /// A delay-free environment for functional tests.
    pub fn boot_for_tests(mode: LatexMode) -> LatexEnvironment {
        LatexEnvironment::boot_with_platform_overrides(mode)
    }

    fn boot_with_platform_overrides(mode: LatexMode) -> LatexEnvironment {
        let mut env = LatexEnvironment::boot(mode, 0.0, NetworkProfile::instant());
        // Replace the kernel with one whose platform injects no delays, while
        // keeping the same file system and registry.
        let platform = match mode {
            LatexMode::Sync => browsix_browser::PlatformConfig::chrome().without_delays(),
            LatexMode::Async => browsix_browser::PlatformConfig::firefox().without_delays(),
        };
        let fs = env.kernel.fs();
        let registry = env.kernel.registry().clone();
        let config = BootConfig::in_memory()
            .with_fs(fs)
            .with_platform(platform)
            .with_registry(registry);
        env.kernel.shutdown();
        env.kernel = Kernel::boot(config);
        env
    }
}

/// The result of one "Build PDF" click.
#[derive(Debug)]
pub struct BuildOutcome {
    /// Whether Make exited successfully.
    pub success: bool,
    /// Wall-clock build time.
    pub elapsed: Duration,
    /// Captured standard output of the build.
    pub stdout: String,
    /// Captured standard error of the build.
    pub stderr: String,
    /// The generated PDF, when the build succeeded.
    pub pdf: Option<Vec<u8>>,
}

/// The in-browser LaTeX editor: the web-application side of the case study.
pub struct LatexEditor {
    environment: LatexEnvironment,
}

impl LatexEditor {
    /// Wraps a booted environment.
    pub fn new(environment: LatexEnvironment) -> LatexEditor {
        LatexEditor { environment }
    }

    /// The underlying environment (kernel, mounts, statistics).
    pub fn environment(&self) -> &LatexEnvironment {
        &self.environment
    }

    /// The editor's current document source (what the text pane shows).
    pub fn document(&self) -> String {
        let path = format!("{}/main.tex", self.environment.project_dir);
        String::from_utf8_lossy(&self.environment.kernel.fs().read_file(&path).unwrap_or_default()).into_owned()
    }

    /// Replaces the document source (the user typed in the editor).
    pub fn set_document(&self, tex: &str) {
        let path = format!("{}/main.tex", self.environment.project_dir);
        let _ = self.environment.kernel.fs().write_file(&path, tex.as_bytes());
    }

    /// The user clicked "Build PDF": run `make` and collect the outcome.
    pub fn build_pdf(&self) -> BuildOutcome {
        let kernel = &self.environment.kernel;
        let start = Instant::now();
        let handle = match kernel.system(&format!("make -C {}", self.environment.project_dir)) {
            Ok(handle) => handle,
            Err(e) => {
                return BuildOutcome {
                    success: false,
                    elapsed: start.elapsed(),
                    stdout: String::new(),
                    stderr: format!("failed to start make: {e}"),
                    pdf: None,
                }
            }
        };
        let status = handle.wait();
        let elapsed = start.elapsed();
        let pdf_path = format!("{}/main.pdf", self.environment.project_dir);
        let pdf = if status.success() {
            kernel.fs().read_file(&pdf_path).ok()
        } else {
            None
        };
        BuildOutcome {
            success: status.success(),
            elapsed,
            stdout: handle.stdout_string(),
            stderr: handle.stderr_string(),
            pdf,
        }
    }

    /// Cancels a running build by delivering SIGKILL, as the editor does when
    /// the user gives up on a slow build.
    pub fn cancel(&self, pid: browsix_core::Pid) {
        let _ = self.environment.kernel.kill(pid, browsix_core::Signal::SIGKILL);
    }
}

/// Runs the same document build natively (no kernel, no workers): the paper's
/// native-Linux pdflatex baseline.  Returns the wall-clock time.
pub fn native_build(compute_scale: f64) -> Duration {
    let root = Arc::new(MountedFs::new(Arc::new(MemFs::new())));
    let (files, manifest) = texlive_distribution(60);
    // Natively the distribution is just on disk: serve it with no link cost.
    let endpoint = RemoteEndpoint::with_static_files(files, NetworkProfile::instant());
    let texlive = Arc::new(HttpFs::new(endpoint, manifest));
    root.mkdir("/usr").unwrap();
    root.mount("/usr/texlive", texlive as Arc<dyn FileSystem>).unwrap();
    sample_project(root.as_ref(), "/home/paper");

    let world = NativeWorld::new(root, ExecutionProfile::native().scaled(compute_scale));
    world.table().register("/usr/bin/pdflatex", pdflatex_program());
    world.table().register("/usr/bin/bibtex", bibtex_program());
    world.table().register("/usr/bin/make", make_program());

    let start = Instant::now();
    let result = world.run("make", &["make", "-C", "/home/paper"]);
    assert_eq!(result.exit_code, 0, "native build failed: {}", result.stdout_string());
    start.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_scanning_finds_usepackage_lines() {
        let packages = scan_packages("\\documentclass{article}\n\\usepackage{pkg001}\n\\usepackage{pkg004}\n");
        assert_eq!(packages, vec!["pkg001", "pkg004"]);
        assert!(scan_packages("no packages here").is_empty());
    }

    #[test]
    fn distribution_has_classes_fonts_and_packages() {
        let (files, manifest) = texlive_distribution(10);
        assert_eq!(files.len(), manifest.len());
        assert!(manifest.iter().any(|(p, _)| p == "/article.cls"));
        assert!(manifest.iter().any(|(p, _)| p.starts_with("/packages/")));
        assert!(manifest.iter().any(|(p, _)| p.starts_with("/fonts/")));
        // Total size far exceeds what one document needs.
        let total: u64 = manifest.iter().map(|(_, s)| s).sum();
        assert!(total > 200 * 1024);
    }

    #[test]
    fn native_build_produces_a_pdf_quickly() {
        let elapsed = native_build(0.0);
        assert!(elapsed < Duration::from_secs(5));
    }

    #[test]
    fn browsix_build_generates_pdf_and_lazily_fetches_packages() {
        let editor = LatexEditor::new(LatexEnvironment::boot_for_tests(LatexMode::Sync));
        assert!(editor.document().contains("documentclass"));
        let outcome = editor.build_pdf();
        assert!(
            outcome.success,
            "stdout: {}\nstderr: {}",
            outcome.stdout, outcome.stderr
        );
        let pdf = outcome.pdf.expect("pdf produced");
        assert!(pdf.starts_with(b"%PDF"));
        assert!(outcome.stdout.contains("pdflatex"));
        // Only the files the document touches were fetched from the mirror.
        let stats = editor.environment().texlive.stats();
        assert!(stats.fetches > 0);
        assert!((stats.fetches as usize) < editor.environment().texlive.manifest_len());
        // A second build is incremental: make sees the PDF is up to date.
        let second = editor.build_pdf();
        assert!(second.success);
        assert!(second.stdout.contains("up to date"), "stdout: {}", second.stdout);
    }

    #[test]
    fn async_mode_build_also_succeeds_via_fork() {
        let editor = LatexEditor::new(LatexEnvironment::boot_for_tests(LatexMode::Async));
        let outcome = editor.build_pdf();
        assert!(
            outcome.success,
            "stdout: {}\nstderr: {}",
            outcome.stdout, outcome.stderr
        );
        assert!(outcome.pdf.is_some());
        // The bibliography pass ran.
        assert!(outcome.stdout.contains("BibTeX"));
    }

    #[test]
    fn editing_the_document_changes_what_gets_built() {
        let editor = LatexEditor::new(LatexEnvironment::boot_for_tests(LatexMode::Sync));
        editor.set_document(
            "\\documentclass{article}\n\\usepackage{missing-package}\n\\begin{document}x\\end{document}\n",
        );
        let outcome = editor.build_pdf();
        assert!(!outcome.success);
        assert!(outcome.stderr.contains("Error") || outcome.stdout.contains("Error"));
    }
}
