//! # browsix-apps — the paper's case studies
//!
//! Three applications demonstrate Browsix in the paper, and all three are
//! reproduced here on top of the Rust kernel and runtimes:
//!
//! * [`latex`] — a serverless LaTeX editor: `make` runs `pdflatex` and
//!   `bibtex` as Browsix processes against a shared file system whose TeX
//!   distribution is fetched lazily over (simulated) HTTP (§2, §5.2).
//! * [`meme`] — a meme generator whose Go server runs either on a remote
//!   machine or unmodified inside Browsix, with the client routing requests
//!   based on network and device characteristics (§5.1.1).
//! * [`terminal`] — a Unix terminal exposing the dash-like shell, used to run
//!   pipelines of the bundled coreutils and inspect kernel state (§5.1.2).
//!
//! Beyond the paper's three case studies, [`httpd`] is a `poll`-driven
//! concurrent static-file server that exercises the readiness API
//! (`poll`/`O_NONBLOCK`) end to end: one loop multiplexing a listener and
//! many non-blocking connections.
//!
//! The module-level documentation of each case study describes exactly which
//! experiment of EXPERIMENTS.md it backs.

pub mod httpd;
pub mod latex;
pub mod meme;
pub mod terminal;

pub use httpd::{httpd_program, stage_httpd_root, HTTPD_PORT, HTTPD_ROOT};
pub use latex::{LatexEditor, LatexEnvironment, LatexMode};
pub use meme::{MemeClient, MemeEnvironment, RouteDecision};
pub use terminal::Terminal;

use std::sync::Arc;

use browsix_core::{BootConfig, Kernel};
use browsix_fs::{FileSystem, MemFs, MountedFs};
use browsix_runtime::ExecutionProfile;

/// Boots a kernel pre-loaded with the coreutils and the shell — the baseline
/// environment every case study starts from.
///
/// `profile` controls the execution-cost model for the utilities and shell;
/// pass [`ExecutionProfile::instant`] in tests and the calibrated profiles in
/// benchmarks.
pub fn boot_standard_kernel(config: BootConfig, profile: ExecutionProfile) -> Kernel {
    browsix_utils::register_browsix(&config.registry, profile.clone());
    browsix_shell::register_browsix(&config.registry, profile);
    let kernel = Kernel::boot(config);
    for dir in ["/home", "/tmp", "/usr", "/usr/bin", "/usr/share", "/bin"] {
        let _ = kernel.fs().mkdir(dir);
    }
    kernel
}

/// A convenient default [`BootConfig`]: in-memory root file system and the
/// fast (delay-free) platform, suitable for tests and examples.
pub fn default_config() -> BootConfig {
    BootConfig {
        fs: Arc::new(MountedFs::new(Arc::new(MemFs::new()))),
        ..BootConfig::in_memory()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browsix_runtime::SyscallConvention;

    #[test]
    fn standard_kernel_has_utilities_and_shell() {
        let kernel = boot_standard_kernel(default_config(), ExecutionProfile::instant(SyscallConvention::Async));
        assert!(kernel.registry().lookup("/usr/bin/ls").is_some());
        assert!(kernel.registry().lookup("/bin/sh").is_some());
        assert!(kernel.fs().stat("/home").unwrap().is_dir());
        let handle = kernel.system("echo hello from browsix").unwrap();
        let status = handle.wait();
        assert!(status.success());
        assert_eq!(handle.stdout_string(), "hello from browsix\n");
        kernel.shutdown();
    }
}
