//! The Browsix terminal case study (paper §5.1.2).
//!
//! The terminal gives developers a POSIX shell (dash) running inside Browsix:
//! they can pipe programs together, run scripts, launch background jobs and
//! inspect kernel state.  [`Terminal`] is the host-side half: it feeds command
//! lines to the shell as Browsix processes and captures their output, plus a
//! `ps`-like view over the kernel's task table.

use std::time::Duration;

use browsix_core::{Errno, Kernel};

/// The outcome of one command line typed at the terminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TerminalResult {
    /// Exit status of the command line.
    pub exit_code: i32,
    /// Captured standard output.
    pub stdout: String,
    /// Captured standard error.
    pub stderr: String,
}

/// An in-browser Unix terminal backed by a Browsix kernel.
pub struct Terminal {
    kernel: Kernel,
    history: Vec<String>,
    env: Vec<(String, String)>,
}

impl Terminal {
    /// Wraps a kernel that already has the shell and utilities registered
    /// (see [`boot_standard_kernel`](crate::boot_standard_kernel)).
    pub fn new(kernel: Kernel) -> Terminal {
        Terminal {
            kernel,
            history: Vec::new(),
            env: Vec::new(),
        }
    }

    /// The kernel behind the terminal.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Consumes the terminal, returning the kernel (e.g. to shut it down).
    pub fn into_kernel(self) -> Kernel {
        self.kernel
    }

    /// The command lines executed so far.
    pub fn history(&self) -> &[String] {
        &self.history
    }

    /// Runs one command line through `/bin/sh -c`, waiting for completion.
    ///
    /// # Errors
    ///
    /// Returns an [`Errno`] if the shell itself cannot be started.
    pub fn run_line(&mut self, line: &str) -> Result<TerminalResult, Errno> {
        self.history.push(line.to_owned());
        // Each line runs in a fresh `/bin/sh -c` process, so the terminal —
        // not the shell — is what carries environment variables from one
        // line to the next, as an interactive shell session would.
        if let Some(assignments) = parse_assignment_only_line(line) {
            for (name, value) in assignments {
                match self.env.iter_mut().find(|(n, _)| *n == name) {
                    Some(entry) => entry.1 = value,
                    None => self.env.push((name, value)),
                }
            }
            return Ok(TerminalResult {
                exit_code: 0,
                stdout: String::new(),
                stderr: String::new(),
            });
        }
        let env: Vec<(&str, &str)> = self.env.iter().map(|(n, v)| (n.as_str(), v.as_str())).collect();
        let handle = self.kernel.spawn("/bin/sh", &["sh", "-c", line], &env)?;
        let status = handle.wait();
        Ok(TerminalResult {
            exit_code: status
                .code
                .unwrap_or(128 + status.signal.map(|s| s.number()).unwrap_or(1)),
            stdout: handle.stdout_string(),
            stderr: handle.stderr_string(),
        })
    }

    /// Runs a multi-line script, stopping at the first line that fails when
    /// `stop_on_error` is set.  Returns the per-line results.
    ///
    /// # Errors
    ///
    /// Returns an [`Errno`] if the shell cannot be started for some line.
    pub fn run_script(&mut self, script: &str, stop_on_error: bool) -> Result<Vec<TerminalResult>, Errno> {
        let mut results = Vec::new();
        for line in script
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
        {
            let result = self.run_line(line)?;
            let failed = result.exit_code != 0;
            results.push(result);
            if failed && stop_on_error {
                break;
            }
        }
        Ok(results)
    }

    /// `Ctrl-C`: interrupts the foreground pipeline (and only it — the
    /// shell hands the terminal's foreground group to each pipeline it runs,
    /// so background jobs and the shell itself are untouched).
    ///
    /// # Errors
    ///
    /// [`Errno::ESRCH`] if nothing is in the foreground.
    pub fn interrupt(&self) -> Result<(), Errno> {
        self.kernel.interrupt()
    }

    /// `Ctrl-Z`: stops the foreground pipeline (SIGTSTP); the shell reports
    /// it as a stopped job that `fg`/`bg` can resume.
    ///
    /// # Errors
    ///
    /// [`Errno::ESRCH`] if nothing is in the foreground.
    pub fn suspend(&self) -> Result<(), Errno> {
        self.kernel.signal_foreground(browsix_core::Signal::SIGTSTP)
    }

    /// A `ps`-like listing of kernel tasks: `(pid, ppid, name, state)`.
    pub fn ps(&self) -> Vec<(u32, u32, String, String)> {
        self.kernel.tasks()
    }

    /// Waits for all processes the kernel knows about to finish, up to
    /// `timeout` (used after starting background jobs with `&`).
    pub fn drain(&self, timeout: Duration) {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.kernel.tasks().iter().all(|(_, _, _, state)| state != "running") {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Parses a line that consists only of `NAME=value` words (no command), the
/// form a shell treats as variable assignments.  Values are taken literally;
/// quoted or space-containing values need a real command line.  Assignment
/// words are recognised by the shell parser's own rule so the two never
/// disagree.
fn parse_assignment_only_line(line: &str) -> Option<Vec<(String, String)>> {
    let words: Vec<&str> = line.split_whitespace().collect();
    if words.is_empty() {
        return None;
    }
    words.into_iter().map(browsix_shell::parser::split_assignment).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{boot_standard_kernel, default_config};
    use browsix_fs::FileSystem;
    use browsix_runtime::{ExecutionProfile, SyscallConvention};

    fn terminal() -> Terminal {
        let kernel = boot_standard_kernel(default_config(), ExecutionProfile::instant(SyscallConvention::Async));
        kernel.fs().mkdir("/data").unwrap();
        kernel
            .fs()
            .write_file("/data/file.txt", b"apple\nbanana\napple pie\n")
            .unwrap();
        Terminal::new(kernel)
    }

    #[test]
    fn runs_simple_commands_and_keeps_history() {
        let mut term = terminal();
        let result = term.run_line("echo hello terminal").unwrap();
        assert_eq!(result.exit_code, 0);
        assert_eq!(result.stdout, "hello terminal\n");
        let result = term.run_line("no-such-program").unwrap();
        assert_eq!(result.exit_code, 127);
        assert_eq!(term.history().len(), 2);
    }

    #[test]
    fn pipelines_and_redirection_work_through_the_terminal() {
        let mut term = terminal();
        let result = term
            .run_line("cat /data/file.txt | grep apple > /data/apples.txt")
            .unwrap();
        assert_eq!(result.exit_code, 0, "stderr: {}", result.stderr);
        assert_eq!(
            term.kernel().fs().read_file("/data/apples.txt").unwrap(),
            b"apple\napple pie\n"
        );
        let result = term.run_line("wc -l /data/apples.txt").unwrap();
        assert!(result.stdout.trim().starts_with('2'));
    }

    #[test]
    fn scripts_stop_on_error_when_asked() {
        let mut term = terminal();
        let results = term
            .run_script("mkdir /proj\n# a comment\nfalse\necho never reached\n", true)
            .unwrap();
        assert_eq!(results.len(), 2);
        assert!(term.kernel().fs().stat("/proj").unwrap().is_dir());

        let results = term.run_script("false\necho still runs\n", false).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[1].stdout, "still runs\n");
    }

    #[test]
    fn assignments_persist_across_lines() {
        let mut term = terminal();
        let result = term.run_line("GREETING=hello").unwrap();
        assert_eq!(result.exit_code, 0);
        let result = term.run_line("echo $GREETING from the terminal").unwrap();
        assert_eq!(result.stdout, "hello from the terminal\n");

        // Re-assignment overwrites, and multiple assignments on one line work.
        let _ = term.run_line("GREETING=goodbye  COUNT=3").unwrap();
        let result = term.run_line("echo $GREETING $COUNT").unwrap();
        assert_eq!(result.stdout, "goodbye 3\n");

        // A word that is not a pure assignment still runs as a command.
        let result = term.run_line("echo GREETING=nope").unwrap();
        assert_eq!(result.stdout, "GREETING=nope\n");
    }

    #[test]
    fn ps_lists_tasks_and_drain_waits() {
        let mut term = terminal();
        let _ = term.run_line("echo started").unwrap();
        // After the command finished there are no running tasks left.
        term.drain(Duration::from_secs(2));
        assert!(term.ps().iter().all(|(_, _, _, state)| state != "running"));
        let kernel = term.into_kernel();
        kernel.shutdown();
    }
}
