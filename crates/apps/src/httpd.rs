//! `httpd` — a concurrent static-file web server guest, built entirely on
//! the readiness API.
//!
//! Where the meme server (`crate::meme`) handles one connection at a time —
//! blocking in `accept`, then in `read`, then in `write` — `httpd` is the
//! `poll`-driven shape of a production server: the listener and every live
//! connection are `O_NONBLOCK`, and a single loop multiplexes all of them
//! through one [`RuntimeEnv::poll`] call.  Each connection is a small state
//! machine (reading the request, then draining the response), so the server
//! comfortably carries dozens of simultaneous clients without a thread or a
//! blocked system call anywhere.  This exercises the kernel path the paper
//! cares about for servers: a process is woken only when a connection is
//! actually ready, "so \[it\] never need\[s\] to poll" busily.
//!
//! Files are served from the shared VFS under a configurable document root.
//! By default file bodies travel over `sendfile`: the server writes only the
//! response headers, then asks the kernel to move the file page-cache →
//! socket directly, so body bytes never enter guest memory.  `--copy` forces
//! the classic read-the-file-then-write-it path (the baseline the zero-copy
//! benchmarks compare against).
//!
//! ```text
//! httpd [--port N] [--root DIR] [--max-requests N] [--copy]
//! ```
//!
//! `--max-requests` makes the process exit after serving that many requests
//! (tests and benchmarks use it to finish deterministically).

use browsix_core::Errno;
use browsix_fs::OpenFlags;
use browsix_http::parse::parse_request_consumed;
use browsix_http::{HttpRequest, HttpResponse};
use browsix_runtime::{guest, GuestFactory, PollFd, RuntimeEnv};

/// The port `httpd` listens on unless `--port` says otherwise.
pub const HTTPD_PORT: u16 = 8000;

/// Default document root.
pub const HTTPD_ROOT: &str = "/srv";

/// How a connection's lifecycle progresses.
enum ConnState {
    /// Accumulating request bytes until a full request parses.
    Reading(Vec<u8>),
    /// Draining a fully-buffered response (`--copy`, errors, 404s).
    Writing { buf: Vec<u8>, written: usize },
    /// Zero-copy response: drain the header bytes, then `sendfile` the body
    /// straight from the open file to the socket.
    Sending {
        header: Vec<u8>,
        header_written: usize,
        file_fd: i32,
        offset: u64,
        remaining: u64,
    },
}

/// One accepted connection.
struct Conn {
    fd: i32,
    state: ConnState,
}

/// The `Content-Type` to declare for a request path.
fn content_type_for(rel: &str) -> &'static str {
    match rel.rsplit('.').next() {
        Some("html") => "text/html",
        Some("json") => "application/json",
        Some("txt") => "text/plain",
        _ => "application/octet-stream",
    }
}

/// Maps a request path to a file under `root` and builds a fully-buffered
/// response (the `--copy` path: the whole body is read into guest memory).
fn respond(env: &mut dyn RuntimeEnv, root: &str, request: &HttpRequest) -> HttpResponse {
    let path = request.path_only();
    let rel = if path == "/" { "/index.html" } else { path };
    if rel.contains("..") {
        return HttpResponse::new(403).with_body(b"forbidden".to_vec(), "text/plain");
    }
    let full = format!("{}{}", root.trim_end_matches('/'), rel);
    match env.read_file(&full) {
        Ok(data) => {
            let content_type = content_type_for(rel);
            HttpResponse::ok().with_body(data, content_type)
        }
        Err(_) => HttpResponse::not_found(),
    }
}

/// Builds the next state for a connection that just parsed `request`.
///
/// On the default (zero-copy) path a successful file lookup opens the file
/// and produces [`ConnState::Sending`] — only the serialized header is in
/// guest memory; the body will move via [`RuntimeEnv::sendfile`].  Misses
/// and `--copy` mode fall back to a buffered [`ConnState::Writing`].
fn response_state(env: &mut dyn RuntimeEnv, root: &str, request: &HttpRequest, copy: bool) -> ConnState {
    if !copy {
        let path = request.path_only();
        let rel = if path == "/" { "/index.html" } else { path };
        let full = format!("{}{}", root.trim_end_matches('/'), rel);
        if !rel.contains("..") {
            if let Ok(file_fd) = env.open(&full, OpenFlags::read_only()) {
                match env.fstat(file_fd) {
                    Ok(meta) if !meta.is_dir() => {
                        let header = HttpResponse::ok()
                            .with_header("Content-Type", content_type_for(rel))
                            .serialize_head(meta.size);
                        return ConnState::Sending {
                            header,
                            header_written: 0,
                            file_fd,
                            offset: 0,
                            remaining: meta.size,
                        };
                    }
                    _ => {
                        let _ = env.close(file_fd);
                    }
                }
            }
        }
    }
    let response = respond(env, root, request);
    ConnState::Writing {
        buf: response.serialize(),
        written: 0,
    }
}

/// Handles readiness on one connection.  Returns `Ok(true)` when the
/// connection finished a request (and was closed), `Ok(false)` to keep it,
/// `Err(())` when it died.
fn advance(env: &mut dyn RuntimeEnv, root: &str, conn: &mut Conn, copy: bool) -> Result<bool, ()> {
    loop {
        match &mut conn.state {
            ConnState::Reading(buf) => match env.read(conn.fd, 64 * 1024) {
                Ok(chunk) if chunk.is_empty() => return Err(()), // EOF before a full request
                Ok(chunk) => {
                    buf.extend_from_slice(&chunk);
                    match parse_request_consumed(buf) {
                        Ok(Some((request, _))) => {
                            conn.state = response_state(env, root, &request, copy);
                        }
                        Ok(None) => continue,
                        Err(_) => return Err(()),
                    }
                }
                Err(Errno::EAGAIN) => return Ok(false),
                Err(_) => return Err(()),
            },
            ConnState::Writing { buf, written } => match env.write(conn.fd, &buf[*written..]) {
                Ok(count) => {
                    *written += count;
                    if *written >= buf.len() {
                        let _ = env.close(conn.fd);
                        return Ok(true);
                    }
                }
                Err(Errno::EAGAIN) => return Ok(false),
                Err(_) => return Err(()),
            },
            ConnState::Sending {
                header,
                header_written,
                file_fd,
                offset,
                remaining,
            } => {
                while *header_written < header.len() {
                    match env.write(conn.fd, &header[*header_written..]) {
                        Ok(count) => *header_written += count,
                        Err(Errno::EAGAIN) => return Ok(false),
                        Err(_) => {
                            let _ = env.close(*file_fd);
                            return Err(());
                        }
                    }
                }
                // The body never touches guest memory: each call moves file
                // pages kernel-side into the socket's stream.
                while *remaining > 0 {
                    match env.sendfile(conn.fd, *file_fd, *offset as i64, *remaining) {
                        Ok(0) => break, // the file shrank underneath us
                        Ok(moved) => {
                            *offset += moved;
                            *remaining -= moved;
                        }
                        Err(Errno::EAGAIN) => return Ok(false),
                        Err(_) => {
                            let _ = env.close(*file_fd);
                            return Err(());
                        }
                    }
                }
                let _ = env.close(*file_fd);
                let _ = env.close(conn.fd);
                return Ok(true);
            }
        }
    }
}

fn run_httpd(env: &mut dyn RuntimeEnv) -> i32 {
    let args = env.args();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let port: u16 = flag("--port").and_then(|v| v.parse().ok()).unwrap_or(HTTPD_PORT);
    let root = flag("--root").unwrap_or_else(|| HTTPD_ROOT.to_owned());
    let max_requests: Option<usize> = flag("--max-requests").and_then(|v| v.parse().ok());
    let copy = args.iter().any(|a| a == "--copy");

    let listener = match env.socket() {
        Ok(fd) => fd,
        Err(e) => {
            env.eprint(&format!("httpd: socket: {e}\n"));
            return 1;
        }
    };
    if let Err(e) = env
        .bind(listener, port)
        .and_then(|_| env.listen(listener, 128))
        .and_then(|_| env.set_nonblocking(listener, true))
    {
        env.eprint(&format!("httpd: listen on {port}: {e}\n"));
        return 1;
    }
    env.print(&format!("httpd listening on port {port}\n"));
    let _ = env.flush_stdout();

    let mut conns: Vec<Conn> = Vec::new();
    let mut served = 0usize;
    loop {
        if let Some(limit) = max_requests {
            if served >= limit && conns.is_empty() {
                return 0;
            }
        }
        // One poll over the listener plus every connection, each asking only
        // for the direction its state machine needs next.
        let mut pfds = vec![PollFd::readable(listener)];
        for conn in &conns {
            pfds.push(match conn.state {
                ConnState::Reading(_) => PollFd::readable(conn.fd),
                ConnState::Writing { .. } | ConnState::Sending { .. } => PollFd::writable(conn.fd),
            });
        }
        // A finite timeout keeps the max-requests exit condition responsive
        // even if no traffic ever arrives again.
        match env.poll(&mut pfds, 500) {
            Ok(0) => continue,
            Ok(_) => {}
            Err(e) => {
                env.eprint(&format!("httpd: poll: {e}\n"));
                return 1;
            }
        }
        // Drain the accept queue.
        if pfds[0].is_readable() {
            loop {
                match env.accept(listener) {
                    Ok(fd) => {
                        if env.set_nonblocking(fd, true).is_err() {
                            let _ = env.close(fd);
                            continue;
                        }
                        conns.push(Conn {
                            fd,
                            state: ConnState::Reading(Vec::new()),
                        });
                    }
                    Err(Errno::EAGAIN) => break,
                    Err(_) => break,
                }
            }
        }
        // Advance every ready connection.  Iterate in reverse so a
        // swap_remove only disturbs indices we have already visited —
        // `conns[index]` stays paired with `pfds[index + 1]` throughout.
        for index in (0..conns.len()).rev() {
            let ready = pfds
                .get(index + 1)
                .map(|p| p.is_readable() || p.is_writable())
                .unwrap_or(false);
            if !ready {
                continue;
            }
            match advance(env, &root, &mut conns[index], copy) {
                Ok(true) => {
                    served += 1;
                    conns.swap_remove(index);
                }
                Ok(false) => {}
                Err(()) => {
                    let _ = env.close(conns[index].fd);
                    conns.swap_remove(index);
                }
            }
        }
    }
}

/// The `httpd` server as a registrable guest program.
pub fn httpd_program() -> GuestFactory {
    guest("httpd", run_httpd)
}

/// Stages a small document tree under [`HTTPD_ROOT`] on `fs` (an index page
/// plus a few payload files), used by tests and benchmarks.
pub fn stage_httpd_root(fs: &dyn browsix_fs::FileSystem) {
    let _ = fs.mkdir(HTTPD_ROOT);
    fs.write_file(
        &format!("{HTTPD_ROOT}/index.html"),
        b"<html><body>browsix httpd</body></html>",
    )
    .expect("stage index.html");
    fs.write_file(&format!("{HTTPD_ROOT}/hello.txt"), b"hello from the vfs\n")
        .expect("stage hello.txt");
    let payload: Vec<u8> = (0..32 * 1024).map(|i| (i % 251) as u8).collect();
    fs.write_file(&format!("{HTTPD_ROOT}/payload.bin"), &payload)
        .expect("stage payload.bin");
}

#[cfg(test)]
mod tests {
    use super::*;
    use browsix_fs::{FileSystem, MemFs};

    #[test]
    fn staged_root_has_the_expected_files() {
        let fs = MemFs::new();
        stage_httpd_root(&fs);
        assert!(fs.read_file("/srv/index.html").is_ok());
        assert!(fs.read_file("/srv/hello.txt").is_ok());
        assert_eq!(fs.read_file("/srv/payload.bin").unwrap().len(), 32 * 1024);
    }
}
