//! The meme-generator case study (paper §5.1.1 and §5.2, experiments E7/E8).
//!
//! The application is a traditional client/server web app: an HTML5 client
//! and a stateless Go server that reads base images and fonts from the file
//! system and renders memes.  With Browsix, the *same* server runs unmodified
//! inside the browser, and the client routes each request either to the
//! remote server or to the in-Browsix server depending on network and device
//! characteristics — meme generation keeps working offline.
//!
//! The paper measures: listing backgrounds takes ~1.7 ms against a native
//! local server, ~9 ms in-Browsix under Chrome and ~6 ms under Firefox, and
//! an in-Browsix request beats a remote EC2 server once round-trip latency is
//! included; generating a meme takes ~200 ms server-side versus ~2 s
//! in-browser, dominated by GopherJS's missing 64-bit integer support.

use std::sync::Arc;
use std::time::Duration;

use browsix_browser::{NetworkProfile, PlatformConfig, RemoteEndpoint, RemoteService};
use browsix_core::{BootConfig, Errno, Kernel};
use browsix_fs::FileSystem;
use browsix_http::parse::parse_request_consumed;
use browsix_http::{HttpRequest, HttpResponse, Json, Method};
use browsix_runtime::{guest, ExecutionProfile, GopherJsLauncher, GuestFactory, RuntimeEnv};

/// The port the meme server listens on, in Browsix and remotely.
pub const MEME_PORT: u16 = 8080;
/// Compute units charged to render one meme (calibrated so the native Go
/// server lands near 200 ms and the GopherJS in-browser server near 2 s).
pub const MEME_RENDER_UNITS: u64 = 16_000;
/// Compute units charged to list the background images.
pub const LIST_UNITS: u64 = 20;
/// The execution profile of the native Go server binary (the remote/EC2 and
/// localhost baselines).
pub fn native_go_profile() -> ExecutionProfile {
    ExecutionProfile {
        name: "native go",
        compute_ns_per_unit: 12_500,
        convention: browsix_runtime::SyscallConvention::Direct,
        inject_compute: true,
    }
}

/// Stages the server's data files: base images and a font.
pub fn stage_meme_assets(fs: &dyn FileSystem) {
    let _ = fs.mkdir("/usr");
    let _ = fs.mkdir("/usr/share");
    let _ = fs.mkdir("/usr/share/memes");
    for (name, seed) in [("grumpy-cat.png", 17u8), ("success-kid.png", 41), ("doge.png", 73)] {
        let mut data = vec![0u8; 96 * 1024];
        for (i, byte) in data.iter_mut().enumerate() {
            *byte = seed.wrapping_mul(31).wrapping_add((i % 251) as u8);
        }
        fs.write_file(&format!("/usr/share/memes/{name}"), &data)
            .expect("stage meme template");
    }
    fs.write_file("/usr/share/memes/impact.ttf", &vec![b'F'; 32 * 1024])
        .expect("stage font");
}

/// Deterministically composites `top` and `bottom` text onto a template
/// image, standing in for the Go `gg` graphics library.  `charge` receives
/// the compute-unit cost so callers can bill it to the right profile.
pub fn render_meme(template: &[u8], top: &str, bottom: &str, charge: &mut dyn FnMut(u64)) -> Vec<u8> {
    charge(MEME_RENDER_UNITS);
    let mut out = Vec::with_capacity(template.len() + 64);
    out.extend_from_slice(b"MEME1");
    out.extend_from_slice(&(template.len() as u32).to_le_bytes());
    // "Draw" the caption text by mixing it into the pixel data.
    let mut pixels = template.to_vec();
    for (i, byte) in top.bytes().chain(bottom.bytes()).enumerate() {
        let index = (i * 977) % pixels.len().max(1);
        pixels[index] ^= byte;
    }
    out.extend_from_slice(top.as_bytes());
    out.push(b'|');
    out.extend_from_slice(bottom.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(&pixels);
    out
}

/// The server's request handler — the "same source code" shared by the
/// native/remote deployment and the in-Browsix deployment.
///
/// `read_file` abstracts where templates come from; `charge` bills compute to
/// the caller's execution profile.
pub fn handle_api_request(
    request: &HttpRequest,
    backgrounds: &[String],
    read_file: &mut dyn FnMut(&str) -> Result<Vec<u8>, Errno>,
    charge: &mut dyn FnMut(u64),
) -> HttpResponse {
    match (request.method, request.path_only()) {
        (Method::Get, "/api/backgrounds") => {
            charge(LIST_UNITS);
            let list = Json::Array(backgrounds.iter().map(|name| Json::from(name.as_str())).collect());
            HttpResponse::ok().with_body(list.encode().into_bytes(), "application/json")
        }
        (Method::Post, "/api/meme") => {
            let Ok(body) = Json::decode(&String::from_utf8_lossy(&request.body)) else {
                return HttpResponse::new(400).with_body(b"invalid json".to_vec(), "text/plain");
            };
            let template = body.get("template").and_then(Json::as_str).unwrap_or("grumpy-cat.png");
            let top = body.get("top").and_then(Json::as_str).unwrap_or("");
            let bottom = body.get("bottom").and_then(Json::as_str).unwrap_or("");
            match read_file(&format!("/usr/share/memes/{template}")) {
                Ok(data) => {
                    let rendered = render_meme(&data, top, bottom, charge);
                    HttpResponse::ok().with_body(rendered, "image/png")
                }
                Err(_) => HttpResponse::not_found(),
            }
        }
        _ => HttpResponse::not_found(),
    }
}

fn list_backgrounds_from<F: FnMut(&str) -> Result<Vec<String>, Errno>>(mut readdir: F) -> Vec<String> {
    readdir("/usr/share/memes")
        .unwrap_or_default()
        .into_iter()
        .filter(|name| name.ends_with(".png"))
        .collect()
}

/// The Go meme server as a Browsix guest program: binds, listens, then
/// accepts and serves HTTP connections until terminated.
///
/// Pass `--max-requests N` in argv to stop after `N` requests (used by tests
/// so the process exits deterministically).
pub fn meme_server_program() -> GuestFactory {
    guest("meme-server", |env: &mut dyn RuntimeEnv| {
        let args = env.args();
        let max_requests: Option<usize> = args
            .iter()
            .position(|a| a == "--max-requests")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok());

        let backgrounds = list_backgrounds_from(|dir| {
            env.readdir(dir)
                .map(|entries| entries.into_iter().map(|e| e.name).collect())
        });

        let listener = match env.socket() {
            Ok(fd) => fd,
            Err(e) => {
                env.eprint(&format!("meme-server: socket: {e}\n"));
                return 1;
            }
        };
        if let Err(e) = env.bind(listener, MEME_PORT) {
            env.eprint(&format!("meme-server: bind: {e}\n"));
            return 1;
        }
        if let Err(e) = env.listen(listener, 16) {
            env.eprint(&format!("meme-server: listen: {e}\n"));
            return 1;
        }
        env.print(&format!("meme-server listening on port {MEME_PORT}\n"));

        let mut served = 0usize;
        loop {
            if let Some(limit) = max_requests {
                if served >= limit {
                    return 0;
                }
            }
            let conn = match env.accept(listener) {
                Ok(fd) => fd,
                Err(_) => return 0,
            };
            // Read one HTTP request (connection: close semantics).
            let mut buffer = Vec::new();
            let request = loop {
                match env.read(conn, 64 * 1024) {
                    Ok(chunk) if chunk.is_empty() => break None,
                    Ok(chunk) => {
                        buffer.extend_from_slice(&chunk);
                        match parse_request_consumed(&buffer) {
                            Ok(Some((request, _))) => break Some(request),
                            Ok(None) => continue,
                            Err(_) => break None,
                        }
                    }
                    Err(_) => break None,
                }
            };
            if let Some(request) = request {
                // Reads go through the shared file system; compute is charged
                // to the GopherJS profile of this process.
                let response = {
                    let mut files: Vec<(String, Vec<u8>)> = Vec::new();
                    let mut read_file = |path: &str| -> Result<Vec<u8>, Errno> {
                        if let Some((_, data)) = files.iter().find(|(p, _)| p == path) {
                            return Ok(data.clone());
                        }
                        let data = env.read_file(path)?;
                        files.push((path.to_owned(), data.clone()));
                        Ok(data)
                    };
                    let mut cost = 0u64;
                    let mut charge = |units: u64| cost += units;
                    let response = handle_api_request(&request, &backgrounds, &mut read_file, &mut charge);
                    env.charge_compute(cost);
                    response
                };
                let _ = env.write(conn, &response.serialize());
            }
            let _ = env.close(conn);
            served += 1;
        }
    })
}

/// The remote deployment: the same handler behind a simulated network link,
/// executing with the native Go profile.
pub struct RemoteMemeService {
    backgrounds: Vec<String>,
    templates: Vec<(String, Vec<u8>)>,
    profile: ExecutionProfile,
}

impl RemoteMemeService {
    /// Builds the remote service with the same assets the Browsix deployment
    /// stages on its shared file system.
    pub fn new() -> RemoteMemeService {
        let mut templates = Vec::new();
        let mut backgrounds = Vec::new();
        for (name, seed) in [("grumpy-cat.png", 17u8), ("success-kid.png", 41), ("doge.png", 73)] {
            let mut data = vec![0u8; 96 * 1024];
            for (i, byte) in data.iter_mut().enumerate() {
                *byte = seed.wrapping_mul(31).wrapping_add((i % 251) as u8);
            }
            templates.push((format!("/usr/share/memes/{name}"), data));
            backgrounds.push(name.to_owned());
        }
        RemoteMemeService {
            backgrounds,
            templates,
            profile: native_go_profile(),
        }
    }

    /// Disables compute injection (functional tests).
    pub fn without_compute(mut self) -> RemoteMemeService {
        self.profile = self.profile.without_compute();
        self
    }
}

impl Default for RemoteMemeService {
    fn default() -> Self {
        RemoteMemeService::new()
    }
}

impl RemoteService for RemoteMemeService {
    fn handle(&self, path: &str, body: Option<&[u8]>) -> Result<Vec<u8>, u16> {
        let method = if body.is_some() { Method::Post } else { Method::Get };
        let mut request = HttpRequest::new(method, path);
        if let Some(body) = body {
            request.body = body.to_vec();
        }
        let mut read_file = |path: &str| -> Result<Vec<u8>, Errno> {
            self.templates
                .iter()
                .find(|(p, _)| p == path)
                .map(|(_, data)| data.clone())
                .ok_or(Errno::ENOENT)
        };
        let mut charge = |units: u64| self.profile.charge(units);
        let response = handle_api_request(&request, &self.backgrounds, &mut read_file, &mut charge);
        if response.is_success() {
            Ok(response.body)
        } else {
            Err(response.status)
        }
    }
}

/// Where a request ended up being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// Served by the in-Browsix server.
    InBrowsix,
    /// Served by the remote server over the network.
    Remote,
}

/// A booted meme-generator deployment: kernel + in-Browsix server + remote
/// endpoint.
pub struct MemeEnvironment {
    /// The booted kernel.
    pub kernel: Kernel,
    /// The simulated remote deployment of the same server.
    pub remote: RemoteEndpoint,
    /// Pid of the in-Browsix server process.
    pub server_pid: browsix_core::Pid,
}

impl MemeEnvironment {
    /// Boots the kernel, stages assets, starts the in-Browsix server (waiting
    /// for its socket notification) and stands up the remote endpoint.
    ///
    /// `platform` selects the simulated browser; `server_profile` the
    /// execution profile of the in-Browsix server; `network` the link to the
    /// remote server.
    pub fn boot(
        platform: PlatformConfig,
        server_profile: ExecutionProfile,
        network: NetworkProfile,
        remote_compute: bool,
    ) -> MemeEnvironment {
        let config = BootConfig::in_memory().with_platform(platform);
        config.registry.register(
            "/usr/bin/meme-server",
            Arc::new(GopherJsLauncher::new("meme-server", meme_server_program()).with_profile(server_profile)),
        );
        browsix_utils::register_browsix(
            &config.registry,
            ExecutionProfile::instant(browsix_runtime::SyscallConvention::Async),
        );
        let kernel = Kernel::boot(config);
        stage_meme_assets(kernel.fs().as_ref());

        let handle = kernel
            .spawn("/usr/bin/meme-server", &["meme-server"], &[])
            .expect("start meme server");
        assert!(
            kernel.wait_for_port(MEME_PORT, Duration::from_secs(10)),
            "meme server did not start listening"
        );

        let service = if remote_compute {
            RemoteMemeService::new()
        } else {
            RemoteMemeService::new().without_compute()
        };
        let remote = RemoteEndpoint::new(Arc::new(service), network);
        MemeEnvironment {
            kernel,
            remote,
            server_pid: handle.pid,
        }
    }

    /// A delay-free environment for functional tests.
    pub fn boot_for_tests() -> MemeEnvironment {
        MemeEnvironment::boot(
            PlatformConfig::fast(),
            ExecutionProfile::instant(browsix_runtime::SyscallConvention::Async),
            NetworkProfile::instant(),
            false,
        )
    }
}

/// The web-application client with its routing policy.
pub struct MemeClient {
    environment: MemeEnvironment,
    /// Whether the device is a desktop-class machine (a proxy for "powerful",
    /// per the paper's policy).
    pub desktop_device: bool,
}

impl MemeClient {
    /// Wraps a booted environment.  The paper's policy: serve locally when the
    /// network is inaccessible or the device is powerful; otherwise go remote.
    pub fn new(environment: MemeEnvironment, desktop_device: bool) -> MemeClient {
        MemeClient {
            environment,
            desktop_device,
        }
    }

    /// The underlying environment.
    pub fn environment(&self) -> &MemeEnvironment {
        &self.environment
    }

    /// The routing decision the client would make right now.
    pub fn route(&self) -> RouteDecision {
        if !self.environment.remote.is_online() || self.desktop_device {
            RouteDecision::InBrowsix
        } else {
            RouteDecision::Remote
        }
    }

    fn browsix_request(&self, request: HttpRequest) -> Result<HttpResponse, Errno> {
        self.environment
            .kernel
            .http_request(MEME_PORT, request, Duration::from_secs(30))
    }

    fn remote_request(&self, request: &HttpRequest) -> Result<HttpResponse, Errno> {
        let body = if request.method == Method::Post {
            Some(request.body.as_slice())
        } else {
            None
        };
        match self.environment.remote.request(&request.path, body) {
            Ok(body) => Ok(HttpResponse::ok().with_body(body, "application/octet-stream")),
            Err(browsix_browser::PlatformError::NetworkUnavailable) => Err(Errno::ENETUNREACH),
            Err(browsix_browser::PlatformError::HttpStatus(code)) => Ok(HttpResponse::new(code)),
            Err(_) => Err(Errno::EIO),
        }
    }

    /// Sends `request` according to the routing policy, falling back to the
    /// in-Browsix server if the remote is unreachable.
    pub fn request(&self, request: HttpRequest) -> Result<(RouteDecision, HttpResponse), Errno> {
        match self.route() {
            RouteDecision::InBrowsix => Ok((RouteDecision::InBrowsix, self.browsix_request(request)?)),
            RouteDecision::Remote => match self.remote_request(&request) {
                Ok(response) => Ok((RouteDecision::Remote, response)),
                Err(_) => Ok((RouteDecision::InBrowsix, self.browsix_request(request)?)),
            },
        }
    }

    /// `GET /api/backgrounds`: the list of available base images.
    pub fn list_backgrounds(&self) -> Result<(RouteDecision, Vec<String>), Errno> {
        let (route, response) = self.request(HttpRequest::new(Method::Get, "/api/backgrounds"))?;
        if !response.is_success() {
            return Err(Errno::EIO);
        }
        let json = Json::decode(&String::from_utf8_lossy(&response.body)).map_err(|_| Errno::EIO)?;
        let list = json
            .as_array()
            .map(|items| items.iter().filter_map(|j| j.as_str().map(|s| s.to_owned())).collect())
            .unwrap_or_default();
        Ok((route, list))
    }

    /// `POST /api/meme`: renders a meme from a template and caption text.
    pub fn generate(&self, template: &str, top: &str, bottom: &str) -> Result<(RouteDecision, Vec<u8>), Errno> {
        let body = Json::object()
            .with("template", template)
            .with("top", top)
            .with("bottom", bottom)
            .encode()
            .into_bytes();
        let request = HttpRequest::new(Method::Post, "/api/meme").with_body(body, "application/json");
        let (route, response) = self.request(request)?;
        if !response.is_success() {
            return Err(Errno::EIO);
        }
        Ok((route, response.body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_deterministic_and_depends_on_text() {
        let template = vec![9u8; 4096];
        let mut cost = 0u64;
        let a = render_meme(&template, "TOP", "BOTTOM", &mut |u| cost += u);
        let b = render_meme(&template, "TOP", "BOTTOM", &mut |_| {});
        let c = render_meme(&template, "OTHER", "TEXT", &mut |_| {});
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.starts_with(b"MEME1"));
        assert_eq!(cost, MEME_RENDER_UNITS);
    }

    #[test]
    fn handler_serves_backgrounds_and_memes() {
        let backgrounds = vec!["grumpy-cat.png".to_string(), "doge.png".to_string()];
        let mut read_file = |_: &str| Ok(vec![1u8; 128]);
        let mut charge = |_: u64| {};
        let response = handle_api_request(
            &HttpRequest::new(Method::Get, "/api/backgrounds"),
            &backgrounds,
            &mut read_file,
            &mut charge,
        );
        assert!(response.is_success());
        assert_eq!(
            String::from_utf8_lossy(&response.body),
            "[\"grumpy-cat.png\",\"doge.png\"]"
        );

        let body = Json::object().with("template", "doge.png").with("top", "WOW").encode();
        let request = HttpRequest::new(Method::Post, "/api/meme").with_body(body.into_bytes(), "application/json");
        let response = handle_api_request(&request, &backgrounds, &mut read_file, &mut charge);
        assert!(response.is_success());
        assert!(response.body.starts_with(b"MEME1"));

        // Unknown endpoints and bad JSON.
        let response = handle_api_request(
            &HttpRequest::new(Method::Get, "/nope"),
            &backgrounds,
            &mut read_file,
            &mut charge,
        );
        assert_eq!(response.status, 404);
        let bad = HttpRequest::new(Method::Post, "/api/meme").with_body(b"{".to_vec(), "application/json");
        let response = handle_api_request(&bad, &backgrounds, &mut read_file, &mut charge);
        assert_eq!(response.status, 400);
    }

    #[test]
    fn remote_service_mirrors_the_handler() {
        let service = RemoteMemeService::new().without_compute();
        let list = service.handle("/api/backgrounds", None).unwrap();
        assert!(String::from_utf8_lossy(&list).contains("grumpy-cat.png"));
        let body = Json::object().with("template", "grumpy-cat.png").encode();
        let meme = service.handle("/api/meme", Some(body.as_bytes())).unwrap();
        assert!(meme.starts_with(b"MEME1"));
        assert_eq!(service.handle("/missing", None), Err(404));
    }

    #[test]
    fn in_browsix_server_answers_requests_end_to_end() {
        let client = MemeClient::new(MemeEnvironment::boot_for_tests(), true);
        assert_eq!(client.route(), RouteDecision::InBrowsix);

        let (route, backgrounds) = client.list_backgrounds().unwrap();
        assert_eq!(route, RouteDecision::InBrowsix);
        assert_eq!(backgrounds.len(), 3);
        assert!(backgrounds.contains(&"doge.png".to_string()));

        let (_, meme) = client.generate("doge.png", "SUCH KERNEL", "VERY UNIX").unwrap();
        assert!(meme.starts_with(b"MEME1"));
        assert!(meme.len() > 90_000);
        client
            .environment()
            .kernel
            .kill(client.environment().server_pid, browsix_core::Signal::SIGKILL)
            .ok();
    }

    #[test]
    fn routing_policy_prefers_remote_on_mobile_and_falls_back_offline() {
        let client = MemeClient::new(MemeEnvironment::boot_for_tests(), false);
        // Mobile device, network up: go remote.
        assert_eq!(client.route(), RouteDecision::Remote);
        let (route, backgrounds) = client.list_backgrounds().unwrap();
        assert_eq!(route, RouteDecision::Remote);
        assert_eq!(backgrounds.len(), 3);

        // Network goes away: requests transparently switch to the in-Browsix
        // server — disconnected operation.
        client.environment().remote.set_online(false);
        assert_eq!(client.route(), RouteDecision::InBrowsix);
        let (route, meme) = client.generate("grumpy-cat.png", "NO NETWORK", "NO PROBLEM").unwrap();
        assert_eq!(route, RouteDecision::InBrowsix);
        assert!(meme.starts_with(b"MEME1"));
    }
}
