//! `browsix-abigen` CLI — the ABI freshness tooling used by
//! `scripts/abigen_check.sh` and contributors.
//!
//! ```text
//! browsix-abigen docs <idl> <out.md>   render the ABI reference manual
//! browsix-abigen check <idl> <docs>    exit 1 if the manual is stale
//! browsix-abigen manifest <idl>        print the one-line generation manifest
//! ```

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
        ["docs", idl, out] => cmd_docs(idl, out),
        ["check", idl, docs] => cmd_check(idl, docs),
        ["manifest", idl] => cmd_manifest(idl),
        _ => {
            eprintln!(
                "usage: browsix-abigen docs <idl> <out.md>\n\
                 \x20      browsix-abigen check <idl> <docs.md>\n\
                 \x20      browsix-abigen manifest <idl>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("browsix-abigen: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_docs(idl: &str, out: &str) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let abi = browsix_abigen::load(Path::new(idl))?;
    std::fs::write(out, browsix_abigen::docs::render(&abi)).map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {out} ({})", browsix_abigen::manifest_line(&abi));
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(idl: &str, docs: &str) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let abi = browsix_abigen::load(Path::new(idl))?;
    let want = browsix_abigen::docs::render(&abi);
    let have = std::fs::read_to_string(docs).map_err(|e| format!("read {docs}: {e}"))?;
    if want == have {
        println!("{docs} is fresh ({})", browsix_abigen::manifest_line(&abi));
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "{docs} is STALE: regenerate with `cargo run -p browsix-abigen -- docs {idl} {docs}` and commit the result"
        );
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_manifest(idl: &str) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let abi = browsix_abigen::load(Path::new(idl))?;
    println!("{}", browsix_abigen::manifest_line(&abi));
    Ok(ExitCode::SUCCESS)
}
