//! `browsix-abigen`: the one-source-of-truth compiler for the Browsix
//! syscall ABI.
//!
//! The checked-in IDL file `abi/syscalls.abi` describes every system call
//! (name, opcode, argument/result types, errno set, ring-safety class, doc
//! comments) and every result shape.  This crate parses that file into an
//! [`Abi`] model and generates, deterministically:
//!
//! * the `Syscall`/`SysResult` enums and their wire codec
//!   ([`codegen::gen_core`], included by `browsix-core`'s `build.rs`),
//! * the kernel dispatch match ([`codegen::gen_dispatch`]),
//! * the ABI manifest plus the `ring_safe` classifier
//!   ([`codegen::gen_abi_mod`]),
//! * typed `SyscallClient` submission stubs ([`codegen::gen_client`]),
//! * the proptest shape builders ([`codegen::gen_shapes`]), and
//! * the human-readable reference `docs/ABI.md` ([`docs::render`]).
//!
//! The crate is dependency-free on purpose (it must build in an offline
//! container as a build-dependency) and the parser is a small line-oriented
//! reader rather than a general grammar: the IDL is append-mostly and edited
//! by hand, so clear error messages beat syntactic generality.

pub mod codegen;
pub mod docs;

use std::fmt;

/// Wire types an argument or result field can carry.
///
/// Each type knows its Rust representation, its wire layout, and the code
/// fragments the generators splice together; adding a new type here is the
/// only step needed to use it from the IDL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ty {
    /// Little-endian `i32`.
    I32,
    /// Little-endian `u32`.
    U32,
    /// Little-endian `u16`.
    U16,
    /// Little-endian `u64`.
    U64,
    /// Little-endian `i64`.
    I64,
    /// One byte, `0` or `1`.
    Bool,
    /// `u32` length prefix + UTF-8 bytes.
    Str,
    /// `u32` length prefix + raw bytes.
    Bytes,
    /// Tagged byte source: inline bytes or a shared-heap window.
    ByteSrc,
    /// Signal number as `i32`; unknown numbers fail decode.
    Signal,
    /// Signal action as one byte (0 default, 1 ignore, 2 handler,
    /// 3 handler+restart); other bytes fail decode.
    SigAction,
    /// Open flags as a `u32` bit word; invalid combinations fail decode.
    OpenFlags,
    /// Process id as `u32`.
    Pid,
    /// `bool` presence byte, then a string when present.
    OptionStr,
    /// `u32` count, then that many strings.
    ListStr,
    /// `u32` count, then that many key/value string pairs.
    ListPair,
    /// Exactly three optional descriptors (stdin/stdout/stderr), each a
    /// `bool` presence byte then an `i32` when present.
    Stdio3,
    /// `u32` count, then `i32` fd + `u16` events per entry.
    ListPollFd,
    /// Fixed metadata record: `u64` size, `u32` mode, `u64` mtime,
    /// `u64` atime, `bool` is-dir.
    Metadata,
    /// `u32` count, then `bool` is-dir + string name per entry.
    ListDirEnt,
    /// `u32` count, then that many `u16` words.
    ListU16,
    /// Errno code as `i32`; unknown codes fail decode.
    Errno,
}

impl Ty {
    /// Parses the IDL spelling of a type.
    pub fn parse(s: &str) -> Result<Ty, String> {
        Ok(match s {
            "i32" => Ty::I32,
            "u32" => Ty::U32,
            "u16" => Ty::U16,
            "u64" => Ty::U64,
            "i64" => Ty::I64,
            "bool" => Ty::Bool,
            "string" => Ty::Str,
            "bytes" => Ty::Bytes,
            "byte_source" => Ty::ByteSrc,
            "signal" => Ty::Signal,
            "sigaction" => Ty::SigAction,
            "open_flags" => Ty::OpenFlags,
            "pid" => Ty::Pid,
            "option<string>" => Ty::OptionStr,
            "list<string>" => Ty::ListStr,
            "list<pair<string,string>>" => Ty::ListPair,
            "stdio3" => Ty::Stdio3,
            "list<pollfd>" => Ty::ListPollFd,
            "metadata" => Ty::Metadata,
            "list<dirent>" => Ty::ListDirEnt,
            "list<u16>" => Ty::ListU16,
            "errno" => Ty::Errno,
            other => return Err(format!("unknown wire type `{other}`")),
        })
    }

    /// The IDL spelling (inverse of [`Ty::parse`]).
    pub fn idl_name(&self) -> &'static str {
        match self {
            Ty::I32 => "i32",
            Ty::U32 => "u32",
            Ty::U16 => "u16",
            Ty::U64 => "u64",
            Ty::I64 => "i64",
            Ty::Bool => "bool",
            Ty::Str => "string",
            Ty::Bytes => "bytes",
            Ty::ByteSrc => "byte_source",
            Ty::Signal => "signal",
            Ty::SigAction => "sigaction",
            Ty::OpenFlags => "open_flags",
            Ty::Pid => "pid",
            Ty::OptionStr => "option<string>",
            Ty::ListStr => "list<string>",
            Ty::ListPair => "list<pair<string,string>>",
            Ty::Stdio3 => "stdio3",
            Ty::ListPollFd => "list<pollfd>",
            Ty::Metadata => "metadata",
            Ty::ListDirEnt => "list<dirent>",
            Ty::ListU16 => "list<u16>",
            Ty::Errno => "errno",
        }
    }

    /// The wire layout of one field of this type, for documentation.
    pub fn layout(&self, name: &str) -> String {
        match self {
            Ty::I32 => format!("i32 {name}"),
            Ty::U32 => format!("u32 {name}"),
            Ty::U16 => format!("u16 {name}"),
            Ty::U64 => format!("u64 {name}"),
            Ty::I64 => format!("i64 {name}"),
            Ty::Bool => format!("bool {name}"),
            Ty::Str => format!("str {name}"),
            Ty::Bytes => format!("bytes {name}"),
            Ty::ByteSrc => format!("u8 tag | (bytes {name} ⊕ u32 offset + u32 len)"),
            Ty::Signal => format!("i32 {name}"),
            Ty::SigAction => format!("u8 {name}"),
            Ty::OpenFlags => format!("u32 {name}"),
            Ty::Pid => format!("u32 {name}"),
            Ty::OptionStr => format!("bool has_{name} | str {name}?"),
            Ty::ListStr => format!("u32 n_{name} | str × n"),
            Ty::ListPair => format!("u32 n_{name} | (str key + str value) × n"),
            Ty::Stdio3 => "(bool present | i32 fd?) × 3".to_string(),
            Ty::ListPollFd => format!("u32 n_{name} | (i32 fd + u16 events) × n"),
            Ty::Metadata => "u64 size | u32 mode | u64 mtime_ms | u64 atime_ms | bool is_dir".to_string(),
            Ty::ListDirEnt => format!("u32 n_{name} | (bool is_dir + str name) × n"),
            Ty::ListU16 => format!("u32 n_{name} | u16 × n"),
            Ty::Errno => format!("i32 {name}"),
        }
    }
}

/// One named field: a syscall argument or a result payload component.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name in the Rust enum (and on the wire layout docs).
    pub name: String,
    /// Optional rebind used by the kernel dispatch pattern (e.g. a `pid`
    /// field rebound to `target` so it cannot shadow the caller's pid).
    pub bind: Option<String>,
    /// Wire type.
    pub ty: Ty,
    /// Doc lines (no leading `///`).
    pub docs: Vec<String>,
}

impl FieldDef {
    /// The name the dispatch arm sees this field under.
    pub fn bound_name(&self) -> &str {
        self.bind.as_deref().unwrap_or(&self.name)
    }
}

/// Ring-transport eligibility of a syscall, straight from the IDL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingClass {
    /// Always eligible for a persistent-ring slot.
    Safe,
    /// Never rides the ring; always falls back to a framed batch.
    Framed,
    /// Eligible only when the named `u32` length field fits a registered
    /// ring buffer.
    DataCapped(String),
    /// Eligible only when the named list field has at most N entries.
    ListCapped(String, u32),
}

impl RingClass {
    /// Short human-readable classification used in tables and manifests.
    pub fn label(&self) -> String {
        match self {
            RingClass::Safe => "safe".to_string(),
            RingClass::Framed => "framed".to_string(),
            RingClass::DataCapped(field) => format!("safe if {field} ≤ buf_bytes"),
            RingClass::ListCapped(field, n) => format!("safe if |{field}| ≤ {n}"),
        }
    }
}

/// Whether the generator emits a typed `SyscallClient` stub for a call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StubKind {
    /// Emit the standard `sys_<name>` submission stub.
    Default,
    /// No stub: the call needs bespoke client handling (e.g. `exit` is
    /// fire-and-forget, `ring_setup` is part of the transport bring-up).
    None,
}

/// One system call: everything the generators and the reference manual know
/// about it.
#[derive(Debug, Clone)]
pub struct SyscallDef {
    /// Rust enum variant identifier, e.g. `Spawn`.
    pub ident: String,
    /// Wire opcode; append-only, never reused.
    pub opcode: u8,
    /// Wire/statistics name, e.g. `"llseek"`.
    pub wire_name: String,
    /// Optional `(bool_field, name)` pair: when the field is true the call
    /// reports the alternate name (`stat` vs `lstat`).
    pub alt_name: Option<(String, String)>,
    /// Figure 3 class, e.g. `"File IO"`.
    pub class: String,
    /// Ring-transport eligibility.
    pub ring: RingClass,
    /// Result shape description for the manual, e.g. `Int (new pid)`.
    pub result_doc: String,
    /// Errnos this call can fail with (documentation, not enforcement).
    pub errnos: Vec<String>,
    /// Doc lines.
    pub docs: Vec<String>,
    /// Arguments, in wire order.
    pub args: Vec<FieldDef>,
    /// Verbatim dispatch expression, e.g. `self.sys_open(pid, path, flags,
    /// mode)`.
    pub dispatch: String,
    /// Verbatim match-pattern override (defaults to binding every arg).
    pub bindpat: Option<String>,
    /// Client stub policy.
    pub stub: StubKind,
}

/// Shape of a result variant's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultKind {
    /// No payload (`SysResult::Ok`).
    Unit,
    /// Positional payload (`SysResult::Int(i64)`).
    Tuple,
    /// Named payload (`SysResult::Wait { pid, status }`).
    Struct,
}

/// One result variant of the ABI.
#[derive(Debug, Clone)]
pub struct ResultDef {
    /// Rust enum variant identifier.
    pub ident: String,
    /// Wire tag; append-only, never reused.
    pub tag: u8,
    /// Payload shape.
    pub kind: ResultKind,
    /// Payload fields, in wire order.
    pub fields: Vec<FieldDef>,
    /// Doc lines.
    pub docs: Vec<String>,
}

/// The parsed ABI: the single source of truth everything else is generated
/// from.
#[derive(Debug, Clone)]
pub struct Abi {
    /// Wire codec version (the byte after the frame magic).
    pub version: u8,
    /// Every system call, in opcode order.
    pub syscalls: Vec<SyscallDef>,
    /// Every result variant, in tag order.
    pub results: Vec<ResultDef>,
}

/// A parse failure, with the 1-based line it happened on.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line number in the IDL file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "abi parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Strips surrounding double quotes, erroring if they are missing.
fn unquote(line: usize, s: &str) -> Result<String, ParseError> {
    let s = s.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        Ok(s[1..s.len() - 1].to_string())
    } else {
        Err(err(line, format!("expected a quoted string, got `{s}`")))
    }
}

fn parse_ring(line: usize, value: &str) -> Result<RingClass, ParseError> {
    let value = value.trim();
    if value == "safe" {
        return Ok(RingClass::Safe);
    }
    if value == "framed" {
        return Ok(RingClass::Framed);
    }
    if let Some(rest) = value.strip_prefix("data-capped(") {
        let field = rest
            .strip_suffix(')')
            .ok_or_else(|| err(line, "missing `)` in data-capped"))?;
        return Ok(RingClass::DataCapped(field.trim().to_string()));
    }
    if let Some(rest) = value.strip_prefix("list-capped(") {
        let inner = rest
            .strip_suffix(')')
            .ok_or_else(|| err(line, "missing `)` in list-capped"))?;
        let (field, cap) = inner
            .split_once(',')
            .ok_or_else(|| err(line, "list-capped needs `field, N`"))?;
        let cap: u32 = cap
            .trim()
            .parse()
            .map_err(|_| err(line, format!("bad list-capped bound `{}`", cap.trim())))?;
        return Ok(RingClass::ListCapped(field.trim().to_string(), cap));
    }
    Err(err(line, format!("unknown ring class `{value}`")))
}

/// Parses an arg/field declaration: `NAME: TYPE` or `NAME: TYPE as BIND`.
fn parse_field(line: usize, decl: &str, docs: Vec<String>) -> Result<FieldDef, ParseError> {
    let (name, rest) = decl
        .split_once(':')
        .ok_or_else(|| err(line, format!("expected `name: type`, got `{decl}`")))?;
    let rest = rest.trim();
    let (ty_str, bind) = match rest.split_once(" as ") {
        Some((t, b)) => (t.trim(), Some(b.trim().to_string())),
        None => (rest, None),
    };
    let ty = Ty::parse(ty_str).map_err(|e| err(line, e))?;
    Ok(FieldDef {
        name: name.trim().to_string(),
        bind,
        ty,
        docs,
    })
}

/// Parses the IDL text into an [`Abi`], validating opcode/tag uniqueness and
/// internal references.
pub fn parse(text: &str) -> Result<Abi, ParseError> {
    let mut version: Option<u8> = None;
    let mut syscalls: Vec<SyscallDef> = Vec::new();
    let mut results: Vec<ResultDef> = Vec::new();

    let mut pending_docs: Vec<String> = Vec::new();
    let mut lines = text.lines().enumerate().peekable();

    while let Some((idx, raw)) = lines.next() {
        let ln = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") && !line.starts_with("///") {
            continue;
        }
        if let Some(doc) = line.strip_prefix("///") {
            pending_docs.push(doc.strip_prefix(' ').unwrap_or(doc).to_string());
            continue;
        }
        if let Some(v) = line.strip_prefix("version ") {
            version = Some(v.trim().parse().map_err(|_| err(ln, "bad version number"))?);
            continue;
        }
        let (keyword, is_syscall) = if line.starts_with("syscall ") {
            ("syscall ", true)
        } else if line.starts_with("result ") {
            ("result ", false)
        } else {
            return Err(err(ln, format!("unexpected top-level line `{line}`")));
        };
        let decl = line[keyword.len()..].trim_end_matches('{').trim();
        let (ident, num) = decl
            .split_once('=')
            .ok_or_else(|| err(ln, format!("expected `{} Name = N {{`", keyword.trim())))?;
        let ident = ident.trim().to_string();
        let num: u8 = num
            .trim()
            .parse()
            .map_err(|_| err(ln, format!("bad opcode/tag `{}`", num.trim())))?;
        let docs = std::mem::take(&mut pending_docs);

        // Block body.
        let mut body_docs: Vec<String> = Vec::new();
        let mut name = None;
        let mut alt_name = None;
        let mut class = None;
        let mut ring = None;
        let mut result_doc = String::new();
        let mut errnos = Vec::new();
        let mut dispatch = None;
        let mut bindpat = None;
        let mut stub = StubKind::Default;
        let mut kind = None;
        let mut fields: Vec<FieldDef> = Vec::new();
        let mut closed = false;

        for (bidx, braw) in lines.by_ref() {
            let bln = bidx + 1;
            let bline = braw.trim();
            if bline.is_empty() || bline.starts_with("//") && !bline.starts_with("///") {
                continue;
            }
            if bline == "}" {
                closed = true;
                break;
            }
            if let Some(doc) = bline.strip_prefix("///") {
                body_docs.push(doc.strip_prefix(' ').unwrap_or(doc).to_string());
                continue;
            }
            if let Some(decl) = bline.strip_prefix("arg ") {
                fields.push(parse_field(bln, decl, std::mem::take(&mut body_docs))?);
                continue;
            }
            if let Some(decl) = bline.strip_prefix("field ") {
                fields.push(parse_field(bln, decl, std::mem::take(&mut body_docs))?);
                continue;
            }
            let (key, value) = bline
                .split_once(':')
                .ok_or_else(|| err(bln, format!("unexpected line `{bline}` in block")))?;
            let value = value.trim();
            match key.trim() {
                "name" => name = Some(unquote(bln, value)?),
                "altname" => {
                    let (field, alt) = value
                        .split_once(' ')
                        .ok_or_else(|| err(bln, "altname needs `field \"name\"`"))?;
                    alt_name = Some((field.trim().to_string(), unquote(bln, alt)?));
                }
                "class" => class = Some(unquote(bln, value)?),
                "ring" => ring = Some(parse_ring(bln, value)?),
                "result" => result_doc = value.to_string(),
                "errno" => errnos = value.split_whitespace().map(str::to_string).collect(),
                "dispatch" => dispatch = Some(value.to_string()),
                "bindpat" => bindpat = Some(value.to_string()),
                "stub" => {
                    stub = match value {
                        "none" => StubKind::None,
                        other => return Err(err(bln, format!("unknown stub policy `{other}`"))),
                    }
                }
                "kind" => {
                    kind = Some(match value {
                        "unit" => ResultKind::Unit,
                        "tuple" => ResultKind::Tuple,
                        "struct" => ResultKind::Struct,
                        other => return Err(err(bln, format!("unknown result kind `{other}`"))),
                    })
                }
                other => return Err(err(bln, format!("unknown key `{other}`"))),
            }
        }
        if !closed {
            return Err(err(ln, format!("block `{ident}` never closed")));
        }

        if is_syscall {
            syscalls.push(SyscallDef {
                ident: ident.clone(),
                opcode: num,
                wire_name: name.ok_or_else(|| err(ln, format!("syscall `{ident}` missing `name:`")))?,
                alt_name,
                class: class.ok_or_else(|| err(ln, format!("syscall `{ident}` missing `class:`")))?,
                ring: ring.ok_or_else(|| err(ln, format!("syscall `{ident}` missing `ring:`")))?,
                result_doc,
                errnos,
                docs,
                args: fields,
                dispatch: dispatch.ok_or_else(|| err(ln, format!("syscall `{ident}` missing `dispatch:`")))?,
                bindpat,
                stub,
            });
        } else {
            results.push(ResultDef {
                ident: ident.clone(),
                tag: num,
                kind: kind.ok_or_else(|| err(ln, format!("result `{ident}` missing `kind:`")))?,
                fields,
                docs,
            });
        }
    }

    let abi = Abi {
        version: version.ok_or_else(|| err(1, "missing `version N` header"))?,
        syscalls,
        results,
    };
    validate(&abi)?;
    Ok(abi)
}

/// Structural checks beyond syntax: unique/dense opcodes, unique tags,
/// resolvable ring-cap and altname field references.
fn validate(abi: &Abi) -> Result<(), ParseError> {
    let mut seen = std::collections::BTreeSet::new();
    for sc in &abi.syscalls {
        if !seen.insert(sc.opcode) {
            return Err(err(0, format!("duplicate opcode {} ({})", sc.opcode, sc.ident)));
        }
        if sc.opcode == 0 {
            return Err(err(0, "opcode 0 is reserved (never valid on the wire)"));
        }
        let field_names: Vec<&str> = sc.args.iter().map(|a| a.name.as_str()).collect();
        match &sc.ring {
            RingClass::DataCapped(f) | RingClass::ListCapped(f, _) if !field_names.contains(&f.as_str()) => {
                return Err(err(0, format!("{}: ring cap references unknown field `{f}`", sc.ident)));
            }
            _ => {}
        }
        if let Some((f, _)) = &sc.alt_name {
            if !field_names.contains(&f.as_str()) {
                return Err(err(0, format!("{}: altname references unknown field `{f}`", sc.ident)));
            }
        }
    }
    // Opcodes must be dense from 1: a gap means a number was skipped or
    // retired, which the append-only compat rule forbids.
    let max = seen.iter().next_back().copied().unwrap_or(0);
    if seen.len() != max as usize {
        return Err(err(0, format!("opcodes must be dense 1..={max} with no gaps")));
    }
    let mut tags = std::collections::BTreeSet::new();
    for res in &abi.results {
        if !tags.insert(res.tag) {
            return Err(err(0, format!("duplicate result tag {} ({})", res.tag, res.ident)));
        }
        match res.kind {
            ResultKind::Unit if !res.fields.is_empty() => {
                return Err(err(0, format!("{}: unit result cannot have fields", res.ident)));
            }
            _ => {}
        }
    }
    Ok(())
}

/// Loads and parses an IDL file from disk.
pub fn load(path: &std::path::Path) -> Result<Abi, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Ok(parse(&text)?)
}

/// One-line generation manifest: the counts CI and `table1_features` print
/// so ABI growth is visible in the paper figures.
pub fn manifest_line(abi: &Abi) -> String {
    let ring_safe = abi.syscalls.iter().filter(|s| s.ring != RingClass::Framed).count();
    let framed = abi.syscalls.len() - ring_safe;
    format!(
        "abi v{}: {} opcodes (max {}), {} result tags, {} ring-eligible, {} framed-only",
        abi.version,
        abi.syscalls.len(),
        abi.syscalls.iter().map(|s| s.opcode).max().unwrap_or(0),
        abi.results.len(),
        ring_safe,
        framed,
    )
}
