//! `SharedArrayBuffer` and `Atomics`.
//!
//! Synchronous Browsix system calls share a view of the process's heap with
//! the kernel: the process writes its arguments into the shared buffer, posts
//! a tiny integer-only message, and blocks in `Atomics.wait` on an agreed wake
//! address until the kernel stores the system call's return value and calls
//! `Atomics.notify`.  This module provides that machinery.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::PlatformError;

/// Result of an [`SharedArrayBuffer::wait`] call, mirroring the strings
/// returned by `Atomics.wait` ("ok", "not-equal", "timed-out").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicsWaitResult {
    /// The waiter was woken by a notify.
    Ok,
    /// The value at the address did not match the expected value.
    NotEqual,
    /// The wait timed out before a notify arrived.
    TimedOut,
}

#[derive(Debug)]
struct SabState {
    data: Vec<u8>,
    /// Monotonic per-address notification counters; a waiter records the
    /// counter before sleeping and wakes once it changes.
    notify_seq: std::collections::HashMap<usize, u64>,
}

#[derive(Debug)]
struct SabInner {
    state: Mutex<SabState>,
    cond: Condvar,
}

/// A block of memory shared between a worker and the kernel.
///
/// Cloning a `SharedArrayBuffer` produces another handle to the *same*
/// memory, exactly like transferring a `SharedArrayBuffer` over
/// `postMessage` in the browser.
#[derive(Debug, Clone)]
pub struct SharedArrayBuffer {
    inner: Arc<SabInner>,
}

/// Handle identity, not content: two handles are equal when they name the
/// same underlying memory, exactly as `===` compares `SharedArrayBuffer`
/// objects received over `postMessage`.
impl PartialEq for SharedArrayBuffer {
    fn eq(&self, other: &SharedArrayBuffer) -> bool {
        self.same_buffer(other)
    }
}

impl SharedArrayBuffer {
    /// Allocates a zero-filled shared buffer of `len` bytes.
    pub fn new(len: usize) -> Self {
        SharedArrayBuffer {
            inner: Arc::new(SabInner {
                state: Mutex::new(SabState {
                    data: vec![0; len],
                    notify_seq: std::collections::HashMap::new(),
                }),
                cond: Condvar::new(),
            }),
        }
    }

    /// Total capacity in bytes.
    pub fn len(&self) -> usize {
        self.inner.state.lock().data.len()
    }

    /// Whether the buffer has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether two handles refer to the same underlying memory.
    pub fn same_buffer(&self, other: &SharedArrayBuffer) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// `Atomics.load`-style load of a little-endian `u32` at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::OutOfBounds`] if the load is out of range.
    pub fn load_u32(&self, offset: usize) -> Result<u32, PlatformError> {
        self.load_i32(offset).map(|v| v as u32)
    }

    fn check_bounds(&self, offset: usize, len: usize, capacity: usize) -> Result<(), PlatformError> {
        if offset.checked_add(len).map(|end| end <= capacity).unwrap_or(false) {
            Ok(())
        } else {
            Err(PlatformError::OutOfBounds { offset, len, capacity })
        }
    }

    /// Copies `src` into the buffer at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::OutOfBounds`] if the write would exceed the
    /// buffer's capacity.
    pub fn write_bytes(&self, offset: usize, src: &[u8]) -> Result<(), PlatformError> {
        let mut state = self.inner.state.lock();
        let capacity = state.data.len();
        self.check_bounds(offset, src.len(), capacity)?;
        state.data[offset..offset + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Reads `len` bytes starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::OutOfBounds`] if the read would exceed the
    /// buffer's capacity.
    pub fn read_bytes(&self, offset: usize, len: usize) -> Result<Vec<u8>, PlatformError> {
        let state = self.inner.state.lock();
        self.check_bounds(offset, len, state.data.len())?;
        Ok(state.data[offset..offset + len].to_vec())
    }

    /// Stores a little-endian `i32` at byte offset `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::OutOfBounds`] if the store is out of range.
    pub fn store_i32(&self, offset: usize, value: i32) -> Result<(), PlatformError> {
        self.write_bytes(offset, &value.to_le_bytes())
    }

    /// Loads a little-endian `i32` from byte offset `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::OutOfBounds`] if the load is out of range.
    pub fn load_i32(&self, offset: usize) -> Result<i32, PlatformError> {
        let bytes = self.read_bytes(offset, 4)?;
        Ok(i32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// `Atomics.or`-style read-modify-write: ORs `value` into the `i32` at
    /// byte offset `offset` and returns the previous value.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::OutOfBounds`] if the access is out of range.
    pub fn fetch_or_i32(&self, offset: usize, value: i32) -> Result<i32, PlatformError> {
        self.fetch_update_i32(offset, |old| old | value)
    }

    /// `Atomics.and`-style read-modify-write: ANDs `value` into the `i32` at
    /// byte offset `offset` and returns the previous value.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::OutOfBounds`] if the access is out of range.
    pub fn fetch_and_i32(&self, offset: usize, value: i32) -> Result<i32, PlatformError> {
        self.fetch_update_i32(offset, |old| old & value)
    }

    fn fetch_update_i32(&self, offset: usize, f: impl FnOnce(i32) -> i32) -> Result<i32, PlatformError> {
        let mut state = self.inner.state.lock();
        let capacity = state.data.len();
        self.check_bounds(offset, 4, capacity)?;
        let old = i32::from_le_bytes([
            state.data[offset],
            state.data[offset + 1],
            state.data[offset + 2],
            state.data[offset + 3],
        ]);
        let new = f(old).to_le_bytes();
        state.data[offset..offset + 4].copy_from_slice(&new);
        Ok(old)
    }

    /// `Atomics.wait`: blocks until the value at byte offset `offset` is
    /// changed *and* notified, the value differs from `expected` on entry, or
    /// the optional timeout expires.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::OutOfBounds`] if `offset` is out of range.
    pub fn wait(
        &self,
        offset: usize,
        expected: i32,
        timeout: Option<Duration>,
    ) -> Result<AtomicsWaitResult, PlatformError> {
        let mut state = self.inner.state.lock();
        self.check_bounds(offset, 4, state.data.len())?;
        let current = i32::from_le_bytes([
            state.data[offset],
            state.data[offset + 1],
            state.data[offset + 2],
            state.data[offset + 3],
        ]);
        if current != expected {
            return Ok(AtomicsWaitResult::NotEqual);
        }
        let observed_seq = state.notify_seq.get(&offset).copied().unwrap_or(0);
        let deadline = timeout.map(|t| std::time::Instant::now() + t);
        loop {
            match deadline {
                Some(deadline) => {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        return Ok(AtomicsWaitResult::TimedOut);
                    }
                    let result = self.inner.cond.wait_for(&mut state, deadline - now);
                    let seq = state.notify_seq.get(&offset).copied().unwrap_or(0);
                    if seq != observed_seq {
                        return Ok(AtomicsWaitResult::Ok);
                    }
                    if result.timed_out() {
                        return Ok(AtomicsWaitResult::TimedOut);
                    }
                }
                None => {
                    self.inner.cond.wait(&mut state);
                    let seq = state.notify_seq.get(&offset).copied().unwrap_or(0);
                    if seq != observed_seq {
                        return Ok(AtomicsWaitResult::Ok);
                    }
                }
            }
        }
    }

    /// `Atomics.notify`: wakes waiters blocked on byte offset `offset`.
    ///
    /// Returns the nominal wake count (the simulation wakes all waiters on the
    /// address and lets them re-check their condition, which is a valid
    /// implementation of the specification).
    pub fn notify(&self, offset: usize, _count: u32) -> usize {
        let mut state = self.inner.state.lock();
        *state.notify_seq.entry(offset).or_insert(0) += 1;
        self.inner.cond.notify_all();
        1
    }

    /// Atomically stores `value` at `offset` and notifies waiters on that
    /// address — the kernel-side "complete a synchronous system call" step.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::OutOfBounds`] if the store is out of range.
    pub fn store_and_notify(&self, offset: usize, value: i32) -> Result<(), PlatformError> {
        {
            let mut state = self.inner.state.lock();
            let capacity = state.data.len();
            self.check_bounds(offset, 4, capacity)?;
            let bytes = value.to_le_bytes();
            state.data[offset..offset + 4].copy_from_slice(&bytes);
            *state.notify_seq.entry(offset).or_insert(0) += 1;
        }
        self.inner.cond.notify_all();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn read_write_round_trip() {
        let sab = SharedArrayBuffer::new(64);
        sab.write_bytes(8, &[1, 2, 3, 4]).unwrap();
        assert_eq!(sab.read_bytes(8, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(sab.len(), 64);
        assert!(!sab.is_empty());
    }

    #[test]
    fn i32_round_trip() {
        let sab = SharedArrayBuffer::new(16);
        sab.store_i32(4, -1234).unwrap();
        assert_eq!(sab.load_i32(4).unwrap(), -1234);
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let sab = SharedArrayBuffer::new(8);
        assert!(sab.write_bytes(6, &[0; 4]).is_err());
        assert!(sab.read_bytes(9, 1).is_err());
        assert!(sab.load_i32(5).is_err());
        assert!(sab.wait(6, 0, None).is_err());
    }

    #[test]
    fn wait_returns_not_equal_when_value_differs() {
        let sab = SharedArrayBuffer::new(16);
        sab.store_i32(0, 7).unwrap();
        assert_eq!(sab.wait(0, 0, None).unwrap(), AtomicsWaitResult::NotEqual);
    }

    #[test]
    fn wait_times_out() {
        let sab = SharedArrayBuffer::new(16);
        let result = sab.wait(0, 0, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(result, AtomicsWaitResult::TimedOut);
    }

    #[test]
    fn notify_wakes_waiter_across_threads() {
        let sab = SharedArrayBuffer::new(16);
        let waiter = sab.clone();
        let handle = thread::spawn(move || waiter.wait(0, 0, Some(Duration::from_secs(5))).unwrap());
        // Give the waiter a moment to block, then complete the "syscall".
        thread::sleep(Duration::from_millis(20));
        sab.store_and_notify(0, 1).unwrap();
        assert_eq!(handle.join().unwrap(), AtomicsWaitResult::Ok);
        assert_eq!(sab.load_i32(0).unwrap(), 1);
    }

    #[test]
    fn fetch_or_and_round_trip() {
        let sab = SharedArrayBuffer::new(16);
        assert_eq!(sab.fetch_or_i32(0, 0b0101).unwrap(), 0);
        assert_eq!(sab.fetch_or_i32(0, 0b0010).unwrap(), 0b0101);
        assert_eq!(sab.load_i32(0).unwrap(), 0b0111);
        assert_eq!(sab.fetch_and_i32(0, !0b0001).unwrap(), 0b0111);
        assert_eq!(sab.load_i32(0).unwrap(), 0b0110);
        assert!(sab.fetch_or_i32(14, 1).is_err());
    }

    #[test]
    fn clones_share_memory() {
        let sab = SharedArrayBuffer::new(8);
        let other = sab.clone();
        sab.store_i32(0, 99).unwrap();
        assert_eq!(other.load_i32(0).unwrap(), 99);
        assert!(sab.same_buffer(&other));
        assert!(!sab.same_buffer(&SharedArrayBuffer::new(8)));
    }
}
