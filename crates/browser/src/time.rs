//! Precise delay injection and simple stopwatch helpers.
//!
//! The calibrated cost models in this repository (postMessage latency,
//! structured-clone cost, JavaScript-engine compute scaling) need to inject
//! delays that are often far below the ~1 ms granularity of `thread::sleep`.
//! [`precise_delay`] sleeps for the bulk of the interval and spins for the
//! remainder, which keeps injected costs accurate down to a few microseconds
//! without burning excessive CPU for long waits.

use std::time::{Duration, Instant};

/// Threshold below which we spin instead of sleeping.
const SPIN_THRESHOLD: Duration = Duration::from_micros(200);

/// Blocks the current thread for `duration` with microsecond-level accuracy.
///
/// Delays of zero return immediately; long delays use `thread::sleep` for all
/// but the final stretch, which is spun to avoid oversleeping.
pub fn precise_delay(duration: Duration) {
    if duration.is_zero() {
        return;
    }
    let start = Instant::now();
    if duration > SPIN_THRESHOLD {
        let sleep_for = duration - SPIN_THRESHOLD;
        std::thread::sleep(sleep_for);
    }
    while start.elapsed() < duration {
        std::hint::spin_loop();
    }
}

/// A small stopwatch used by benchmark harnesses and the kernel's statistics.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Time elapsed since the stopwatch was started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in fractional milliseconds, handy for report tables.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }

    /// Restarts the stopwatch and returns the time elapsed before the restart.
    pub fn lap(&mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.start = Instant::now();
        elapsed
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delay_returns_immediately() {
        let sw = Stopwatch::start();
        precise_delay(Duration::ZERO);
        assert!(sw.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn short_delay_is_reasonably_accurate() {
        let target = Duration::from_micros(100);
        let sw = Stopwatch::start();
        precise_delay(target);
        let elapsed = sw.elapsed();
        assert!(elapsed >= target);
        assert!(elapsed < target + Duration::from_millis(5));
    }

    #[test]
    fn longer_delay_uses_sleep_path() {
        let target = Duration::from_millis(2);
        let sw = Stopwatch::start();
        precise_delay(target);
        assert!(sw.elapsed() >= target);
    }

    #[test]
    fn stopwatch_lap_resets() {
        let mut sw = Stopwatch::start();
        precise_delay(Duration::from_micros(200));
        let first = sw.lap();
        assert!(first >= Duration::from_micros(200));
        let second = sw.elapsed();
        assert!(second < first);
    }

    #[test]
    fn elapsed_ms_is_positive() {
        let sw = Stopwatch::start();
        precise_delay(Duration::from_micros(50));
        assert!(sw.elapsed_ms() > 0.0);
    }
}
