//! Web Workers.
//!
//! A Web Worker runs a script in a separate execution context, has no access
//! to its parent's memory, and can only exchange structured-clone messages
//! with the context that created it.  Workers cannot see each other and (in
//! the browsers the paper targets) cannot spawn nested workers, which is why
//! the Browsix kernel — living in the main context — must broker everything.
//!
//! This module maps that model onto OS threads: [`Worker::spawn`] starts a
//! thread running a [`WorkerScript`]; the parent keeps a [`Worker`] handle and
//! the script receives a [`WorkerScope`].  All communication flows through the
//! pair of message queues, and every message is deep-copied and charged with
//! the platform's `postMessage` cost model.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::config::PlatformConfig;
use crate::error::PlatformError;
use crate::message::Message;
use crate::time::precise_delay;

/// The entry point of a worker: the analogue of the JavaScript file passed to
/// the `Worker` constructor.
pub trait WorkerScript: Send + 'static {
    /// Runs the worker body.  Returning ends the worker's thread, although —
    /// exactly as in the browser — the parent cannot observe that directly and
    /// Browsix runtimes must issue an explicit `exit` system call.
    fn run(self: Box<Self>, scope: WorkerScope);
}

impl<F> WorkerScript for F
where
    F: FnOnce(WorkerScope) + Send + 'static,
{
    fn run(self: Box<Self>, scope: WorkerScope) {
        (*self)(scope)
    }
}

/// The worker-side view: receive messages from the parent, post messages back.
pub struct WorkerScope {
    config: PlatformConfig,
    name: String,
    to_parent: Sender<Message>,
    from_parent: Receiver<Message>,
    terminated: Arc<AtomicBool>,
}

impl std::fmt::Debug for WorkerScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerScope")
            .field("name", &self.name)
            .field("terminated", &self.terminated())
            .finish()
    }
}

impl WorkerScope {
    /// The worker's name (the `name` option of the `Worker` constructor).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The platform configuration the worker was spawned under.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Whether the parent has called [`Worker::terminate`].
    ///
    /// Real workers are killed preemptively; in the simulation, scripts are
    /// expected to poll this flag at message and system-call boundaries.
    pub fn terminated(&self) -> bool {
        self.terminated.load(Ordering::SeqCst)
    }

    /// Posts a structured-clone message to the parent context.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::WorkerTerminated`] if the parent side is gone
    /// or the worker has been terminated.
    pub fn post_message(&self, msg: Message) -> Result<(), PlatformError> {
        if self.terminated() {
            return Err(PlatformError::WorkerTerminated);
        }
        let cloned = msg.structured_clone();
        precise_delay(self.config.post_cost(cloned.byte_size()));
        self.to_parent.send(cloned).map_err(|_| PlatformError::WorkerTerminated)
    }

    /// Blocks until the next message from the parent arrives.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::WorkerTerminated`] if the parent side is gone
    /// or the worker has been terminated.
    pub fn recv(&self) -> Result<Message, PlatformError> {
        loop {
            if self.terminated() {
                return Err(PlatformError::WorkerTerminated);
            }
            match self.from_parent.recv_timeout(Duration::from_millis(50)) {
                Ok(msg) => return Ok(msg),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return Err(PlatformError::WorkerTerminated),
            }
        }
    }

    /// Receives a message if one is already queued.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::WorkerTerminated`] if the parent side is gone.
    pub fn try_recv(&self) -> Result<Option<Message>, PlatformError> {
        if self.terminated() {
            return Err(PlatformError::WorkerTerminated);
        }
        match self.from_parent.try_recv() {
            Ok(msg) => Ok(Some(msg)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(PlatformError::WorkerTerminated),
        }
    }
}

/// The parent-side handle to a spawned worker.
#[derive(Debug)]
pub struct Worker {
    config: PlatformConfig,
    name: String,
    to_worker: Sender<Message>,
    from_worker: Receiver<Message>,
    terminated: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl Worker {
    /// Spawns a new worker running `script`, mirroring `new Worker(url)`.
    pub fn spawn(config: &PlatformConfig, name: &str, script: Box<dyn WorkerScript>) -> Worker {
        let (to_worker, from_parent) = unbounded();
        let (to_parent, from_worker) = unbounded();
        let terminated = Arc::new(AtomicBool::new(false));
        let scope = WorkerScope {
            config: config.clone(),
            name: name.to_owned(),
            to_parent,
            from_parent,
            terminated: Arc::clone(&terminated),
        };
        let thread_name = format!("worker-{name}");
        let join = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || script.run(scope))
            .expect("failed to spawn worker thread");
        Worker {
            config: config.clone(),
            name: name.to_owned(),
            to_worker,
            from_worker,
            terminated,
            join: Some(join),
        }
    }

    /// The worker's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Posts a structured-clone message to the worker, charging the
    /// `postMessage` cost model.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::WorkerTerminated`] if the worker has exited or
    /// been terminated.
    pub fn post_message(&self, msg: Message) -> Result<(), PlatformError> {
        if self.is_terminated() {
            return Err(PlatformError::WorkerTerminated);
        }
        let cloned = msg.structured_clone();
        precise_delay(self.config.post_cost(cloned.byte_size()));
        self.to_worker.send(cloned).map_err(|_| PlatformError::WorkerTerminated)
    }

    /// Blocks until the worker posts a message to the parent.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::WorkerTerminated`] if the worker has exited
    /// without posting further messages.
    pub fn recv(&self) -> Result<Message, PlatformError> {
        self.from_worker.recv().map_err(|_| PlatformError::WorkerTerminated)
    }

    /// Receives a message from the worker if one is queued.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::WorkerTerminated`] if the worker has exited
    /// and the queue is drained.
    pub fn try_recv(&self) -> Result<Option<Message>, PlatformError> {
        match self.from_worker.try_recv() {
            Ok(msg) => Ok(Some(msg)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(PlatformError::WorkerTerminated),
        }
    }

    /// Blocks for at most `timeout` waiting for a message from the worker.
    ///
    /// Returns `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::WorkerTerminated`] if the worker has exited
    /// and the queue is drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Message>, PlatformError> {
        match self.from_worker.recv_timeout(timeout) {
            Ok(msg) => Ok(Some(msg)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(PlatformError::WorkerTerminated),
        }
    }

    /// Whether [`Worker::terminate`] has been called.
    pub fn is_terminated(&self) -> bool {
        self.terminated.load(Ordering::SeqCst)
    }

    /// Terminates the worker, mirroring `worker.terminate()`.
    ///
    /// The worker's script observes the termination flag at its next message
    /// or system-call boundary and unwinds.  Termination is idempotent.
    pub fn terminate(&self) {
        self.terminated.store(true, Ordering::SeqCst);
    }

    /// Terminates the worker and waits for its thread to finish.  Used by
    /// tests and kernel shutdown; a real browser offers no equivalent join.
    pub fn terminate_and_join(&mut self) {
        self.terminate();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Signal termination; do not join (a blocked worker would otherwise
        // hang the parent on drop, and real browsers never block on workers).
        self.terminate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl WorkerScript for Doubler {
        fn run(self: Box<Self>, scope: WorkerScope) {
            while let Ok(msg) = scope.recv() {
                let n = msg.as_int().unwrap_or(0);
                if scope.post_message(Message::Int(n * 2)).is_err() {
                    break;
                }
            }
        }
    }

    #[test]
    fn round_trip_through_worker() {
        let cfg = PlatformConfig::fast();
        let mut worker = Worker::spawn(&cfg, "doubler", Box::new(Doubler));
        worker.post_message(Message::Int(21)).unwrap();
        assert_eq!(worker.recv().unwrap().as_int(), Some(42));
        worker.terminate_and_join();
    }

    #[test]
    fn closure_scripts_are_supported() {
        let cfg = PlatformConfig::fast();
        let mut worker = Worker::spawn(
            &cfg,
            "closure",
            Box::new(|scope: WorkerScope| {
                scope.post_message(Message::from("ready")).unwrap();
            }),
        );
        assert_eq!(worker.recv().unwrap().as_str(), Some("ready"));
        worker.terminate_and_join();
    }

    #[test]
    fn terminate_prevents_further_posts() {
        let cfg = PlatformConfig::fast();
        let worker = Worker::spawn(
            &cfg,
            "idle",
            Box::new(|scope: WorkerScope| {
                // Wait until terminated.
                while !scope.terminated() {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }),
        );
        worker.terminate();
        assert!(worker.is_terminated());
        assert!(matches!(
            worker.post_message(Message::Null),
            Err(PlatformError::WorkerTerminated)
        ));
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let cfg = PlatformConfig::fast();
        let mut worker = Worker::spawn(
            &cfg,
            "quiet",
            Box::new(|scope: WorkerScope| {
                while !scope.terminated() {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }),
        );
        assert!(worker.try_recv().unwrap().is_none());
        assert!(worker.recv_timeout(Duration::from_millis(10)).unwrap().is_none());
        worker.terminate_and_join();
    }

    #[test]
    fn worker_messages_are_deep_copied() {
        let cfg = PlatformConfig::fast();
        let payload = Message::map().with("buf", vec![1u8, 2, 3]);
        let mut worker = Worker::spawn(
            &cfg,
            "copy",
            Box::new(|scope: WorkerScope| {
                let msg = scope.recv().unwrap();
                scope.post_message(msg).unwrap();
            }),
        );
        worker.post_message(payload.clone()).unwrap();
        let echoed = worker.recv().unwrap();
        assert_eq!(echoed, payload);
        worker.terminate_and_join();
    }

    #[test]
    fn scope_reports_name_and_config() {
        let cfg = PlatformConfig::fast();
        let mut worker = Worker::spawn(
            &cfg,
            "named",
            Box::new(|scope: WorkerScope| {
                assert_eq!(scope.name(), "named");
                assert!(!scope.config().inject_delays);
                scope.post_message(Message::from("ok")).unwrap();
            }),
        );
        assert_eq!(worker.name(), "named");
        assert_eq!(worker.recv().unwrap().as_str(), Some("ok"));
        worker.terminate_and_join();
    }
}
