//! Simulated remote network endpoints.
//!
//! Two parts of the paper's evaluation depend on a remote HTTP server:
//!
//! 1. the LaTeX editor's file system lazily fetches TeX Live packages over
//!    HTTP on first access, and
//! 2. the meme generator compares requests served by a remote EC2 instance
//!    against requests served by the same server running inside Browsix.
//!
//! [`RemoteEndpoint`] stands in for those servers: it owns a
//! [`RemoteService`] (static files or an arbitrary handler) and charges a
//! [`NetworkProfile`] — round-trip time plus a bandwidth term — for every
//! request.  The endpoint can also be taken offline to exercise the meme
//! generator's client-side routing policy.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::PlatformError;
use crate::time::precise_delay;

/// Round-trip time and bandwidth of the simulated link to a remote server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkProfile {
    /// One full round trip (SYN to first response byte).
    pub round_trip: Duration,
    /// Link bandwidth in bytes per second, applied to the response body.
    pub bandwidth_bytes_per_sec: u64,
    /// Whether injected delays are applied (disabled for functional tests).
    pub inject_delays: bool,
}

impl NetworkProfile {
    /// A same-machine loopback link: sub-millisecond round trips.
    pub fn localhost() -> Self {
        NetworkProfile {
            round_trip: Duration::from_micros(300),
            bandwidth_bytes_per_sec: 1_000_000_000,
            inject_delays: true,
        }
    }

    /// A wide-area link to an EC2 instance, as in the paper's meme-generator
    /// comparison (tens of milliseconds of round-trip latency).
    pub fn ec2() -> Self {
        NetworkProfile {
            round_trip: Duration::from_millis(24),
            bandwidth_bytes_per_sec: 12_500_000, // ~100 Mbit/s
            inject_delays: true,
        }
    }

    /// A CDN-like link used for the TeX Live distribution mirror.
    pub fn cdn() -> Self {
        NetworkProfile {
            round_trip: Duration::from_millis(8),
            bandwidth_bytes_per_sec: 25_000_000, // ~200 Mbit/s
            inject_delays: true,
        }
    }

    /// No injected delays at all, for functional tests.
    pub fn instant() -> Self {
        NetworkProfile {
            round_trip: Duration::ZERO,
            bandwidth_bytes_per_sec: u64::MAX,
            inject_delays: false,
        }
    }

    /// The simulated transfer duration for a payload of `bytes` bytes.
    pub fn transfer_cost(&self, bytes: usize) -> Duration {
        if !self.inject_delays {
            return Duration::ZERO;
        }
        let transfer = if self.bandwidth_bytes_per_sec == 0 || self.bandwidth_bytes_per_sec == u64::MAX {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec as f64)
        };
        self.round_trip + transfer
    }
}

impl Default for NetworkProfile {
    fn default() -> Self {
        NetworkProfile::localhost()
    }
}

/// Something that can answer requests at the far end of the simulated link.
///
/// The interface is deliberately byte-level rather than HTTP-aware so this
/// crate stays at the bottom of the dependency graph; the HTTP framing lives
/// in `browsix-http` and the applications that use it.
pub trait RemoteService: Send + Sync {
    /// Handles a request for `path`; `body` is present for POST-style calls.
    ///
    /// Returns the response body, or an HTTP-like status code on failure.
    fn handle(&self, path: &str, body: Option<&[u8]>) -> Result<Vec<u8>, u16>;
}

/// A [`RemoteService`] that serves a static set of files, e.g. a TeX Live
/// distribution uploaded to an HTTP server.
#[derive(Debug, Default)]
pub struct StaticFiles {
    files: Mutex<HashMap<String, Arc<Vec<u8>>>>,
}

impl StaticFiles {
    /// Creates an empty file set.
    pub fn new() -> Self {
        StaticFiles::default()
    }

    /// Adds (or replaces) a file at `path`.
    pub fn insert(&self, path: &str, data: Vec<u8>) {
        self.files.lock().insert(normalize_remote_path(path), Arc::new(data));
    }

    /// Number of files being served.
    pub fn len(&self) -> usize {
        self.files.lock().len()
    }

    /// Whether no files are being served.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All paths currently being served, sorted.
    pub fn paths(&self) -> Vec<String> {
        let mut paths: Vec<String> = self.files.lock().keys().cloned().collect();
        paths.sort();
        paths
    }
}

fn normalize_remote_path(path: &str) -> String {
    let trimmed = path.trim_start_matches('/');
    format!("/{trimmed}")
}

impl RemoteService for StaticFiles {
    fn handle(&self, path: &str, _body: Option<&[u8]>) -> Result<Vec<u8>, u16> {
        self.files
            .lock()
            .get(&normalize_remote_path(path))
            .map(|data| data.as_ref().clone())
            .ok_or(404)
    }
}

/// Statistics collected by a [`RemoteEndpoint`], used by the evaluation to
/// report how much data the lazy file system actually transferred.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteStats {
    /// Number of successful requests.
    pub requests: u64,
    /// Number of failed requests (offline or status errors).
    pub failures: u64,
    /// Total bytes of response bodies transferred.
    pub bytes_transferred: u64,
}

/// A remote server reachable over a simulated network link.
#[derive(Clone)]
pub struct RemoteEndpoint {
    service: Arc<dyn RemoteService>,
    profile: NetworkProfile,
    online: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    failures: Arc<AtomicU64>,
    bytes: Arc<AtomicU64>,
}

impl std::fmt::Debug for RemoteEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteEndpoint")
            .field("profile", &self.profile)
            .field("online", &self.is_online())
            .field("stats", &self.stats())
            .finish()
    }
}

impl RemoteEndpoint {
    /// Creates an endpoint backed by `service` over the given link profile.
    pub fn new(service: Arc<dyn RemoteService>, profile: NetworkProfile) -> Self {
        RemoteEndpoint {
            service,
            profile,
            online: Arc::new(AtomicBool::new(true)),
            requests: Arc::new(AtomicU64::new(0)),
            failures: Arc::new(AtomicU64::new(0)),
            bytes: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates an endpoint serving `files` over the given link profile.
    pub fn with_static_files(files: StaticFiles, profile: NetworkProfile) -> Self {
        RemoteEndpoint::new(Arc::new(files), profile)
    }

    /// The configured link profile.
    pub fn profile(&self) -> NetworkProfile {
        self.profile
    }

    /// Whether the endpoint is reachable.
    pub fn is_online(&self) -> bool {
        self.online.load(Ordering::SeqCst)
    }

    /// Takes the endpoint on or off line (the meme generator's "disconnected
    /// operation" scenario).
    pub fn set_online(&self, online: bool) {
        self.online.store(online, Ordering::SeqCst);
    }

    /// Performs a GET-style fetch of `path`.
    ///
    /// # Errors
    ///
    /// * [`PlatformError::NetworkUnavailable`] if the endpoint is offline.
    /// * [`PlatformError::HttpStatus`] if the service rejects the request.
    pub fn fetch(&self, path: &str) -> Result<Vec<u8>, PlatformError> {
        self.request(path, None)
    }

    /// Performs a ranged fetch of `path` — the analogue of an HTTP `Range:
    /// bytes=offset..` request.  Returns the requested slice (short or empty
    /// past the end) together with the resource's total size, as a
    /// `Content-Range` header would report it.  Only the slice is charged
    /// against the link profile and the transfer statistics, which is what
    /// makes block-granular lazy loading cheaper than whole-file fetches.
    ///
    /// # Errors
    ///
    /// * [`PlatformError::NetworkUnavailable`] if the endpoint is offline.
    /// * [`PlatformError::HttpStatus`] if the service rejects the request.
    pub fn fetch_range(&self, path: &str, offset: u64, len: usize) -> Result<(Vec<u8>, u64), PlatformError> {
        if !self.is_online() {
            self.failures.fetch_add(1, Ordering::Relaxed);
            return Err(PlatformError::NetworkUnavailable);
        }
        match self.service.handle(path, None) {
            Ok(data) => {
                let total = data.len() as u64;
                let start = (offset as usize).min(data.len());
                let end = start.saturating_add(len).min(data.len());
                let slice = data[start..end].to_vec();
                precise_delay(self.profile.transfer_cost(slice.len()));
                self.requests.fetch_add(1, Ordering::Relaxed);
                self.bytes.fetch_add(slice.len() as u64, Ordering::Relaxed);
                Ok((slice, total))
            }
            Err(status) => {
                precise_delay(self.profile.transfer_cost(0));
                self.failures.fetch_add(1, Ordering::Relaxed);
                Err(PlatformError::HttpStatus(status))
            }
        }
    }

    /// Performs a request with an optional body (POST-style).
    ///
    /// # Errors
    ///
    /// * [`PlatformError::NetworkUnavailable`] if the endpoint is offline.
    /// * [`PlatformError::HttpStatus`] if the service rejects the request.
    pub fn request(&self, path: &str, body: Option<&[u8]>) -> Result<Vec<u8>, PlatformError> {
        if !self.is_online() {
            self.failures.fetch_add(1, Ordering::Relaxed);
            return Err(PlatformError::NetworkUnavailable);
        }
        match self.service.handle(path, body) {
            Ok(data) => {
                precise_delay(self.profile.transfer_cost(data.len() + body.map_or(0, |b| b.len())));
                self.requests.fetch_add(1, Ordering::Relaxed);
                self.bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
                Ok(data)
            }
            Err(status) => {
                precise_delay(self.profile.transfer_cost(0));
                self.failures.fetch_add(1, Ordering::Relaxed);
                Err(PlatformError::HttpStatus(status))
            }
        }
    }

    /// Transfer statistics accumulated so far.
    pub fn stats(&self) -> RemoteStats {
        RemoteStats {
            requests: self.requests.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            bytes_transferred: self.bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoint_with(path: &str, data: &[u8]) -> RemoteEndpoint {
        let files = StaticFiles::new();
        files.insert(path, data.to_vec());
        RemoteEndpoint::with_static_files(files, NetworkProfile::instant())
    }

    #[test]
    fn fetch_returns_file_contents() {
        let ep = endpoint_with("/texlive/article.cls", b"\\ProvidesClass{article}");
        let data = ep.fetch("/texlive/article.cls").unwrap();
        assert_eq!(data, b"\\ProvidesClass{article}");
        assert_eq!(ep.stats().requests, 1);
        assert_eq!(ep.stats().bytes_transferred, data.len() as u64);
    }

    #[test]
    fn fetch_range_slices_and_reports_total_size() {
        let ep = endpoint_with("/blob", b"0123456789");
        let (slice, total) = ep.fetch_range("/blob", 2, 4).unwrap();
        assert_eq!(slice, b"2345");
        assert_eq!(total, 10);
        // Only the slice counts against the transfer statistics.
        assert_eq!(ep.stats().bytes_transferred, 4);
        // Past-the-end ranges come back short or empty, like Content-Range.
        let (tail, total) = ep.fetch_range("/blob", 8, 100).unwrap();
        assert_eq!(tail, b"89");
        assert_eq!(total, 10);
        let (empty, _) = ep.fetch_range("/blob", 50, 4).unwrap();
        assert!(empty.is_empty());
        assert!(matches!(
            ep.fetch_range("/nope", 0, 1),
            Err(PlatformError::HttpStatus(404))
        ));
        ep.set_online(false);
        assert!(matches!(
            ep.fetch_range("/blob", 0, 1),
            Err(PlatformError::NetworkUnavailable)
        ));
    }

    #[test]
    fn missing_file_is_a_404() {
        let ep = endpoint_with("/a", b"x");
        assert!(matches!(ep.fetch("/b"), Err(PlatformError::HttpStatus(404))));
        assert_eq!(ep.stats().failures, 1);
    }

    #[test]
    fn offline_endpoint_is_unreachable() {
        let ep = endpoint_with("/a", b"x");
        ep.set_online(false);
        assert!(matches!(ep.fetch("/a"), Err(PlatformError::NetworkUnavailable)));
        ep.set_online(true);
        assert!(ep.fetch("/a").is_ok());
    }

    #[test]
    fn paths_are_normalized() {
        let files = StaticFiles::new();
        files.insert("no/leading/slash.txt", b"1".to_vec());
        assert_eq!(files.len(), 1);
        assert!(!files.is_empty());
        let ep = RemoteEndpoint::with_static_files(files, NetworkProfile::instant());
        assert!(ep.fetch("/no/leading/slash.txt").is_ok());
        assert!(ep.fetch("no/leading/slash.txt").is_ok());
    }

    #[test]
    fn transfer_cost_scales_with_size_and_latency() {
        let profile = NetworkProfile::ec2();
        let small = profile.transfer_cost(100);
        let large = profile.transfer_cost(10_000_000);
        assert!(large > small);
        assert!(small >= profile.round_trip);
        assert_eq!(NetworkProfile::instant().transfer_cost(10_000_000), Duration::ZERO);
    }

    #[test]
    fn custom_service_handles_posts() {
        struct Upper;
        impl RemoteService for Upper {
            fn handle(&self, path: &str, body: Option<&[u8]>) -> Result<Vec<u8>, u16> {
                if path != "/upper" {
                    return Err(404);
                }
                let body = body.ok_or(400u16)?;
                Ok(body.to_ascii_uppercase())
            }
        }
        let ep = RemoteEndpoint::new(Arc::new(Upper), NetworkProfile::instant());
        assert_eq!(ep.request("/upper", Some(b"meme")).unwrap(), b"MEME");
        assert!(matches!(
            ep.request("/upper", None),
            Err(PlatformError::HttpStatus(400))
        ));
    }

    #[test]
    fn static_files_listing_is_sorted() {
        let files = StaticFiles::new();
        files.insert("/b", vec![2]);
        files.insert("/a", vec![1]);
        assert_eq!(files.paths(), vec!["/a".to_string(), "/b".to_string()]);
    }
}
