//! # browsix-browser — a simulated browser platform
//!
//! The Browsix paper builds a Unix kernel *inside* a web browser, on top of the
//! handful of primitives the web platform offers: Web Workers, `postMessage`
//! with structured-clone copy semantics, `SharedArrayBuffer` + `Atomics`, blob
//! URLs, and `XMLHttpRequest`-style access to remote servers.
//!
//! This crate recreates that platform as a Rust substrate so the rest of the
//! repository can faithfully reproduce the paper's architecture and its
//! performance characteristics:
//!
//! * [`worker`] — Web Workers as OS threads that can *only* communicate with
//!   the context that spawned them via message passing.
//! * [`message`] — the structured-clone value model; every message crossing a
//!   worker boundary is deep-copied, and the copy cost is charged according to
//!   the configured [`PlatformConfig`].
//! * [`sab`] — `SharedArrayBuffer` plus `Atomics::wait`/`Atomics::notify`,
//!   which the synchronous system-call convention depends on.
//! * [`blob`] — blob URLs, used by the kernel to start workers from files that
//!   only exist inside the Browsix file system.
//! * [`net`] — a simulated remote HTTP endpoint with a configurable
//!   round-trip-time and bandwidth model (the "TeX Live over HTTP" and
//!   "meme server on EC2" substitutes).
//! * [`time`] — precise delay injection used by the calibrated cost models.
//!
//! # Example
//!
//! ```
//! use browsix_browser::{PlatformConfig, Message};
//! use browsix_browser::worker::{Worker, WorkerScript, WorkerScope};
//!
//! struct Echo;
//! impl WorkerScript for Echo {
//!     fn run(self: Box<Self>, scope: WorkerScope) {
//!         while let Ok(msg) = scope.recv() {
//!             if scope.post_message(msg).is_err() {
//!                 break;
//!             }
//!         }
//!     }
//! }
//!
//! let cfg = PlatformConfig::fast();
//! let worker = Worker::spawn(&cfg, "echo", Box::new(Echo));
//! worker.post_message(Message::from("hello")).unwrap();
//! let reply = worker.recv().unwrap();
//! assert_eq!(reply.as_str(), Some("hello"));
//! worker.terminate();
//! ```

pub mod blob;
pub mod config;
pub mod error;
pub mod message;
pub mod net;
pub mod sab;
pub mod time;
pub mod worker;

pub use blob::BlobRegistry;
pub use config::{BrowserKind, PlatformConfig};
pub use error::PlatformError;
pub use message::Message;
pub use net::{NetworkProfile, RemoteEndpoint, RemoteService, StaticFiles};
pub use sab::{AtomicsWaitResult, SharedArrayBuffer};
pub use worker::{Worker, WorkerScope, WorkerScript};
