//! Platform configuration: which browser is being simulated and how expensive
//! its message-passing primitives are.

use std::time::Duration;

/// The browser being simulated.
///
/// The paper evaluates Browsix in Google Chrome and Mozilla Firefox; at
/// publication time only Chrome (behind flags) supported the
/// `SharedArrayBuffer`/`Atomics` features required by synchronous system
/// calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BrowserKind {
    /// Google Chrome (supports shared memory behind flags).
    #[default]
    Chrome,
    /// Mozilla Firefox (asynchronous system calls only).
    Firefox,
    /// Microsoft Edge (asynchronous system calls only).
    Edge,
    /// A "headless" configuration with no artificial overheads, used by unit
    /// tests that only care about functional behaviour.
    Headless,
}

impl BrowserKind {
    /// Human-readable name, as used in the tables of EXPERIMENTS.md.
    pub fn name(&self) -> &'static str {
        match self {
            BrowserKind::Chrome => "Google Chrome",
            BrowserKind::Firefox => "Mozilla Firefox",
            BrowserKind::Edge => "Microsoft Edge",
            BrowserKind::Headless => "Headless",
        }
    }
}

/// Cost model and feature flags for the simulated browser platform.
///
/// The two numbers that matter most for reproducing the paper's evaluation are
/// the `postMessage` round-trip overhead (the paper observes that message
/// passing is roughly three orders of magnitude slower than a native system
/// call) and the structured-clone cost per byte (asynchronous system calls copy
/// every buffer between the process and kernel heaps).
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformConfig {
    /// Which browser is being simulated.
    pub browser: BrowserKind,
    /// Whether `SharedArrayBuffer`/`Atomics` are available (required by the
    /// synchronous system-call convention).
    pub shared_memory: bool,
    /// Fixed cost charged for every `postMessage` crossing a worker boundary.
    pub post_message_latency: Duration,
    /// Structured-clone cost, in nanoseconds per byte of payload.
    pub structured_clone_ns_per_byte: u32,
    /// Whether delays from the cost model are actually injected (spin/sleep).
    /// Unit tests disable this so the suite stays fast; benchmarks enable it.
    pub inject_delays: bool,
}

impl PlatformConfig {
    /// Google Chrome with shared memory enabled (the paper's "synchronous
    /// system calls" configuration, launched with extra flags).
    pub fn chrome() -> Self {
        PlatformConfig {
            browser: BrowserKind::Chrome,
            shared_memory: true,
            post_message_latency: Duration::from_micros(45),
            structured_clone_ns_per_byte: 2,
            inject_delays: true,
        }
    }

    /// Mozilla Firefox: no shared memory, slightly cheaper message passing
    /// (the paper measures faster in-Browsix HTTP requests in Firefox than in
    /// Chrome: 6 ms vs 9 ms for the list-backgrounds request).
    pub fn firefox() -> Self {
        PlatformConfig {
            browser: BrowserKind::Firefox,
            shared_memory: false,
            post_message_latency: Duration::from_micros(30),
            structured_clone_ns_per_byte: 2,
            inject_delays: true,
        }
    }

    /// Microsoft Edge: asynchronous system calls only.
    pub fn edge() -> Self {
        PlatformConfig {
            browser: BrowserKind::Edge,
            shared_memory: false,
            post_message_latency: Duration::from_micros(60),
            structured_clone_ns_per_byte: 3,
            inject_delays: true,
        }
    }

    /// A configuration with no injected overheads, for functional tests.
    pub fn fast() -> Self {
        PlatformConfig {
            browser: BrowserKind::Headless,
            shared_memory: true,
            post_message_latency: Duration::ZERO,
            structured_clone_ns_per_byte: 0,
            inject_delays: false,
        }
    }

    /// The cost of posting a message with `payload_bytes` of structured-clone
    /// payload across a worker boundary.
    pub fn post_cost(&self, payload_bytes: usize) -> Duration {
        if !self.inject_delays {
            return Duration::ZERO;
        }
        let clone_ns = self.structured_clone_ns_per_byte as u64 * payload_bytes as u64;
        self.post_message_latency + Duration::from_nanos(clone_ns)
    }

    /// Returns a copy of this configuration with delay injection disabled.
    pub fn without_delays(mut self) -> Self {
        self.inject_delays = false;
        self
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig::chrome()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_supports_shared_memory_firefox_does_not() {
        assert!(PlatformConfig::chrome().shared_memory);
        assert!(!PlatformConfig::firefox().shared_memory);
        assert!(!PlatformConfig::edge().shared_memory);
    }

    #[test]
    fn fast_config_charges_nothing() {
        let cfg = PlatformConfig::fast();
        assert_eq!(cfg.post_cost(1_000_000), Duration::ZERO);
    }

    #[test]
    fn post_cost_scales_with_payload() {
        let cfg = PlatformConfig::chrome();
        let small = cfg.post_cost(16);
        let big = cfg.post_cost(1 << 20);
        assert!(big > small);
        assert!(small >= cfg.post_message_latency);
    }

    #[test]
    fn without_delays_turns_off_injection() {
        let cfg = PlatformConfig::chrome().without_delays();
        assert_eq!(cfg.post_cost(4096), Duration::ZERO);
        assert_eq!(cfg.browser, BrowserKind::Chrome);
    }

    #[test]
    fn browser_names_are_distinct() {
        let names: std::collections::HashSet<_> = [
            BrowserKind::Chrome,
            BrowserKind::Firefox,
            BrowserKind::Edge,
            BrowserKind::Headless,
        ]
        .iter()
        .map(|b| b.name())
        .collect();
        assert_eq!(names.len(), 4);
    }
}
