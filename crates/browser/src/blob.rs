//! Blob URLs.
//!
//! The `Worker` constructor in a real browser takes a URL to a JavaScript
//! file.  Files inside the Browsix file system do not correspond to files on a
//! web server (they may have been produced by other Browsix processes), so the
//! kernel wraps the executable's bytes in a `Blob`, asks the browser for a
//! dynamically generated `blob:` URL, and starts the worker from that URL.
//! [`BlobRegistry`] reproduces that mechanism.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::PlatformError;

/// A registry of dynamically created blob URLs, shared between the kernel and
/// the workers it spawns.
#[derive(Debug, Default, Clone)]
pub struct BlobRegistry {
    inner: Arc<BlobRegistryInner>,
}

#[derive(Debug, Default)]
struct BlobRegistryInner {
    next_id: AtomicU64,
    blobs: Mutex<HashMap<String, Arc<Vec<u8>>>>,
}

impl BlobRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        BlobRegistry::default()
    }

    /// Registers `data` and returns a fresh `blob:` URL for it, mirroring
    /// `URL.createObjectURL(new Blob([...]))`.
    pub fn create_url(&self, data: Vec<u8>) -> String {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let url = format!("blob:browsix/{id:016x}");
        self.inner.blobs.lock().insert(url.clone(), Arc::new(data));
        url
    }

    /// Resolves a previously created blob URL.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownBlobUrl`] if the URL was never created
    /// or has been revoked.
    pub fn resolve(&self, url: &str) -> Result<Arc<Vec<u8>>, PlatformError> {
        self.inner
            .blobs
            .lock()
            .get(url)
            .cloned()
            .ok_or_else(|| PlatformError::UnknownBlobUrl(url.to_owned()))
    }

    /// Revokes a blob URL, mirroring `URL.revokeObjectURL`.  Revoking an
    /// unknown URL is a no-op, as in the browser.
    pub fn revoke(&self, url: &str) {
        self.inner.blobs.lock().remove(url);
    }

    /// Number of currently registered blobs.
    pub fn len(&self) -> usize {
        self.inner.blobs.lock().len()
    }

    /// Whether the registry holds no blobs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_resolve_round_trip() {
        let registry = BlobRegistry::new();
        let url = registry.create_url(b"#!/usr/bin/env node".to_vec());
        assert!(url.starts_with("blob:browsix/"));
        let data = registry.resolve(&url).unwrap();
        assert_eq!(&data[..], b"#!/usr/bin/env node");
    }

    #[test]
    fn urls_are_unique() {
        let registry = BlobRegistry::new();
        let a = registry.create_url(vec![1]);
        let b = registry.create_url(vec![1]);
        assert_ne!(a, b);
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn revoke_makes_url_unresolvable() {
        let registry = BlobRegistry::new();
        let url = registry.create_url(vec![42]);
        registry.revoke(&url);
        assert!(matches!(registry.resolve(&url), Err(PlatformError::UnknownBlobUrl(_))));
        assert!(registry.is_empty());
        // Revoking again is a no-op.
        registry.revoke(&url);
    }

    #[test]
    fn registry_is_shared_between_clones() {
        let registry = BlobRegistry::new();
        let clone = registry.clone();
        let url = registry.create_url(vec![7]);
        assert_eq!(clone.resolve(&url).unwrap()[..], [7]);
    }
}
