//! The structured-clone value model used for all cross-worker communication.
//!
//! Web Workers cannot share memory (other than `SharedArrayBuffer`): every
//! `postMessage` payload is serialized with the structured-clone algorithm and
//! deep-copied into the receiving context's heap.  Browsix's asynchronous
//! system calls therefore copy every argument buffer twice — once into the
//! kernel and once back — which is one of the reasons synchronous system calls
//! are so much faster.  [`Message`] captures that model: it is a deep-copyable
//! value tree whose [`Message::byte_size`] drives the clone-cost model.

use std::collections::BTreeMap;

use crate::sab::SharedArrayBuffer;

/// A structured-clone-able value, the only kind of data that may cross a
/// worker boundary.
///
/// The variants mirror the subset of JavaScript values Browsix actually
/// exchanges: numbers, strings, byte buffers (`ArrayBuffer`s), arrays and
/// string-keyed maps.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Message {
    /// `null` / `undefined`.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A JavaScript number restricted to integral values (Browsix passes file
    /// descriptors, lengths, offsets and error codes this way).
    Int(i64),
    /// A floating-point number (timestamps).
    Float(f64),
    /// A string.
    Str(String),
    /// A byte buffer (the analogue of an `ArrayBuffer`/`Uint8Array`).
    Bytes(Vec<u8>),
    /// An array of values.
    Array(Vec<Message>),
    /// A string-keyed map (the analogue of a plain JavaScript object).
    Map(BTreeMap<String, Message>),
    /// A `SharedArrayBuffer` handle.  Unlike every other variant it is NOT
    /// deep-copied by the structured-clone algorithm: the receiving context
    /// gets another handle to the same memory, which is how the kernel hands
    /// a `MAP_SHARED` mapping to a process.
    Shared(SharedArrayBuffer),
}

impl Message {
    /// Deep-copies this value, exactly as the structured-clone algorithm does.
    ///
    /// The copy itself is what `Clone` already provides; this method exists to
    /// make call sites read like the browser API they are standing in for.
    pub fn structured_clone(&self) -> Message {
        self.clone()
    }

    /// The approximate number of payload bytes the structured-clone algorithm
    /// would have to serialize for this value.  Used by
    /// [`PlatformConfig::post_cost`](crate::PlatformConfig::post_cost).
    pub fn byte_size(&self) -> usize {
        match self {
            Message::Null => 1,
            Message::Bool(_) => 1,
            Message::Int(_) => 8,
            Message::Float(_) => 8,
            Message::Str(s) => 8 + s.len(),
            Message::Bytes(b) => 8 + b.len(),
            Message::Array(items) => 8 + items.iter().map(Message::byte_size).sum::<usize>(),
            Message::Map(map) => 8 + map.iter().map(|(k, v)| 8 + k.len() + v.byte_size()).sum::<usize>(),
            // Only the handle crosses the boundary; the memory is shared,
            // never serialized.
            Message::Shared(_) => 8,
        }
    }

    /// Builds an empty map value.
    pub fn map() -> Message {
        Message::Map(BTreeMap::new())
    }

    /// Inserts `value` under `key`, turning `self` into a map if necessary.
    ///
    /// Returns `self` for chaining, builder style.
    pub fn with(mut self, key: &str, value: impl Into<Message>) -> Message {
        if !matches!(self, Message::Map(_)) {
            self = Message::map();
        }
        if let Message::Map(ref mut map) = self {
            map.insert(key.to_owned(), value.into());
        }
        self
    }

    /// Looks up `key` if this value is a map.
    pub fn get(&self, key: &str) -> Option<&Message> {
        match self {
            Message::Map(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Message::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this value is an integer (or a bool).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Message::Int(n) => Some(*n),
            Message::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// The float payload, accepting integers as well.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Message::Float(x) => Some(*x),
            Message::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The byte payload, if this value is a byte buffer.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Message::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// The array payload, if this value is an array.
    pub fn as_array(&self) -> Option<&[Message]> {
        match self {
            Message::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience accessor: `self.get(key)` as a string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Message::as_str)
    }

    /// Convenience accessor: `self.get(key)` as an integer.
    pub fn get_int(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(Message::as_int)
    }

    /// Convenience accessor: `self.get(key)` as bytes.
    pub fn get_bytes(&self, key: &str) -> Option<&[u8]> {
        self.get(key).and_then(Message::as_bytes)
    }

    /// The shared-buffer payload, if this value is a `SharedArrayBuffer`.
    pub fn as_shared(&self) -> Option<&SharedArrayBuffer> {
        match self {
            Message::Shared(sab) => Some(sab),
            _ => None,
        }
    }

    /// Convenience accessor: `self.get(key)` as a shared buffer.
    pub fn get_shared(&self, key: &str) -> Option<&SharedArrayBuffer> {
        self.get(key).and_then(Message::as_shared)
    }
}

impl From<&str> for Message {
    fn from(value: &str) -> Self {
        Message::Str(value.to_owned())
    }
}

impl From<String> for Message {
    fn from(value: String) -> Self {
        Message::Str(value)
    }
}

impl From<i64> for Message {
    fn from(value: i64) -> Self {
        Message::Int(value)
    }
}

impl From<i32> for Message {
    fn from(value: i32) -> Self {
        Message::Int(value as i64)
    }
}

impl From<usize> for Message {
    fn from(value: usize) -> Self {
        Message::Int(value as i64)
    }
}

impl From<bool> for Message {
    fn from(value: bool) -> Self {
        Message::Bool(value)
    }
}

impl From<f64> for Message {
    fn from(value: f64) -> Self {
        Message::Float(value)
    }
}

impl From<Vec<u8>> for Message {
    fn from(value: Vec<u8>) -> Self {
        Message::Bytes(value)
    }
}

impl From<&[u8]> for Message {
    fn from(value: &[u8]) -> Self {
        Message::Bytes(value.to_vec())
    }
}

impl From<Vec<Message>> for Message {
    fn from(value: Vec<Message>) -> Self {
        Message::Array(value)
    }
}

impl From<Vec<String>> for Message {
    fn from(value: Vec<String>) -> Self {
        Message::Array(value.into_iter().map(Message::Str).collect())
    }
}

impl From<SharedArrayBuffer> for Message {
    fn from(value: SharedArrayBuffer) -> Self {
        Message::Shared(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors_round_trip() {
        let msg = Message::map()
            .with("op", "open")
            .with("fd", 3i64)
            .with("data", vec![1u8, 2, 3])
            .with("ok", true);
        assert_eq!(msg.get_str("op"), Some("open"));
        assert_eq!(msg.get_int("fd"), Some(3));
        assert_eq!(msg.get_bytes("data"), Some(&[1u8, 2, 3][..]));
        assert_eq!(msg.get_int("ok"), Some(1));
        assert_eq!(msg.get("missing"), None);
    }

    #[test]
    fn with_on_non_map_replaces_value() {
        let msg = Message::Int(7).with("k", 1i64);
        assert_eq!(msg.get_int("k"), Some(1));
    }

    #[test]
    fn byte_size_counts_payloads() {
        let empty = Message::Null.byte_size();
        let bytes = Message::Bytes(vec![0u8; 1000]).byte_size();
        assert!(bytes >= 1000);
        assert!(empty < 16);

        let nested = Message::Array(vec![Message::Bytes(vec![0u8; 500]), Message::from("abc")]);
        assert!(nested.byte_size() >= 503);
    }

    #[test]
    fn structured_clone_is_deep() {
        let original = Message::map().with("buf", vec![9u8; 64]);
        let copy = original.structured_clone();
        assert_eq!(original, copy);
        // Mutating the copy must not affect the original.
        if let Message::Map(mut map) = copy {
            map.insert("buf".into(), Message::Bytes(vec![0u8; 1]));
            let mutated = Message::Map(map);
            assert_ne!(mutated, original);
        }
    }

    #[test]
    fn numeric_conversions() {
        assert_eq!(Message::from(5i32).as_int(), Some(5));
        assert_eq!(Message::from(5usize).as_int(), Some(5));
        assert_eq!(Message::from(2.5f64).as_float(), Some(2.5));
        assert_eq!(Message::Int(2).as_float(), Some(2.0));
        assert_eq!(Message::from("x").as_int(), None);
    }

    #[test]
    fn array_accessor() {
        let arr = Message::from(vec![Message::Int(1), Message::Int(2)]);
        assert_eq!(arr.as_array().unwrap().len(), 2);
        assert_eq!(Message::Null.as_array(), None);
    }

    #[test]
    fn shared_buffers_cross_by_handle() {
        let sab = SharedArrayBuffer::new(64);
        let msg = Message::map().with("sab", sab.clone());
        // The "clone" the receiving context gets aliases the same memory.
        let received = msg.structured_clone();
        let handle = received.get_shared("sab").unwrap();
        assert!(handle.same_buffer(&sab));
        sab.store_i32(0, 42).unwrap();
        assert_eq!(handle.load_i32(0).unwrap(), 42);
        // Equality is handle identity, and the clone cost is O(1).
        assert_eq!(msg.get("sab"), received.get("sab"));
        assert!(Message::Shared(sab).byte_size() < 16);
        assert_eq!(Message::Null.as_shared(), None);
    }

    #[test]
    fn string_vector_conversion() {
        let arr = Message::from(vec!["a".to_string(), "b".to_string()]);
        let items = arr.as_array().unwrap();
        assert_eq!(items[0].as_str(), Some("a"));
        assert_eq!(items[1].as_str(), Some("b"));
    }
}
