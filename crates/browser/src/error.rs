//! Error type for the simulated browser platform.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the simulated browser platform.
///
/// These map onto the failure modes a real web application would observe:
/// a worker that has been terminated, a network request that failed, a blob
/// URL that does not resolve, or an out-of-bounds shared-memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// The worker on the other end of a message port is gone.
    WorkerTerminated,
    /// The network is unreachable (offline mode) for a simulated remote fetch.
    NetworkUnavailable,
    /// The simulated remote server answered with a non-success status code.
    HttpStatus(u16),
    /// A blob URL did not resolve to a registered blob.
    UnknownBlobUrl(String),
    /// A `SharedArrayBuffer` access was out of bounds.
    OutOfBounds { offset: usize, len: usize, capacity: usize },
    /// Shared memory (`SharedArrayBuffer`/`Atomics`) is not available in the
    /// configured browser (e.g. Firefox at the paper's publication time).
    SharedMemoryUnsupported,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::WorkerTerminated => write!(f, "worker has been terminated"),
            PlatformError::NetworkUnavailable => write!(f, "network is unavailable"),
            PlatformError::HttpStatus(code) => write!(f, "remote server returned status {code}"),
            PlatformError::UnknownBlobUrl(url) => write!(f, "unknown blob url: {url}"),
            PlatformError::OutOfBounds { offset, len, capacity } => write!(
                f,
                "shared buffer access out of bounds: offset {offset} len {len} capacity {capacity}"
            ),
            PlatformError::SharedMemoryUnsupported => {
                write!(f, "shared memory is not supported by this browser configuration")
            }
        }
    }
}

impl Error for PlatformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            PlatformError::WorkerTerminated,
            PlatformError::NetworkUnavailable,
            PlatformError::HttpStatus(503),
            PlatformError::UnknownBlobUrl("blob:browsix/1".into()),
            PlatformError::OutOfBounds {
                offset: 10,
                len: 4,
                capacity: 8,
            },
            PlatformError::SharedMemoryUnsupported,
        ];
        for err in errors {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlatformError>();
    }
}
