//! Tokenizing shell input.

use std::error::Error;
use std::fmt;

/// A shell token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A word (command name, argument, or assignment), with quoting resolved
    /// but `$` expansions left for the execution phase.
    Word(String),
    /// `|`
    Pipe,
    /// `&&`
    AndIf,
    /// `||`
    OrIf,
    /// `;`
    Semi,
    /// `&`
    Background,
    /// `<`
    RedirectIn,
    /// `>`
    RedirectOut,
    /// `>>`
    RedirectAppend,
    /// `2>`
    RedirectErr,
    /// End of one line of input.
    Newline,
}

/// Placeholder character used to mark a `$` that quoting made literal; the
/// expansion phase turns it back into a plain dollar sign.
pub const LITERAL_DOLLAR: char = '\u{1}';

/// A tokenizer error (unterminated quoting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error: {}", self.message)
    }
}

impl Error for LexError {}

/// Splits `input` into tokens.  Single quotes suppress all expansion, double
/// quotes preserve spaces but allow `$` expansion (performed later), and `#`
/// starts a comment.
///
/// # Errors
///
/// Returns a [`LexError`] for unterminated quotes.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    let mut word = String::new();
    let mut has_word = false;

    macro_rules! flush_word {
        () => {
            if has_word {
                tokens.push(Token::Word(std::mem::take(&mut word)));
                has_word = false;
            }
        };
    }

    while let Some(c) = chars.next() {
        match c {
            ' ' | '\t' => flush_word!(),
            '\n' => {
                flush_word!();
                tokens.push(Token::Newline);
            }
            '#' if !has_word => {
                // Comment until end of line.
                for next in chars.by_ref() {
                    if next == '\n' {
                        tokens.push(Token::Newline);
                        break;
                    }
                }
            }
            '\'' => {
                has_word = true;
                let mut closed = false;
                for next in chars.by_ref() {
                    if next == '\'' {
                        closed = true;
                        break;
                    }
                    // Mark `$` as literal so the expansion phase leaves it be.
                    if next == '$' {
                        word.push(LITERAL_DOLLAR);
                    } else {
                        word.push(next);
                    }
                }
                if !closed {
                    return Err(LexError {
                        message: "unterminated single quote".into(),
                    });
                }
            }
            '"' => {
                has_word = true;
                let mut closed = false;
                while let Some(next) = chars.next() {
                    match next {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => {
                            if let Some(escaped) = chars.next() {
                                match escaped {
                                    '$' => word.push(LITERAL_DOLLAR),
                                    '"' | '\\' => word.push(escaped),
                                    other => {
                                        word.push('\\');
                                        word.push(other);
                                    }
                                }
                            }
                        }
                        other => word.push(other),
                    }
                }
                if !closed {
                    return Err(LexError {
                        message: "unterminated double quote".into(),
                    });
                }
            }
            '\\' => {
                if let Some(escaped) = chars.next() {
                    if escaped != '\n' {
                        has_word = true;
                        if escaped == '$' {
                            word.push(LITERAL_DOLLAR);
                        } else {
                            word.push(escaped);
                        }
                    }
                }
            }
            '|' => {
                flush_word!();
                if chars.peek() == Some(&'|') {
                    chars.next();
                    tokens.push(Token::OrIf);
                } else {
                    tokens.push(Token::Pipe);
                }
            }
            '&' => {
                flush_word!();
                if chars.peek() == Some(&'&') {
                    chars.next();
                    tokens.push(Token::AndIf);
                } else {
                    tokens.push(Token::Background);
                }
            }
            ';' => {
                flush_word!();
                tokens.push(Token::Semi);
            }
            '<' => {
                flush_word!();
                tokens.push(Token::RedirectIn);
            }
            '>' => {
                flush_word!();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    tokens.push(Token::RedirectAppend);
                } else {
                    tokens.push(Token::RedirectOut);
                }
            }
            '2' if !has_word && chars.peek() == Some(&'>') => {
                chars.next();
                flush_word!();
                tokens.push(Token::RedirectErr);
            }
            other => {
                has_word = true;
                word.push(other);
            }
        }
    }
    if has_word {
        tokens.push(Token::Word(word));
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_pipeline_with_redirect() {
        let tokens = tokenize("cat file.txt | grep apple > apples.txt").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Word("cat".into()),
                Token::Word("file.txt".into()),
                Token::Pipe,
                Token::Word("grep".into()),
                Token::Word("apple".into()),
                Token::RedirectOut,
                Token::Word("apples.txt".into()),
            ]
        );
    }

    #[test]
    fn operators_and_background() {
        let tokens = tokenize("make && echo ok || echo bad; sleep &").unwrap();
        assert!(tokens.contains(&Token::AndIf));
        assert!(tokens.contains(&Token::OrIf));
        assert!(tokens.contains(&Token::Semi));
        assert!(tokens.contains(&Token::Background));
        let tokens = tokenize("wc >> out.txt 2> err.txt").unwrap();
        assert!(tokens.contains(&Token::RedirectAppend));
        assert!(tokens.contains(&Token::RedirectErr));
    }

    #[test]
    fn quoting_rules() {
        let tokens = tokenize("echo 'single $VAR' \"double $VAR\" plain\\ space").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Word("echo".into()),
                // Single quotes make the `$` literal (marked for the expander).
                Token::Word(format!("single {LITERAL_DOLLAR}VAR")),
                Token::Word("double $VAR".into()),
                Token::Word("plain space".into()),
            ]
        );
        assert!(tokenize("echo 'unterminated").is_err());
        assert!(tokenize("echo \"unterminated").is_err());
    }

    #[test]
    fn comments_and_newlines() {
        let tokens = tokenize("echo hi # comment\necho bye").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Word("echo".into()),
                Token::Word("hi".into()),
                Token::Newline,
                Token::Word("echo".into()),
                Token::Word("bye".into()),
            ]
        );
    }

    #[test]
    fn stderr_redirect_only_outside_words() {
        // "file2>out" is a word "file2", then '>' 'out'; but "2>" at word start
        // is a stderr redirect.
        let tokens = tokenize("cmd file2 > out").unwrap();
        assert_eq!(tokens[1], Token::Word("file2".into()));
        let tokens = tokenize("cmd 2> err.log").unwrap();
        assert!(tokens.contains(&Token::RedirectErr));
    }
}
