//! # browsix-shell — a dash-like POSIX shell
//!
//! The Browsix terminal case study compiles the Debian Almquist shell (dash)
//! to JavaScript and runs it as a Browsix process, so developers can "pipe
//! programs together (e.g. `cat file.txt | grep apple > apples.txt`), execute
//! programs in a subshell in the background with `&`, run shell scripts, and
//! change environment variables".
//!
//! This crate is the equivalent shell for the Rust reproduction: a POSIX
//! subset covering exactly those features — pipelines, `&&`/`||`/`;` lists,
//! background jobs, input/output/append redirection, variables and `$VAR`
//! expansion, globbing, quoting and the usual builtins — written as a guest
//! program so it runs under the native baselines and as a Browsix process
//! (where it is registered as the `sh`/`dash` interpreter for shebang
//! scripts).
//!
//! ```
//! use browsix_shell::lexer::tokenize;
//! let tokens = tokenize("cat file.txt | grep apple > apples.txt").unwrap();
//! assert_eq!(tokens.len(), 7);
//! ```

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;

use browsix_runtime::{guest, GuestFactory};

pub use ast::{Command, ListOp, Pipeline, Redirect, ScriptList};
pub use exec::Shell;
pub use lexer::{tokenize, Token};
pub use parser::parse_script;

/// A factory for the shell as a guest program.
///
/// Invocation forms, mirroring dash:
/// * `sh -c "command line"` — run one command line;
/// * `sh script.sh [args...]` — run a script from the file system;
/// * `sh` — read commands from standard input (what the terminal does).
pub fn shell_program() -> GuestFactory {
    guest("sh", |env| {
        let args = env.args();
        let mut shell = Shell::new();
        // Skip over an interpreter prefix such as "/bin/sh" inserted by
        // shebang resolution.
        let rest: Vec<String> = args.iter().skip(1).cloned().collect();
        if rest.first().map(|a| a == "-c").unwrap_or(false) {
            let command = rest.get(1).cloned().unwrap_or_default();
            return shell.run_source(env, &command);
        }
        if let Some(script_path) = rest.first() {
            if !script_path.starts_with('-') {
                return match env.read_file(script_path) {
                    Ok(source) => {
                        shell.set_positional(&rest[1..]);
                        shell.run_source(env, &String::from_utf8_lossy(&source))
                    }
                    Err(e) => {
                        env.eprint(&format!("sh: {script_path}: {e}\n"));
                        127
                    }
                };
            }
        }
        // Interactive / piped-stdin mode.
        let input = env.read_stdin_to_end();
        shell.run_source(env, &String::from_utf8_lossy(&input))
    })
}

/// Registers the shell at `/bin/sh` and `/bin/dash` in a kernel registry and
/// as the `sh`/`dash` interpreters for shebang scripts.  The shell is a C
/// program in the paper, so it runs under the Emscripten launcher.
pub fn register_browsix(registry: &browsix_core::ExecutableRegistry, profile: browsix_runtime::ExecutionProfile) {
    use browsix_runtime::{EmscriptenLauncher, EmscriptenMode};
    use std::sync::Arc;
    let launcher =
        Arc::new(EmscriptenLauncher::new("dash", shell_program(), EmscriptenMode::Emterpreter).with_profile(profile));
    registry.register(
        "/bin/sh",
        Arc::clone(&launcher) as Arc<dyn browsix_core::ProgramLauncher>,
    );
    registry.register(
        "/bin/dash",
        Arc::clone(&launcher) as Arc<dyn browsix_core::ProgramLauncher>,
    );
    registry.register_interpreter("sh", Arc::clone(&launcher) as Arc<dyn browsix_core::ProgramLauncher>);
    registry.register_interpreter("dash", launcher as Arc<dyn browsix_core::ProgramLauncher>);
}

/// Registers the shell in a native-world program table.
pub fn register_native(table: &browsix_runtime::ProgramTable) {
    table.register("/bin/sh", shell_program());
    table.register("/bin/dash", shell_program());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_installs_sh_and_dash() {
        let registry = browsix_core::ExecutableRegistry::new();
        register_browsix(
            &registry,
            browsix_runtime::ExecutionProfile::instant(browsix_runtime::SyscallConvention::Async),
        );
        assert!(registry.lookup("/bin/sh").is_some());
        assert!(registry.lookup("/bin/dash").is_some());
        assert!(registry.lookup_interpreter("sh").is_some());

        let table = browsix_runtime::ProgramTable::new();
        register_native(&table);
        assert!(table.lookup("sh").is_some());
    }
}
