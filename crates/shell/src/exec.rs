//! Executing parsed scripts: expansion, builtins, pipelines, redirection and
//! job control (background jobs, `jobs`/`fg`/`bg`, foreground process
//! groups).

use std::collections::HashMap;

use browsix_core::{Signal, WNOHANG, WUNTRACED};
use browsix_fs::OpenFlags;
use browsix_runtime::{RuntimeEnv, SpawnStdio, WaitedChild};

use crate::ast::{Command, ListOp, Pipeline, Redirect};
use crate::parser::parse_script;

/// How far along a job is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// At least one member is running.
    Running,
    /// Suspended by a job-control stop signal.
    Stopped,
    /// Every member has exited; the status is the last member's.
    Done(i32),
}

/// One pipeline under job control: every member shares a process group, so
/// `Ctrl-C`, `fg`, `bg` and `kill -PGID` address the whole pipeline at once.
#[derive(Debug, Clone)]
pub struct Job {
    /// Job number, as printed by `jobs` (`[1]`, `[2]`, ...).
    pub id: usize,
    /// The process group every member was moved into (the first member's
    /// pid, following the usual shell convention).
    pub pgid: u32,
    /// Members that have not been reaped yet.
    pub pids: Vec<u32>,
    /// The command line, for `jobs` output.
    pub cmdline: String,
    /// Current state.
    pub state: JobState,
}

/// The shell interpreter state: variables, the last exit status, positional
/// parameters and the job table.
#[derive(Debug, Default)]
pub struct Shell {
    vars: HashMap<String, String>,
    positional: Vec<String>,
    last_status: i32,
    jobs: Vec<Job>,
    next_job_id: usize,
    last_background_pid: Option<u32>,
    exited: Option<i32>,
}

impl Shell {
    /// Creates a fresh shell.
    pub fn new() -> Shell {
        Shell::default()
    }

    /// Sets the positional parameters (`$1`, `$2`, ... in scripts).
    pub fn set_positional(&mut self, args: &[String]) {
        self.positional = args.to_vec();
    }

    /// Sets a shell variable.
    pub fn set_var(&mut self, name: &str, value: &str) {
        self.vars.insert(name.to_owned(), value.to_owned());
    }

    /// Looks up a shell variable (not the environment).
    pub fn var(&self, name: &str) -> Option<&str> {
        self.vars.get(name).map(|s| s.as_str())
    }

    /// The job table (background and stopped pipelines).
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Pids of jobs started with `&` that have not been reaped yet.
    pub fn background_jobs(&self) -> Vec<u32> {
        self.jobs
            .iter()
            .filter(|job| !matches!(job.state, JobState::Done(_)))
            .flat_map(|job| job.pids.iter().copied())
            .collect()
    }

    /// Parses and runs `source`, returning the exit status of the last
    /// command (or 2 for a syntax error, like dash).
    pub fn run_source(&mut self, env: &mut dyn RuntimeEnv, source: &str) -> i32 {
        let script = match parse_script(source) {
            Ok(script) => script,
            Err(e) => {
                env.eprint(&format!("sh: {e}\n"));
                return 2;
            }
        };
        for (op, pipeline) in &script.entries {
            if self.exited.is_some() {
                break;
            }
            let should_run = match op {
                ListOp::Always => true,
                ListOp::AndIf => self.last_status == 0,
                ListOp::OrIf => self.last_status != 0,
            };
            if !should_run {
                continue;
            }
            self.last_status = self.run_pipeline(env, pipeline);
        }
        self.exited.unwrap_or(self.last_status)
    }

    // ---- expansion -----------------------------------------------------------

    fn expand_word(&self, env: &dyn RuntimeEnv, word: &str) -> String {
        let mut out = String::new();
        let mut chars = word.chars().peekable();
        while let Some(c) = chars.next() {
            if c == crate::lexer::LITERAL_DOLLAR {
                out.push('$');
                continue;
            }
            if c != '$' {
                out.push(c);
                continue;
            }
            match chars.peek() {
                Some('?') => {
                    chars.next();
                    out.push_str(&self.last_status.to_string());
                }
                Some('#') => {
                    chars.next();
                    out.push_str(&self.positional.len().to_string());
                }
                Some('!') => {
                    chars.next();
                    if let Some(pid) = self.last_background_pid {
                        out.push_str(&pid.to_string());
                    }
                }
                Some('{') => {
                    chars.next();
                    let mut name = String::new();
                    for inner in chars.by_ref() {
                        if inner == '}' {
                            break;
                        }
                        name.push(inner);
                    }
                    out.push_str(&self.lookup(env, &name));
                }
                Some(c) if c.is_ascii_digit() => {
                    let index = chars.next().unwrap().to_digit(10).unwrap() as usize;
                    if index >= 1 {
                        out.push_str(self.positional.get(index - 1).map(|s| s.as_str()).unwrap_or(""));
                    }
                }
                Some(c) if c.is_ascii_alphabetic() || *c == '_' => {
                    let mut name = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            name.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push_str(&self.lookup(env, &name));
                }
                _ => out.push('$'),
            }
        }
        out
    }

    fn lookup(&self, env: &dyn RuntimeEnv, name: &str) -> String {
        self.vars
            .get(name)
            .cloned()
            .or_else(|| env.getenv(name))
            .unwrap_or_default()
    }

    /// Expands variables then performs pathname expansion (globbing) on words
    /// containing `*` or `?`.
    fn expand_words(&self, env: &mut dyn RuntimeEnv, words: &[String]) -> Vec<String> {
        let mut out = Vec::new();
        for word in words {
            let expanded = self.expand_word(env, word);
            if expanded.contains('*') || expanded.contains('?') {
                let matches = glob(env, &expanded);
                if matches.is_empty() {
                    out.push(expanded);
                } else {
                    out.extend(matches);
                }
            } else {
                out.push(expanded);
            }
        }
        out
    }

    // ---- execution -------------------------------------------------------------

    fn run_pipeline(&mut self, env: &mut dyn RuntimeEnv, pipeline: &Pipeline) -> i32 {
        let commands: Vec<&Command> = pipeline.commands.iter().filter(|c| !c.is_empty()).collect();
        if commands.is_empty() {
            return 0;
        }
        // A single builtin runs inside the shell process itself.
        if commands.len() == 1 {
            let words = self.expand_words(env, &commands[0].words);
            if words.is_empty() {
                // Pure assignments: set shell variables.
                for (name, value) in &commands[0].assignments {
                    let value = self.expand_word(env, value);
                    self.vars.insert(name.clone(), value);
                }
                return 0;
            }
            if let Some(status) = self.try_builtin(env, &words) {
                return status;
            }
        }

        // Build the pipeline: N commands, N-1 pipes created in one batched
        // submission.
        let pipes = match env.pipe_many(commands.len() - 1) {
            Ok(pipes) => pipes,
            Err(e) => {
                env.eprint(&format!("sh: pipe: {e}\n"));
                return 1;
            }
        };

        let mut pids = Vec::new();
        let mut status = 0;
        let mut opened: Vec<i32> = Vec::new();
        // The expanded command lines, captured as spawned so the job table
        // records exactly what ran (re-expanding later could glob
        // differently once the pipeline has touched the filesystem).
        let mut described: Vec<String> = Vec::new();
        for (index, command) in commands.iter().enumerate() {
            let words = self.expand_words(env, &command.words);
            if words.is_empty() {
                continue;
            }
            described.push(words.join(" "));
            let mut stdio = SpawnStdio::inherit();
            if index > 0 {
                stdio.stdin = Some(pipes[index - 1].0);
            }
            if index + 1 < commands.len() {
                stdio.stdout = Some(pipes[index].1);
            }
            // Redirections override pipeline plumbing.
            let mut redirect_failed = false;
            for redirect in &command.redirects {
                let result = match redirect {
                    Redirect::Input(path) => {
                        let path = self.expand_word(env, path);
                        env.open(&path, OpenFlags::read_only()).inspect(|&fd| {
                            stdio.stdin = Some(fd);
                        })
                    }
                    Redirect::Output(path) => {
                        let path = self.expand_word(env, path);
                        env.open(&path, OpenFlags::write_create_truncate()).inspect(|&fd| {
                            stdio.stdout = Some(fd);
                        })
                    }
                    Redirect::Append(path) => {
                        let path = self.expand_word(env, path);
                        env.open(&path, OpenFlags::append_create()).inspect(|&fd| {
                            stdio.stdout = Some(fd);
                        })
                    }
                    Redirect::Stderr(path) => {
                        let path = self.expand_word(env, path);
                        env.open(&path, OpenFlags::write_create_truncate()).inspect(|&fd| {
                            stdio.stderr = Some(fd);
                        })
                    }
                };
                match result {
                    Ok(fd) => opened.push(fd),
                    Err(e) => {
                        env.eprint(&format!("sh: redirect: {e}\n"));
                        redirect_failed = true;
                        break;
                    }
                }
            }
            if redirect_failed {
                status = 1;
                continue;
            }
            match self.spawn_command(env, &words, stdio) {
                Ok(pid) => pids.push(pid),
                Err(code) => status = code,
            }
        }

        // The shell closes its copies of the pipe and redirect descriptors so
        // readers see EOF once the writers exit — all in one batched
        // submission.
        let mut to_close: Vec<i32> = pipes
            .iter()
            .flat_map(|&(read_fd, write_fd)| [read_fd, write_fd])
            .collect();
        to_close.extend(opened);
        let _ = env.close_many(&to_close);

        // Job control: every member of the pipeline moves into a process
        // group led by its first member, so terminal signals, `fg`, `bg` and
        // `kill -PGID` address the pipeline as one unit.
        let pgid = pids.first().copied();
        if let Some(pgid) = pgid {
            for &pid in &pids {
                let _ = env.setpgid(pid, pgid);
            }
        }

        let cmdline = described.join(" | ");
        if pipeline.background {
            self.last_background_pid = pids.last().copied();
            if let Some(pgid) = pgid {
                self.add_job(pgid, pids, cmdline);
            }
            return 0;
        }
        match pgid {
            Some(pgid) => self.foreground_wait(env, pgid, pids, &cmdline),
            None => status,
        }
    }

    /// Records a running background job, returning its job number.
    fn add_job(&mut self, pgid: u32, pids: Vec<u32>, cmdline: String) -> usize {
        self.next_job_id += 1;
        let id = self.next_job_id;
        self.jobs.push(Job {
            id,
            pgid,
            pids,
            cmdline,
            state: JobState::Running,
        });
        id
    }

    /// Runs a process group in the foreground: hands it the terminal, waits
    /// for every member (reporting stops, not just exits), then takes the
    /// terminal back.  A stopped pipeline becomes a `Stopped` entry in the
    /// job table, exactly like `Ctrl-Z` under a real shell.
    fn foreground_wait(&mut self, env: &mut dyn RuntimeEnv, pgid: u32, pids: Vec<u32>, cmdline: &str) -> i32 {
        let shell_pgid = env.getpgid(0).unwrap_or(0);
        let _ = env.tcsetpgrp(pgid);
        let mut status = 0;
        let mut remaining = pids.clone();
        let mut stopped = false;
        while let Some(&pid) = remaining.first() {
            match env.wait_options(pid as i32, WUNTRACED) {
                Ok(Some(child)) if child.stop_signal().is_some() => {
                    stopped = true;
                    status = 128 + child.stop_signal().map(|s| s.number()).unwrap_or(0);
                    break;
                }
                Ok(Some(child)) => {
                    remaining.remove(0);
                    status = Shell::child_status(&child);
                }
                Ok(None) => {
                    remaining.remove(0);
                }
                Err(_) => {
                    remaining.remove(0);
                    status = 1;
                }
            }
        }
        let _ = env.tcsetpgrp(shell_pgid);
        if stopped {
            let id = self.add_job(pgid, remaining, cmdline.to_owned());
            if let Some(job) = self.jobs.last_mut() {
                job.state = JobState::Stopped;
            }
            env.eprint(&format!("[{id}]+  Stopped  {cmdline}\n"));
        }
        status
    }

    /// The shell's exit status for one reaped child: its exit code, or
    /// `128 + signal` when it was killed.
    fn child_status(child: &WaitedChild) -> i32 {
        child.exit_code.unwrap_or(128 + (child.status & 0x7f))
    }

    fn spawn_command(&mut self, env: &mut dyn RuntimeEnv, words: &[String], stdio: SpawnStdio) -> Result<u32, i32> {
        let command = &words[0];
        let candidates: Vec<String> = if command.contains('/') {
            vec![command.clone()]
        } else {
            let path_var = self.lookup(env, "PATH");
            let path_var = if path_var.is_empty() {
                "/usr/bin:/bin".to_owned()
            } else {
                path_var
            };
            path_var
                .split(':')
                .filter(|dir| !dir.is_empty())
                .map(|dir| format!("{dir}/{command}"))
                .collect()
        };
        for candidate in &candidates {
            match env.spawn(candidate, words, stdio) {
                Ok(pid) => return Ok(pid),
                Err(browsix_core::Errno::ENOENT) => continue,
                Err(e) => {
                    env.eprint(&format!("sh: {command}: {e}\n"));
                    return Err(126);
                }
            }
        }
        env.eprint(&format!("sh: {command}: command not found\n"));
        Err(127)
    }

    fn try_builtin(&mut self, env: &mut dyn RuntimeEnv, words: &[String]) -> Option<i32> {
        match words[0].as_str() {
            "cd" => {
                let target = words.get(1).cloned().unwrap_or_else(|| self.lookup(env, "HOME"));
                let target = if target.is_empty() { "/".to_owned() } else { target };
                Some(match env.chdir(&target) {
                    Ok(()) => 0,
                    Err(e) => {
                        env.eprint(&format!("cd: {target}: {e}\n"));
                        1
                    }
                })
            }
            "pwd" => {
                let cwd = env.getcwd();
                env.print(&format!("{cwd}\n"));
                Some(0)
            }
            "exit" => {
                let code = words.get(1).and_then(|w| w.parse().ok()).unwrap_or(self.last_status);
                self.exited = Some(code);
                Some(code)
            }
            "export" => {
                for word in &words[1..] {
                    if let Some((name, value)) = word.split_once('=') {
                        self.vars.insert(name.to_owned(), value.to_owned());
                    }
                }
                Some(0)
            }
            "unset" => {
                for word in &words[1..] {
                    self.vars.remove(word);
                }
                Some(0)
            }
            "true" | ":" => Some(0),
            "false" => Some(1),
            "wait" => {
                let mut status = 0;
                for job in std::mem::take(&mut self.jobs) {
                    for pid in job.pids {
                        if let Ok(child) = env.wait(pid as i32) {
                            status = Shell::child_status(&child);
                        }
                    }
                }
                Some(status)
            }
            "jobs" => {
                self.refresh_jobs(env);
                let mut out = String::new();
                for job in &self.jobs {
                    let state = match job.state {
                        JobState::Running => "Running",
                        JobState::Stopped => "Stopped",
                        JobState::Done(_) => "Done",
                    };
                    out.push_str(&format!("[{}]  {}  {}\n", job.id, state, job.cmdline));
                }
                env.print(&out);
                // `jobs` reports Done entries once, then retires them.
                self.jobs.retain(|job| !matches!(job.state, JobState::Done(_)));
                Some(0)
            }
            "fg" => {
                self.refresh_jobs(env);
                let Some(index) = self.pick_job(words.get(1)) else {
                    env.eprint("fg: no such job\n");
                    return Some(1);
                };
                let job = self.jobs.remove(index);
                let _ = env.kill_group(job.pgid, Signal::SIGCONT);
                Some(self.foreground_wait(env, job.pgid, job.pids, &job.cmdline))
            }
            "bg" => {
                self.refresh_jobs(env);
                let Some(index) = self.pick_job(words.get(1)) else {
                    env.eprint("bg: no such job\n");
                    return Some(1);
                };
                let job = &mut self.jobs[index];
                job.state = JobState::Running;
                let pgid = job.pgid;
                let line = format!("[{}]  {} &\n", job.id, job.cmdline);
                let _ = env.kill_group(pgid, Signal::SIGCONT);
                env.print(&line);
                Some(0)
            }
            _ => None,
        }
    }

    /// Polls every job's members without blocking and updates job states:
    /// stopped members mark the job `Stopped`, reaped members leave it, and
    /// a job whose last member exits becomes `Done`.
    fn refresh_jobs(&mut self, env: &mut dyn RuntimeEnv) {
        for job in &mut self.jobs {
            if matches!(job.state, JobState::Done(_)) {
                continue;
            }
            let mut stopped = false;
            let mut last_status = 0;
            job.pids
                .retain(|&pid| match env.wait_options(pid as i32, WNOHANG | WUNTRACED) {
                    Ok(Some(child)) if child.stop_signal().is_some() => {
                        stopped = true;
                        true
                    }
                    Ok(Some(child)) => {
                        last_status = Shell::child_status(&child);
                        false
                    }
                    Ok(None) => true,
                    // ECHILD and the like: the member is gone.
                    Err(_) => false,
                });
            if job.pids.is_empty() {
                job.state = JobState::Done(last_status);
            } else if stopped {
                job.state = JobState::Stopped;
            }
        }
    }

    /// Resolves a `%n` / `n` job spec (or, with no spec, the most recent
    /// live job) to an index into the job table.
    fn pick_job(&self, spec: Option<&String>) -> Option<usize> {
        match spec {
            Some(spec) => {
                let id: usize = spec.trim_start_matches('%').parse().ok()?;
                self.jobs.iter().position(|job| job.id == id)
            }
            None => self
                .jobs
                .iter()
                .rposition(|job| !matches!(job.state, JobState::Done(_))),
        }
    }
}

/// Pathname expansion: matches the final component of `pattern` against the
/// entries of its parent directory.
fn glob(env: &mut dyn RuntimeEnv, pattern: &str) -> Vec<String> {
    let (dir, file_pattern) = match pattern.rfind('/') {
        Some(idx) => (&pattern[..idx + 1], &pattern[idx + 1..]),
        None => ("", pattern),
    };
    let list_dir = if dir.is_empty() { "." } else { dir.trim_end_matches('/') };
    let list_dir = if list_dir.is_empty() { "/" } else { list_dir };
    let Ok(entries) = env.readdir(list_dir) else {
        return Vec::new();
    };
    let mut matches: Vec<String> = entries
        .into_iter()
        .filter(|entry| browsix_fs::path::glob_match(file_pattern, &entry.name))
        .map(|entry| format!("{dir}{}", entry.name))
        .collect();
    matches.sort();
    matches
}

#[cfg(test)]
mod tests {
    use super::*;
    use browsix_fs::{FileSystem, MemFs, MountedFs};
    use browsix_runtime::{ExecutionProfile, NativeEnv, NativeWorld, SyscallConvention};
    use std::sync::Arc;

    /// A native world with the coreutils and the shell registered.
    fn world() -> NativeWorld {
        let fs = Arc::new(MountedFs::new(Arc::new(MemFs::new())));
        fs.mkdir("/docs").unwrap();
        fs.write_file("/docs/file.txt", b"apple\nbanana\napple pie\n").unwrap();
        fs.write_file("/docs/other.txt", b"cherry\n").unwrap();
        fs.mkdir("/home").unwrap();
        let world = NativeWorld::new(fs, ExecutionProfile::instant(SyscallConvention::Direct));
        browsix_utils::register_native(world.table());
        crate::register_native(world.table());
        world
    }

    fn run(world: &NativeWorld, script: &str) -> (i32, String, String) {
        let mut env = NativeEnv::new(world.clone(), &["sh"], "/");
        let mut shell = Shell::new();
        // Capture output through a tee into in-memory sinks by running via the
        // world's runner instead.
        let result = world.run_with_stdin("sh", &["sh"], script.as_bytes());
        let _ = (&mut env, &mut shell);
        (
            result.exit_code,
            result.stdout_string(),
            String::from_utf8_lossy(&result.stderr).into_owned(),
        )
    }

    #[test]
    fn simple_commands_and_exit_status() {
        let w = world();
        let (code, stdout, _) = run(&w, "echo hello world\n");
        assert_eq!(code, 0);
        assert_eq!(stdout, "hello world\n");
        let (code, _, stderr) = run(&w, "definitely-not-a-command\n");
        assert_eq!(code, 127);
        assert!(stderr.contains("command not found"));
    }

    #[test]
    fn pipelines_compose_utilities() {
        let w = world();
        let (code, stdout, _) = run(&w, "cat /docs/file.txt | grep apple | wc -l\n");
        assert_eq!(code, 0);
        assert_eq!(stdout.trim(), "2");
    }

    #[test]
    fn redirection_reads_and_writes_files() {
        let w = world();
        let (code, _, _) = run(&w, "grep apple < /docs/file.txt > /docs/apples.txt\n");
        assert_eq!(code, 0);
        assert_eq!(w.fs().read_file("/docs/apples.txt").unwrap(), b"apple\napple pie\n");
        let (_, _, _) = run(&w, "echo more >> /docs/apples.txt\n");
        assert_eq!(
            w.fs().read_file("/docs/apples.txt").unwrap(),
            b"apple\napple pie\nmore\n"
        );
        // Stderr redirection captures error messages.
        let (_, _, _) = run(&w, "cat /missing 2> /docs/errors.txt\n");
        let errors = w.fs().read_file("/docs/errors.txt").unwrap();
        assert!(String::from_utf8_lossy(&errors).contains("no such file"));
    }

    #[test]
    fn and_or_lists_and_exit_codes() {
        let w = world();
        let (code, stdout, _) = run(&w, "true && echo yes || echo no\n");
        assert_eq!(code, 0);
        assert_eq!(stdout, "yes\n");
        let (_, stdout, _) = run(&w, "false && echo yes || echo no\n");
        assert_eq!(stdout, "no\n");
        let (code, stdout, _) = run(&w, "false; echo status=$?\n");
        assert_eq!(stdout, "status=1\n");
        assert_eq!(code, 0);
    }

    #[test]
    fn variables_and_expansion() {
        let w = world();
        let (_, stdout, _) = run(&w, "NAME=browsix\necho hello $NAME ${NAME}!\n");
        assert_eq!(stdout, "hello browsix browsix!\n");
        let (_, stdout, _) = run(&w, "export GREETING=hi\necho $GREETING there\n");
        assert_eq!(stdout, "hi there\n");
        let (_, stdout, _) = run(&w, "X=1\nunset X\necho [$X]\n");
        assert_eq!(stdout, "[]\n");
        // Single quotes suppress expansion.
        let (_, stdout, _) = run(&w, "Y=2\necho '$Y' \"$Y\"\n");
        assert_eq!(stdout, "$Y 2\n");
    }

    #[test]
    fn builtins_cd_pwd_exit() {
        let w = world();
        let (_, stdout, _) = run(&w, "cd /docs\npwd\n");
        assert_eq!(stdout, "/docs\n");
        let (code, stdout, _) = run(&w, "echo before\nexit 3\necho after\n");
        assert_eq!(code, 3);
        assert_eq!(stdout, "before\n");
        let (code, _, stderr) = run(&w, "cd /nonexistent\n");
        assert_eq!(code, 1);
        assert!(stderr.contains("cd:"));
    }

    #[test]
    fn globbing_expands_wildcards() {
        let w = world();
        let (_, stdout, _) = run(&w, "echo /docs/*.txt\n");
        assert_eq!(stdout, "/docs/file.txt /docs/other.txt\n");
        // No matches: the pattern is passed through literally, like dash.
        let (_, stdout, _) = run(&w, "echo /docs/*.pdf\n");
        assert_eq!(stdout, "/docs/*.pdf\n");
    }

    #[test]
    fn scripts_with_positional_parameters() {
        let w = world();
        w.fs()
            .write_file("/docs/greet.sh", b"echo argc=$#\necho hello $1\n")
            .unwrap();
        let result = w.run("sh", &["sh", "/docs/greet.sh", "world"]);
        assert_eq!(result.exit_code, 0);
        assert_eq!(result.stdout_string(), "argc=1\nhello world\n");
        // sh -c form.
        let result = w.run("sh", &["sh", "-c", "echo from -c"]);
        assert_eq!(result.stdout_string(), "from -c\n");
        // Missing script.
        let result = w.run("sh", &["sh", "/docs/missing.sh"]);
        assert_eq!(result.exit_code, 127);
    }

    #[test]
    fn syntax_errors_report_status_2() {
        let w = world();
        let (code, _, stderr) = run(&w, "cat <\n");
        assert_eq!(code, 2);
        assert!(stderr.contains("syntax error"));
    }
}
