//! Executing parsed scripts: expansion, builtins, pipelines, redirection and
//! background jobs.

use std::collections::HashMap;

use browsix_fs::OpenFlags;
use browsix_runtime::{RuntimeEnv, SpawnStdio};

use crate::ast::{Command, ListOp, Pipeline, Redirect};
use crate::parser::parse_script;

/// The shell interpreter state: variables, the last exit status, positional
/// parameters and background job pids.
#[derive(Debug, Default)]
pub struct Shell {
    vars: HashMap<String, String>,
    positional: Vec<String>,
    last_status: i32,
    background: Vec<u32>,
    exited: Option<i32>,
}

impl Shell {
    /// Creates a fresh shell.
    pub fn new() -> Shell {
        Shell::default()
    }

    /// Sets the positional parameters (`$1`, `$2`, ... in scripts).
    pub fn set_positional(&mut self, args: &[String]) {
        self.positional = args.to_vec();
    }

    /// Sets a shell variable.
    pub fn set_var(&mut self, name: &str, value: &str) {
        self.vars.insert(name.to_owned(), value.to_owned());
    }

    /// Looks up a shell variable (not the environment).
    pub fn var(&self, name: &str) -> Option<&str> {
        self.vars.get(name).map(|s| s.as_str())
    }

    /// Pids of background jobs started with `&`.
    pub fn background_jobs(&self) -> &[u32] {
        &self.background
    }

    /// Parses and runs `source`, returning the exit status of the last
    /// command (or 2 for a syntax error, like dash).
    pub fn run_source(&mut self, env: &mut dyn RuntimeEnv, source: &str) -> i32 {
        let script = match parse_script(source) {
            Ok(script) => script,
            Err(e) => {
                env.eprint(&format!("sh: {e}\n"));
                return 2;
            }
        };
        for (op, pipeline) in &script.entries {
            if self.exited.is_some() {
                break;
            }
            let should_run = match op {
                ListOp::Always => true,
                ListOp::AndIf => self.last_status == 0,
                ListOp::OrIf => self.last_status != 0,
            };
            if !should_run {
                continue;
            }
            self.last_status = self.run_pipeline(env, pipeline);
        }
        self.exited.unwrap_or(self.last_status)
    }

    // ---- expansion -----------------------------------------------------------

    fn expand_word(&self, env: &dyn RuntimeEnv, word: &str) -> String {
        let mut out = String::new();
        let mut chars = word.chars().peekable();
        while let Some(c) = chars.next() {
            if c == crate::lexer::LITERAL_DOLLAR {
                out.push('$');
                continue;
            }
            if c != '$' {
                out.push(c);
                continue;
            }
            match chars.peek() {
                Some('?') => {
                    chars.next();
                    out.push_str(&self.last_status.to_string());
                }
                Some('#') => {
                    chars.next();
                    out.push_str(&self.positional.len().to_string());
                }
                Some('{') => {
                    chars.next();
                    let mut name = String::new();
                    for inner in chars.by_ref() {
                        if inner == '}' {
                            break;
                        }
                        name.push(inner);
                    }
                    out.push_str(&self.lookup(env, &name));
                }
                Some(c) if c.is_ascii_digit() => {
                    let index = chars.next().unwrap().to_digit(10).unwrap() as usize;
                    if index >= 1 {
                        out.push_str(self.positional.get(index - 1).map(|s| s.as_str()).unwrap_or(""));
                    }
                }
                Some(c) if c.is_ascii_alphabetic() || *c == '_' => {
                    let mut name = String::new();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            name.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push_str(&self.lookup(env, &name));
                }
                _ => out.push('$'),
            }
        }
        out
    }

    fn lookup(&self, env: &dyn RuntimeEnv, name: &str) -> String {
        self.vars
            .get(name)
            .cloned()
            .or_else(|| env.getenv(name))
            .unwrap_or_default()
    }

    /// Expands variables then performs pathname expansion (globbing) on words
    /// containing `*` or `?`.
    fn expand_words(&self, env: &mut dyn RuntimeEnv, words: &[String]) -> Vec<String> {
        let mut out = Vec::new();
        for word in words {
            let expanded = self.expand_word(env, word);
            if expanded.contains('*') || expanded.contains('?') {
                let matches = glob(env, &expanded);
                if matches.is_empty() {
                    out.push(expanded);
                } else {
                    out.extend(matches);
                }
            } else {
                out.push(expanded);
            }
        }
        out
    }

    // ---- execution -------------------------------------------------------------

    fn run_pipeline(&mut self, env: &mut dyn RuntimeEnv, pipeline: &Pipeline) -> i32 {
        let commands: Vec<&Command> = pipeline.commands.iter().filter(|c| !c.is_empty()).collect();
        if commands.is_empty() {
            return 0;
        }
        // A single builtin runs inside the shell process itself.
        if commands.len() == 1 {
            let words = self.expand_words(env, &commands[0].words);
            if words.is_empty() {
                // Pure assignments: set shell variables.
                for (name, value) in &commands[0].assignments {
                    let value = self.expand_word(env, value);
                    self.vars.insert(name.clone(), value);
                }
                return 0;
            }
            if let Some(status) = self.try_builtin(env, &words) {
                return status;
            }
        }

        // Build the pipeline: N commands, N-1 pipes created in one batched
        // submission.
        let pipes = match env.pipe_many(commands.len() - 1) {
            Ok(pipes) => pipes,
            Err(e) => {
                env.eprint(&format!("sh: pipe: {e}\n"));
                return 1;
            }
        };

        let mut pids = Vec::new();
        let mut status = 0;
        let mut opened: Vec<i32> = Vec::new();
        for (index, command) in commands.iter().enumerate() {
            let words = self.expand_words(env, &command.words);
            if words.is_empty() {
                continue;
            }
            let mut stdio = SpawnStdio::inherit();
            if index > 0 {
                stdio.stdin = Some(pipes[index - 1].0);
            }
            if index + 1 < commands.len() {
                stdio.stdout = Some(pipes[index].1);
            }
            // Redirections override pipeline plumbing.
            let mut redirect_failed = false;
            for redirect in &command.redirects {
                let result = match redirect {
                    Redirect::Input(path) => {
                        let path = self.expand_word(env, path);
                        env.open(&path, OpenFlags::read_only()).inspect(|&fd| {
                            stdio.stdin = Some(fd);
                        })
                    }
                    Redirect::Output(path) => {
                        let path = self.expand_word(env, path);
                        env.open(&path, OpenFlags::write_create_truncate()).inspect(|&fd| {
                            stdio.stdout = Some(fd);
                        })
                    }
                    Redirect::Append(path) => {
                        let path = self.expand_word(env, path);
                        env.open(&path, OpenFlags::append_create()).inspect(|&fd| {
                            stdio.stdout = Some(fd);
                        })
                    }
                    Redirect::Stderr(path) => {
                        let path = self.expand_word(env, path);
                        env.open(&path, OpenFlags::write_create_truncate()).inspect(|&fd| {
                            stdio.stderr = Some(fd);
                        })
                    }
                };
                match result {
                    Ok(fd) => opened.push(fd),
                    Err(e) => {
                        env.eprint(&format!("sh: redirect: {e}\n"));
                        redirect_failed = true;
                        break;
                    }
                }
            }
            if redirect_failed {
                status = 1;
                continue;
            }
            match self.spawn_command(env, &words, stdio) {
                Ok(pid) => pids.push(pid),
                Err(code) => status = code,
            }
        }

        // The shell closes its copies of the pipe and redirect descriptors so
        // readers see EOF once the writers exit — all in one batched
        // submission.
        let mut to_close: Vec<i32> = pipes
            .iter()
            .flat_map(|&(read_fd, write_fd)| [read_fd, write_fd])
            .collect();
        to_close.extend(opened);
        let _ = env.close_many(&to_close);

        if pipeline.background {
            self.background.extend(pids);
            return 0;
        }
        for pid in pids {
            match env.wait(pid as i32) {
                Ok(child) => status = child.exit_code.unwrap_or(128 + (child.status & 0x7f)),
                Err(_) => status = 1,
            }
        }
        status
    }

    fn spawn_command(&mut self, env: &mut dyn RuntimeEnv, words: &[String], stdio: SpawnStdio) -> Result<u32, i32> {
        let command = &words[0];
        let candidates: Vec<String> = if command.contains('/') {
            vec![command.clone()]
        } else {
            let path_var = self.lookup(env, "PATH");
            let path_var = if path_var.is_empty() {
                "/usr/bin:/bin".to_owned()
            } else {
                path_var
            };
            path_var
                .split(':')
                .filter(|dir| !dir.is_empty())
                .map(|dir| format!("{dir}/{command}"))
                .collect()
        };
        for candidate in &candidates {
            match env.spawn(candidate, words, stdio) {
                Ok(pid) => return Ok(pid),
                Err(browsix_core::Errno::ENOENT) => continue,
                Err(e) => {
                    env.eprint(&format!("sh: {command}: {e}\n"));
                    return Err(126);
                }
            }
        }
        env.eprint(&format!("sh: {command}: command not found\n"));
        Err(127)
    }

    fn try_builtin(&mut self, env: &mut dyn RuntimeEnv, words: &[String]) -> Option<i32> {
        match words[0].as_str() {
            "cd" => {
                let target = words.get(1).cloned().unwrap_or_else(|| self.lookup(env, "HOME"));
                let target = if target.is_empty() { "/".to_owned() } else { target };
                Some(match env.chdir(&target) {
                    Ok(()) => 0,
                    Err(e) => {
                        env.eprint(&format!("cd: {target}: {e}\n"));
                        1
                    }
                })
            }
            "pwd" => {
                let cwd = env.getcwd();
                env.print(&format!("{cwd}\n"));
                Some(0)
            }
            "exit" => {
                let code = words.get(1).and_then(|w| w.parse().ok()).unwrap_or(self.last_status);
                self.exited = Some(code);
                Some(code)
            }
            "export" => {
                for word in &words[1..] {
                    if let Some((name, value)) = word.split_once('=') {
                        self.vars.insert(name.to_owned(), value.to_owned());
                    }
                }
                Some(0)
            }
            "unset" => {
                for word in &words[1..] {
                    self.vars.remove(word);
                }
                Some(0)
            }
            "true" | ":" => Some(0),
            "false" => Some(1),
            "wait" => {
                let mut status = 0;
                for pid in std::mem::take(&mut self.background) {
                    if let Ok(child) = env.wait(pid as i32) {
                        status = child.exit_code.unwrap_or(1);
                    }
                }
                Some(status)
            }
            _ => None,
        }
    }
}

/// Pathname expansion: matches the final component of `pattern` against the
/// entries of its parent directory.
fn glob(env: &mut dyn RuntimeEnv, pattern: &str) -> Vec<String> {
    let (dir, file_pattern) = match pattern.rfind('/') {
        Some(idx) => (&pattern[..idx + 1], &pattern[idx + 1..]),
        None => ("", pattern),
    };
    let list_dir = if dir.is_empty() { "." } else { dir.trim_end_matches('/') };
    let list_dir = if list_dir.is_empty() { "/" } else { list_dir };
    let Ok(entries) = env.readdir(list_dir) else {
        return Vec::new();
    };
    let mut matches: Vec<String> = entries
        .into_iter()
        .filter(|entry| browsix_fs::path::glob_match(file_pattern, &entry.name))
        .map(|entry| format!("{dir}{}", entry.name))
        .collect();
    matches.sort();
    matches
}

#[cfg(test)]
mod tests {
    use super::*;
    use browsix_fs::{FileSystem, MemFs, MountedFs};
    use browsix_runtime::{ExecutionProfile, NativeEnv, NativeWorld, SyscallConvention};
    use std::sync::Arc;

    /// A native world with the coreutils and the shell registered.
    fn world() -> NativeWorld {
        let fs = Arc::new(MountedFs::new(Arc::new(MemFs::new())));
        fs.mkdir("/docs").unwrap();
        fs.write_file("/docs/file.txt", b"apple\nbanana\napple pie\n").unwrap();
        fs.write_file("/docs/other.txt", b"cherry\n").unwrap();
        fs.mkdir("/home").unwrap();
        let world = NativeWorld::new(fs, ExecutionProfile::instant(SyscallConvention::Direct));
        browsix_utils::register_native(world.table());
        crate::register_native(world.table());
        world
    }

    fn run(world: &NativeWorld, script: &str) -> (i32, String, String) {
        let mut env = NativeEnv::new(world.clone(), &["sh"], "/");
        let mut shell = Shell::new();
        // Capture output through a tee into in-memory sinks by running via the
        // world's runner instead.
        let result = world.run_with_stdin("sh", &["sh"], script.as_bytes());
        let _ = (&mut env, &mut shell);
        (
            result.exit_code,
            result.stdout_string(),
            String::from_utf8_lossy(&result.stderr).into_owned(),
        )
    }

    #[test]
    fn simple_commands_and_exit_status() {
        let w = world();
        let (code, stdout, _) = run(&w, "echo hello world\n");
        assert_eq!(code, 0);
        assert_eq!(stdout, "hello world\n");
        let (code, _, stderr) = run(&w, "definitely-not-a-command\n");
        assert_eq!(code, 127);
        assert!(stderr.contains("command not found"));
    }

    #[test]
    fn pipelines_compose_utilities() {
        let w = world();
        let (code, stdout, _) = run(&w, "cat /docs/file.txt | grep apple | wc -l\n");
        assert_eq!(code, 0);
        assert_eq!(stdout.trim(), "2");
    }

    #[test]
    fn redirection_reads_and_writes_files() {
        let w = world();
        let (code, _, _) = run(&w, "grep apple < /docs/file.txt > /docs/apples.txt\n");
        assert_eq!(code, 0);
        assert_eq!(w.fs().read_file("/docs/apples.txt").unwrap(), b"apple\napple pie\n");
        let (_, _, _) = run(&w, "echo more >> /docs/apples.txt\n");
        assert_eq!(
            w.fs().read_file("/docs/apples.txt").unwrap(),
            b"apple\napple pie\nmore\n"
        );
        // Stderr redirection captures error messages.
        let (_, _, _) = run(&w, "cat /missing 2> /docs/errors.txt\n");
        let errors = w.fs().read_file("/docs/errors.txt").unwrap();
        assert!(String::from_utf8_lossy(&errors).contains("no such file"));
    }

    #[test]
    fn and_or_lists_and_exit_codes() {
        let w = world();
        let (code, stdout, _) = run(&w, "true && echo yes || echo no\n");
        assert_eq!(code, 0);
        assert_eq!(stdout, "yes\n");
        let (_, stdout, _) = run(&w, "false && echo yes || echo no\n");
        assert_eq!(stdout, "no\n");
        let (code, stdout, _) = run(&w, "false; echo status=$?\n");
        assert_eq!(stdout, "status=1\n");
        assert_eq!(code, 0);
    }

    #[test]
    fn variables_and_expansion() {
        let w = world();
        let (_, stdout, _) = run(&w, "NAME=browsix\necho hello $NAME ${NAME}!\n");
        assert_eq!(stdout, "hello browsix browsix!\n");
        let (_, stdout, _) = run(&w, "export GREETING=hi\necho $GREETING there\n");
        assert_eq!(stdout, "hi there\n");
        let (_, stdout, _) = run(&w, "X=1\nunset X\necho [$X]\n");
        assert_eq!(stdout, "[]\n");
        // Single quotes suppress expansion.
        let (_, stdout, _) = run(&w, "Y=2\necho '$Y' \"$Y\"\n");
        assert_eq!(stdout, "$Y 2\n");
    }

    #[test]
    fn builtins_cd_pwd_exit() {
        let w = world();
        let (_, stdout, _) = run(&w, "cd /docs\npwd\n");
        assert_eq!(stdout, "/docs\n");
        let (code, stdout, _) = run(&w, "echo before\nexit 3\necho after\n");
        assert_eq!(code, 3);
        assert_eq!(stdout, "before\n");
        let (code, _, stderr) = run(&w, "cd /nonexistent\n");
        assert_eq!(code, 1);
        assert!(stderr.contains("cd:"));
    }

    #[test]
    fn globbing_expands_wildcards() {
        let w = world();
        let (_, stdout, _) = run(&w, "echo /docs/*.txt\n");
        assert_eq!(stdout, "/docs/file.txt /docs/other.txt\n");
        // No matches: the pattern is passed through literally, like dash.
        let (_, stdout, _) = run(&w, "echo /docs/*.pdf\n");
        assert_eq!(stdout, "/docs/*.pdf\n");
    }

    #[test]
    fn scripts_with_positional_parameters() {
        let w = world();
        w.fs()
            .write_file("/docs/greet.sh", b"echo argc=$#\necho hello $1\n")
            .unwrap();
        let result = w.run("sh", &["sh", "/docs/greet.sh", "world"]);
        assert_eq!(result.exit_code, 0);
        assert_eq!(result.stdout_string(), "argc=1\nhello world\n");
        // sh -c form.
        let result = w.run("sh", &["sh", "-c", "echo from -c"]);
        assert_eq!(result.stdout_string(), "from -c\n");
        // Missing script.
        let result = w.run("sh", &["sh", "/docs/missing.sh"]);
        assert_eq!(result.exit_code, 127);
    }

    #[test]
    fn syntax_errors_report_status_2() {
        let w = world();
        let (code, _, stderr) = run(&w, "cat <\n");
        assert_eq!(code, 2);
        assert!(stderr.contains("syntax error"));
    }
}
