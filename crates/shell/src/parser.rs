//! Parsing token streams into the shell AST.

use std::error::Error;
use std::fmt;

use crate::ast::{Command, ListOp, Pipeline, Redirect, ScriptList};
use crate::lexer::{tokenize, LexError, Token};

/// A parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "syntax error: {}", self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(value: LexError) -> Self {
        ParseError { message: value.message }
    }
}

/// Parses a complete script (possibly many lines).
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed input such as a missing redirect
/// target or a pipe with no following command.
pub fn parse_script(source: &str) -> Result<ScriptList, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.parse_list()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn parse_list(&mut self) -> Result<ScriptList, ParseError> {
        let mut entries = Vec::new();
        let mut op = ListOp::Always;
        loop {
            // Skip blank separators.
            while matches!(self.peek(), Some(Token::Newline) | Some(Token::Semi)) {
                self.next();
                op = ListOp::Always;
            }
            if self.peek().is_none() {
                break;
            }
            let pipeline = self.parse_pipeline()?;
            entries.push((op, pipeline));
            match self.peek() {
                Some(Token::AndIf) => {
                    self.next();
                    op = ListOp::AndIf;
                }
                Some(Token::OrIf) => {
                    self.next();
                    op = ListOp::OrIf;
                }
                Some(Token::Semi) | Some(Token::Newline) => {
                    self.next();
                    op = ListOp::Always;
                }
                Some(Token::Background) => {
                    self.next();
                    if let Some((_, last)) = entries.last_mut() {
                        last.background = true;
                    }
                    op = ListOp::Always;
                }
                None => break,
                Some(other) => {
                    return Err(ParseError {
                        message: format!("unexpected token {other:?}"),
                    });
                }
            }
        }
        Ok(ScriptList { entries })
    }

    fn parse_pipeline(&mut self) -> Result<Pipeline, ParseError> {
        let mut commands = vec![self.parse_command()?];
        while self.peek() == Some(&Token::Pipe) {
            self.next();
            let command = self.parse_command()?;
            if command.is_empty() {
                return Err(ParseError {
                    message: "missing command after '|'".into(),
                });
            }
            commands.push(command);
        }
        if commands[0].is_empty() && commands.len() > 1 {
            return Err(ParseError {
                message: "missing command before '|'".into(),
            });
        }
        Ok(Pipeline {
            commands,
            background: false,
        })
    }

    fn parse_command(&mut self) -> Result<Command, ParseError> {
        let mut command = Command::default();
        loop {
            match self.peek() {
                Some(Token::Word(_)) => {
                    let Some(Token::Word(word)) = self.next() else {
                        unreachable!()
                    };
                    // Leading NAME=value words are assignments.
                    if command.words.is_empty() {
                        if let Some((name, value)) = split_assignment(&word) {
                            command.assignments.push((name, value));
                            continue;
                        }
                    }
                    command.words.push(word);
                }
                Some(Token::RedirectIn)
                | Some(Token::RedirectOut)
                | Some(Token::RedirectAppend)
                | Some(Token::RedirectErr) => {
                    let kind = self.next().unwrap();
                    let Some(Token::Word(target)) = self.next() else {
                        return Err(ParseError {
                            message: "missing redirect target".into(),
                        });
                    };
                    command.redirects.push(match kind {
                        Token::RedirectIn => Redirect::Input(target),
                        Token::RedirectOut => Redirect::Output(target),
                        Token::RedirectAppend => Redirect::Append(target),
                        Token::RedirectErr => Redirect::Stderr(target),
                        _ => unreachable!(),
                    });
                }
                _ => break,
            }
        }
        Ok(command)
    }
}

/// Splits `NAME=value` into its parts if `NAME` is a valid variable name.
/// This is the single definition of what counts as an assignment word; the
/// terminal reuses it to keep its cross-line environment in sync with the
/// shell's own assignment handling.
pub fn split_assignment(word: &str) -> Option<(String, String)> {
    let (name, value) = word.split_once('=')?;
    if name.is_empty()
        || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        || name.chars().next().map(|c| c.is_ascii_digit()).unwrap_or(true)
    {
        return None;
    }
    Some((name.to_owned(), value.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_pipelines_and_lists() {
        let script = parse_script("cat a.txt | grep x | wc -l && echo ok || echo bad\nls").unwrap();
        assert_eq!(script.entries.len(), 4);
        assert_eq!(script.entries[0].1.commands.len(), 3);
        assert_eq!(script.entries[1].0, ListOp::AndIf);
        assert_eq!(script.entries[2].0, ListOp::OrIf);
        assert_eq!(script.entries[3].0, ListOp::Always);
        assert!(!script.is_empty());
    }

    #[test]
    fn parses_redirects_and_assignments() {
        let script = parse_script("FOO=bar BAZ=1 sort < in.txt > out.txt 2> err.txt >> log.txt").unwrap();
        let command = &script.entries[0].1.commands[0];
        assert_eq!(command.assignments.len(), 2);
        assert_eq!(command.words, vec!["sort"]);
        assert_eq!(command.redirects.len(), 4);
        assert_eq!(command.redirects[0], Redirect::Input("in.txt".into()));
        assert_eq!(command.redirects[1], Redirect::Output("out.txt".into()));
        assert_eq!(command.redirects[2], Redirect::Stderr("err.txt".into()));
        assert_eq!(command.redirects[3], Redirect::Append("log.txt".into()));
    }

    #[test]
    fn parses_background_jobs() {
        let script = parse_script("server --port 80 & echo started").unwrap();
        assert!(script.entries[0].1.background);
        assert!(!script.entries[1].1.background);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_script("cat <").is_err());
        assert!(parse_script("| grep x").is_err());
        assert!(parse_script("cat a |").is_err());
        assert!(parse_script("echo 'unterminated").is_err());
    }

    #[test]
    fn assignment_splitting_rules() {
        assert_eq!(split_assignment("FOO=bar"), Some(("FOO".into(), "bar".into())));
        assert_eq!(split_assignment("_X=1"), Some(("_X".into(), "1".into())));
        assert_eq!(split_assignment("1X=1"), None);
        assert_eq!(split_assignment("not-a-var=1"), None);
        assert_eq!(split_assignment("noequals"), None);
    }

    #[test]
    fn empty_and_comment_only_scripts() {
        assert!(parse_script("").unwrap().is_empty());
        assert!(parse_script("# just a comment\n\n").unwrap().is_empty());
    }
}
