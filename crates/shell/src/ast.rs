//! The shell's abstract syntax tree.

/// A redirection attached to a command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Redirect {
    /// `< file`
    Input(String),
    /// `> file`
    Output(String),
    /// `>> file`
    Append(String),
    /// `2> file`
    Stderr(String),
}

/// One simple command: assignments, words and redirections.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Command {
    /// Leading `NAME=value` assignments.
    pub assignments: Vec<(String, String)>,
    /// The command name and its arguments (before expansion).
    pub words: Vec<String>,
    /// Redirections, applied left to right.
    pub redirects: Vec<Redirect>,
}

impl Command {
    /// Whether the command has neither words nor assignments (an empty line).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty() && self.assignments.is_empty()
    }
}

/// A pipeline: one or more commands connected by `|`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Pipeline {
    /// The commands, left to right.
    pub commands: Vec<Command>,
    /// Whether the pipeline runs in the background (`&`).
    pub background: bool,
}

/// How one pipeline chains to the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListOp {
    /// `;` or newline — run unconditionally.
    Always,
    /// `&&` — run only if the previous pipeline succeeded.
    AndIf,
    /// `||` — run only if the previous pipeline failed.
    OrIf,
}

/// A parsed script: pipelines with their chaining operators.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScriptList {
    /// `(operator linking to the previous entry, pipeline)` pairs; the first
    /// entry's operator is [`ListOp::Always`].
    pub entries: Vec<(ListOp, Pipeline)>,
}

impl ScriptList {
    /// Whether the script contains no commands at all.
    pub fn is_empty(&self) -> bool {
        self.entries
            .iter()
            .all(|(_, p)| p.commands.iter().all(Command::is_empty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emptiness_checks() {
        assert!(Command::default().is_empty());
        let cmd = Command {
            words: vec!["ls".into()],
            ..Command::default()
        };
        assert!(!cmd.is_empty());
        assert!(ScriptList::default().is_empty());
        let script = ScriptList {
            entries: vec![(
                ListOp::Always,
                Pipeline {
                    commands: vec![cmd],
                    background: false,
                },
            )],
        };
        assert!(!script.is_empty());
    }
}
