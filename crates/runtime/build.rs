//! Generates the typed `SyscallClient` submission stubs from
//! `abi/syscalls.abi` via `browsix-abigen`; `src/client.rs` includes the
//! result, so adding a syscall to the IDL grows the client API with no
//! hand-written code here.

use std::path::Path;

fn main() {
    let idl = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../abi/syscalls.abi");
    println!("cargo:rerun-if-changed={}", idl.display());
    let abi = browsix_abigen::load(&idl).unwrap_or_else(|e| panic!("abi/syscalls.abi: {e}"));
    let out_dir = std::env::var("OUT_DIR").expect("OUT_DIR");
    std::fs::write(
        Path::new(&out_dir).join("client_gen.rs"),
        browsix_abigen::codegen::gen_client(&abi),
    )
    .expect("write client_gen.rs");
}
