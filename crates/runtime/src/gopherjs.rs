//! The GopherJS (Go) runtime integration.
//!
//! GopherJS already supports suspending and resuming goroutines, which meshes
//! naturally with Browsix's asynchronous system calls: the replacement
//! `syscall.RawSyscall` issues the call, parks the goroutine on a channel and
//! resumes it when the kernel's response arrives.  `net.Listen` and
//! `forkAndExecInChild` are overridden to use Browsix sockets and `spawn`.
//!
//! [`GopherJsLauncher`] reproduces that integration: Go-style guest programs
//! (such as the meme-generator server) run under the asynchronous convention
//! with the GopherJS execution profile, whose large numeric penalty models the
//! missing 64-bit integer support the paper identifies as the main source of
//! meme-generation slowness.

use browsix_core::exec::{LaunchContext, ProgramLauncher};

use crate::browsix_env::run_guest_process;
use crate::profile::ExecutionProfile;
use crate::program::GuestFactory;

/// Launches a Go guest program compiled "with GopherJS".
pub struct GopherJsLauncher {
    name: &'static str,
    factory: GuestFactory,
    profile: ExecutionProfile,
}

impl std::fmt::Debug for GopherJsLauncher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GopherJsLauncher").field("name", &self.name).finish()
    }
}

impl GopherJsLauncher {
    /// Creates a launcher with the calibrated GopherJS profile.
    pub fn new(name: &'static str, factory: GuestFactory) -> GopherJsLauncher {
        GopherJsLauncher {
            name,
            factory,
            profile: ExecutionProfile::gopherjs(),
        }
    }

    /// Overrides the execution profile.
    pub fn with_profile(mut self, profile: ExecutionProfile) -> GopherJsLauncher {
        self.profile = profile;
        self
    }
}

impl ProgramLauncher for GopherJsLauncher {
    fn launch(&self, ctx: LaunchContext) {
        // GopherJS programs always use asynchronous system calls.
        run_guest_process(ctx, &self.factory, self.profile.clone(), false);
    }

    fn runtime_name(&self) -> &'static str {
        "gopherjs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{factory, FnProgram};

    #[test]
    fn launcher_uses_async_gopherjs_profile() {
        let launcher = GopherJsLauncher::new("meme-server", factory(|| FnProgram::new("meme", |_| 0)));
        assert_eq!(launcher.runtime_name(), "gopherjs");
        assert_eq!(launcher.profile.convention, crate::SyscallConvention::Async);
        assert!(launcher.profile.compute_ns_per_unit > ExecutionProfile::nodejs_linux().compute_ns_per_unit);
        let quiet = launcher.with_profile(ExecutionProfile::instant(crate::SyscallConvention::Async));
        assert_eq!(quiet.profile.compute_ns_per_unit, 0);
        assert!(format!("{quiet:?}").contains("meme-server"));
    }
}
