//! # browsix-runtime — process-side runtime support
//!
//! Applications never talk to the Browsix kernel directly; they go through
//! their language runtime.  The paper extends three runtimes — Emscripten
//! (C/C++), GopherJS (Go) and Node.js — so unmodified programs issue Browsix
//! system calls.  This crate is the equivalent layer for the Rust
//! reproduction:
//!
//! * [`program`] — the [`GuestProgram`] trait: a program written against the
//!   POSIX-style [`RuntimeEnv`] interface, standing in for a binary compiled
//!   to JavaScript.
//! * [`env`](mod@env) — [`RuntimeEnv`], the system interface guest programs see
//!   (files, directories, processes, pipes, signals, sockets, stdio and the
//!   compute cost model).
//! * [`profile`] — [`ExecutionProfile`]: the calibrated cost model for each
//!   execution environment (native, Node.js on Linux, Browsix with
//!   synchronous or asynchronous system calls, GopherJS numeric code).
//! * [`client`] — the worker-side system-call client implementing both
//!   conventions from §3.2 of the paper.
//! * [`browsix_env`] — [`RuntimeEnv`] implemented over the system-call
//!   client: what a process running under Browsix uses.
//! * [`native`] — [`RuntimeEnv`] implemented directly over an in-process
//!   file system: the "native Linux" and "Node.js on Linux" baselines from
//!   Figure 9.
//! * [`emscripten`], [`gopherjs`], [`nodejs`] — the three launcher types
//!   (C/C++ with asm.js or Emterpreter modes and `fork` support, Go, and
//!   Node.js), each a [`ProgramLauncher`](browsix_core::ProgramLauncher)
//!   the kernel can start inside a worker.

pub mod browsix_env;
pub mod client;
pub mod emscripten;
pub mod env;
pub mod gopherjs;
pub mod native;
pub mod nodejs;
pub mod profile;
pub mod program;

pub use browsix_browser::SharedArrayBuffer;
pub use browsix_env::BrowsixEnv;
pub use client::{ClientMode, SyscallClient, RINGS_ENV_VAR};
pub use emscripten::{EmscriptenLauncher, EmscriptenMode};
pub use env::{
    MappedRegion, PollFd, RuntimeEnv, SpawnStdio, WaitedChild, MAP_ANONYMOUS, MAP_PRIVATE, MAP_SHARED, PAGE_SIZE,
    POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT, PROT_READ, PROT_WRITE,
};
pub use gopherjs::GopherJsLauncher;
pub use native::{NativeEnv, NativeWorld};
pub use nodejs::NodeLauncher;
pub use profile::{ExecutionProfile, SyscallConvention};
pub use program::{factory, guest, FnProgram, GuestFactory, GuestProgram, ProgramTable};
