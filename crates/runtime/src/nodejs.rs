//! The Node.js runtime integration.
//!
//! Browsix provides a `browser-node` executable that packages Node's
//! high-level JavaScript APIs with pure-JavaScript replacements for its C++
//! bindings, all implemented on Browsix system calls — so servers and command
//! line tools written for Node run unmodified as Browsix processes.  Node's
//! callback-oriented APIs map directly onto the asynchronous system-call
//! convention.
//!
//! [`NodeLauncher`] is that executable's stand-in: it runs a guest program
//! under the asynchronous convention with the JavaScript execution profile.
//! The Unix utilities in `browsix-utils` are registered through it, mirroring
//! the paper's Node-implemented coreutils.

use browsix_core::exec::{LaunchContext, ProgramLauncher};

use crate::browsix_env::run_guest_process;
use crate::profile::ExecutionProfile;
use crate::program::GuestFactory;

/// Launches a Node.js-style guest program.
pub struct NodeLauncher {
    name: &'static str,
    factory: GuestFactory,
    profile: ExecutionProfile,
}

impl std::fmt::Debug for NodeLauncher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeLauncher").field("name", &self.name).finish()
    }
}

impl NodeLauncher {
    /// Creates a launcher with the calibrated Browsix-async JavaScript profile.
    pub fn new(name: &'static str, factory: GuestFactory) -> NodeLauncher {
        NodeLauncher {
            name,
            factory,
            profile: ExecutionProfile::browsix_async(),
        }
    }

    /// Overrides the execution profile (tests disable compute injection).
    pub fn with_profile(mut self, profile: ExecutionProfile) -> NodeLauncher {
        self.profile = profile;
        self
    }
}

impl ProgramLauncher for NodeLauncher {
    fn launch(&self, ctx: LaunchContext) {
        // Node's callback-based APIs correspond to asynchronous system calls.
        run_guest_process(ctx, &self.factory, self.profile.clone(), false);
    }

    fn runtime_name(&self) -> &'static str {
        "node.js"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{factory, FnProgram};

    #[test]
    fn launcher_uses_async_js_profile() {
        let launcher = NodeLauncher::new("cat", factory(|| FnProgram::new("cat", |_| 0)));
        assert_eq!(launcher.runtime_name(), "node.js");
        assert_eq!(launcher.profile.convention, crate::SyscallConvention::Async);
        let quiet = launcher.with_profile(ExecutionProfile::instant(crate::SyscallConvention::Async));
        assert_eq!(quiet.profile.compute_ns_per_unit, 0);
        assert!(format!("{quiet:?}").contains("cat"));
    }
}
