//! The Emscripten (C/C++) runtime integration.
//!
//! Browsix-enhanced Emscripten supports two modes, selected at compile time:
//!
//! * **asm.js with synchronous system calls** — fast, but requires
//!   SharedArrayBuffer/Atomics (Chrome behind flags at publication time) and
//!   cannot support `fork`;
//! * **Emterpreter with asynchronous system calls** — works in every browser
//!   and supports `fork` (the runtime snapshots the C heap/stack and resume
//!   point and ships it to the kernel), but interprets the program and is
//!   roughly 4× slower.
//!
//! [`EmscriptenLauncher`] reproduces both modes.  If the simulated browser has
//! no shared memory, an asm.js-mode program transparently falls back to the
//! asynchronous convention, exactly as a developer would have to do to target
//! Firefox or Edge.

use browsix_core::exec::{LaunchContext, ProgramLauncher};

use crate::browsix_env::run_guest_process;
use crate::profile::ExecutionProfile;
use crate::program::GuestFactory;

/// The compilation mode chosen for a C/C++ program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmscriptenMode {
    /// asm.js output, synchronous system calls, no `fork`.
    AsmJs,
    /// Emterpreter output, asynchronous system calls, `fork` supported.
    Emterpreter,
}

/// Launches a C/C++ guest program compiled "with Emscripten".
pub struct EmscriptenLauncher {
    name: &'static str,
    factory: GuestFactory,
    mode: EmscriptenMode,
    profile: ExecutionProfile,
}

impl std::fmt::Debug for EmscriptenLauncher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmscriptenLauncher")
            .field("name", &self.name)
            .field("mode", &self.mode)
            .finish()
    }
}

impl EmscriptenLauncher {
    /// Creates a launcher for `factory` in the given mode, with the standard
    /// calibrated profile for that mode.
    pub fn new(name: &'static str, factory: GuestFactory, mode: EmscriptenMode) -> EmscriptenLauncher {
        let profile = match mode {
            EmscriptenMode::AsmJs => ExecutionProfile::browsix_sync_asmjs(),
            EmscriptenMode::Emterpreter => ExecutionProfile::browsix_emterpreter(),
        };
        EmscriptenLauncher {
            name,
            factory,
            mode,
            profile,
        }
    }

    /// Overrides the execution profile (used by functional tests to disable
    /// compute injection, and by the benchmark harness to scale experiments).
    pub fn with_profile(mut self, profile: ExecutionProfile) -> EmscriptenLauncher {
        self.profile = profile;
        self
    }

    /// The launcher's compilation mode.
    pub fn mode(&self) -> EmscriptenMode {
        self.mode
    }
}

impl ProgramLauncher for EmscriptenLauncher {
    fn launch(&self, ctx: LaunchContext) {
        let prefer_sync = self.mode == EmscriptenMode::AsmJs;
        run_guest_process(ctx, &self.factory, self.profile.clone(), prefer_sync);
    }

    fn runtime_name(&self) -> &'static str {
        match self.mode {
            EmscriptenMode::AsmJs => "emscripten (asm.js)",
            EmscriptenMode::Emterpreter => "emscripten (emterpreter)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{factory, FnProgram};

    #[test]
    fn launcher_reports_mode_and_runtime_name() {
        let asmjs = EmscriptenLauncher::new(
            "pdflatex",
            factory(|| FnProgram::new("pdflatex", |_| 0)),
            EmscriptenMode::AsmJs,
        );
        assert_eq!(asmjs.mode(), EmscriptenMode::AsmJs);
        assert_eq!(asmjs.runtime_name(), "emscripten (asm.js)");
        assert_eq!(asmjs.profile.convention, crate::SyscallConvention::Sync);

        let emterp = EmscriptenLauncher::new(
            "make",
            factory(|| FnProgram::new("make", |_| 0)),
            EmscriptenMode::Emterpreter,
        )
        .with_profile(ExecutionProfile::instant(crate::SyscallConvention::Async));
        assert_eq!(emterp.runtime_name(), "emscripten (emterpreter)");
        assert_eq!(emterp.profile.compute_ns_per_unit, 0);
        let formatted = format!("{emterp:?}");
        assert!(formatted.contains("make"));
    }
}
