//! Guest programs.
//!
//! A [`GuestProgram`] stands in for a binary compiled to JavaScript: the same
//! code runs unmodified whether it is executed "natively", under the
//! simulated Node.js-on-Linux baseline, or as a Browsix process inside a
//! worker — the only thing that changes is the [`RuntimeEnv`] it is handed,
//! which is precisely the paper's "unmodified programs" property.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::env::RuntimeEnv;

/// A program written against the [`RuntimeEnv`] interface.
pub trait GuestProgram: Send {
    /// Runs the program to completion, returning its exit code.
    fn run(&mut self, env: &mut dyn RuntimeEnv) -> i32;

    /// The program's name, for diagnostics.
    fn name(&self) -> &str {
        "guest"
    }
}

/// A function-backed guest program, convenient for small utilities and tests.
pub struct FnProgram<F> {
    name: String,
    func: F,
}

impl<F> FnProgram<F>
where
    F: FnMut(&mut dyn RuntimeEnv) -> i32 + Send,
{
    /// Wraps a closure as a guest program.
    pub fn new(name: &str, func: F) -> FnProgram<F> {
        FnProgram {
            name: name.to_owned(),
            func,
        }
    }
}

impl<F> GuestProgram for FnProgram<F>
where
    F: FnMut(&mut dyn RuntimeEnv) -> i32 + Send,
{
    fn run(&mut self, env: &mut dyn RuntimeEnv) -> i32 {
        (self.func)(env)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A factory producing fresh instances of a guest program — the analogue of
/// an executable image that can be started any number of times.
pub type GuestFactory = Arc<dyn Fn() -> Box<dyn GuestProgram> + Send + Sync>;

/// Creates a [`GuestFactory`] from a constructor closure.
pub fn factory<P, F>(make: F) -> GuestFactory
where
    P: GuestProgram + 'static,
    F: Fn() -> P + Send + Sync + 'static,
{
    Arc::new(move || Box::new(make()) as Box<dyn GuestProgram>)
}

/// Creates a [`GuestFactory`] directly from a program body: the closure is
/// cloned for each process instance, which is how most utilities and tests
/// define their programs.
pub fn guest<F>(name: &'static str, body: F) -> GuestFactory
where
    F: Fn(&mut dyn RuntimeEnv) -> i32 + Send + Sync + Clone + 'static,
{
    Arc::new(move || Box::new(FnProgram::new(name, body.clone())) as Box<dyn GuestProgram>)
}

/// A table of guest programs keyed by absolute path, used by the native
/// baseline (which has no kernel registry) and by the shell's `PATH` search.
#[derive(Clone, Default)]
pub struct ProgramTable {
    programs: Arc<RwLock<HashMap<String, GuestFactory>>>,
}

impl std::fmt::Debug for ProgramTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramTable")
            .field("programs", &self.programs.read().len())
            .finish()
    }
}

impl ProgramTable {
    /// Creates an empty table.
    pub fn new() -> ProgramTable {
        ProgramTable::default()
    }

    /// Registers a program at an absolute path.
    pub fn register(&self, path: &str, factory: GuestFactory) {
        self.programs.write().insert(browsix_fs::path::normalize(path), factory);
    }

    /// Looks up a program by exact path, falling back to a basename match in
    /// `/usr/bin` (so "ls" finds "/usr/bin/ls").
    pub fn lookup(&self, path_or_name: &str) -> Option<GuestFactory> {
        let programs = self.programs.read();
        if let Some(factory) = programs.get(&browsix_fs::path::normalize(path_or_name)) {
            return Some(Arc::clone(factory));
        }
        if !path_or_name.contains('/') {
            if let Some(factory) = programs.get(&format!("/usr/bin/{path_or_name}")) {
                return Some(Arc::clone(factory));
            }
            if let Some(factory) = programs.get(&format!("/bin/{path_or_name}")) {
                return Some(Arc::clone(factory));
            }
        }
        None
    }

    /// Instantiates a program by path or name.
    pub fn instantiate(&self, path_or_name: &str) -> Option<Box<dyn GuestProgram>> {
        self.lookup(path_or_name).map(|factory| factory())
    }

    /// All registered paths, sorted.
    pub fn paths(&self) -> Vec<String> {
        let mut paths: Vec<String> = self.programs.read().keys().cloned().collect();
        paths.sort();
        paths
    }

    /// Number of registered programs.
    pub fn len(&self) -> usize {
        self.programs.read().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_program_runs_and_reports_name() {
        let program = FnProgram::new("true", |_env: &mut dyn RuntimeEnv| 0);
        assert_eq!(program.name(), "true");
    }

    #[test]
    fn table_lookup_by_path_and_name() {
        let table = ProgramTable::new();
        assert!(table.is_empty());
        table.register("/usr/bin/echo", factory(|| FnProgram::new("echo", |_| 0)));
        table.register("/bin/sh", factory(|| FnProgram::new("sh", |_| 0)));
        assert!(table.lookup("/usr/bin/echo").is_some());
        assert!(table.lookup("echo").is_some());
        assert!(table.lookup("sh").is_some());
        assert!(table.lookup("/usr/bin/../bin/echo").is_some());
        assert!(table.lookup("missing").is_none());
        assert_eq!(table.len(), 2);
        assert_eq!(table.paths(), vec!["/bin/sh".to_string(), "/usr/bin/echo".to_string()]);
        assert!(table.instantiate("echo").is_some());
        assert!(table.instantiate("nope").is_none());
    }
}
