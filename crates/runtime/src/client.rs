//! The worker-side system-call client.
//!
//! This is the "common services" syscall layer of §4.2: a typed API over the
//! browser's message-passing primitives that language runtimes use to talk to
//! the shared kernel.  It implements both conventions from §3.2:
//!
//! * **asynchronous** — the call is structured-clone encoded and posted to the
//!   kernel; the worker then waits for the matching response message.  Every
//!   buffer is copied twice.
//! * **synchronous** — at startup the client allocates a `SharedArrayBuffer`
//!   heap and registers it (plus a response offset and a wake address) with
//!   the kernel.  Calls carry only integers; bulk data is copied directly
//!   between the kernel and the shared heap, and the worker blocks in
//!   `Atomics.wait` until the kernel stores the result and notifies it.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use browsix_browser::time::precise_delay;
use browsix_browser::{AtomicsWaitResult, Message, PlatformConfig, SharedArrayBuffer, WorkerScope};
use browsix_core::exec::{ForkImage, LaunchContext, ProcessStart};
use browsix_core::{Errno, KernelEvent, Signal, SysResult, Syscall, Transport};
use crossbeam::channel::Sender;

/// Size of the shared heap allocated for synchronous system calls.
const SYNC_HEAP_BYTES: usize = 512 * 1024;
/// Offset of the wake address within the shared heap.
const WAKE_OFFSET: usize = 0;
/// Offset of the response area within the shared heap.
const RESP_OFFSET: usize = 64;
/// Offset of the outgoing-data area within the shared heap.
const DATA_OFFSET: usize = 256 * 1024;
/// Capacity of the outgoing-data area.
pub const SYNC_DATA_CAPACITY: usize = SYNC_HEAP_BYTES - DATA_OFFSET;

/// Which convention the client ended up using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientMode {
    /// Asynchronous message-passing system calls.
    Async,
    /// Synchronous shared-memory system calls.
    Sync,
}

struct SyncState {
    sab: SharedArrayBuffer,
}

/// The per-process system-call client.
pub struct SyscallClient {
    pid: u32,
    config: PlatformConfig,
    kernel: Sender<KernelEvent>,
    scope: WorkerScope,
    mode: ClientMode,
    next_seq: u64,
    stashed: HashMap<u64, SysResult>,
    signals: VecDeque<Signal>,
    sync: Option<SyncState>,
    terminated: bool,
}

impl std::fmt::Debug for SyscallClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyscallClient")
            .field("pid", &self.pid)
            .field("mode", &self.mode)
            .field("terminated", &self.terminated)
            .finish()
    }
}

impl SyscallClient {
    /// Waits for the kernel's init message and builds the client.
    ///
    /// `prefer_sync` asks for the synchronous convention; it is honoured only
    /// when the simulated browser supports shared memory, mirroring the
    /// Chrome-only status of SharedArrayBuffer at publication time.
    pub fn start(ctx: LaunchContext, prefer_sync: bool) -> (SyscallClient, ProcessStart) {
        let LaunchContext {
            pid,
            config,
            kernel,
            scope,
        } = ctx;
        let mut client = SyscallClient {
            pid,
            config,
            kernel,
            scope,
            mode: ClientMode::Async,
            next_seq: 0,
            stashed: HashMap::new(),
            signals: VecDeque::new(),
            sync: None,
            terminated: false,
        };
        let start = client.wait_for_init();
        if prefer_sync && client.config.shared_memory {
            let sab = SharedArrayBuffer::new(SYNC_HEAP_BYTES);
            let _ = client.kernel.send(KernelEvent::RegisterSyncHeap {
                pid: client.pid,
                sab: sab.clone(),
                resp_offset: RESP_OFFSET,
                wake_offset: WAKE_OFFSET,
            });
            client.sync = Some(SyncState { sab });
            client.mode = ClientMode::Sync;
        }
        (client, start)
    }

    /// The process id assigned by the kernel.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Which convention the client is using.
    pub fn mode(&self) -> ClientMode {
        self.mode
    }

    /// Whether the kernel has terminated this worker (SIGKILL).
    pub fn terminated(&self) -> bool {
        self.terminated
    }

    /// The platform configuration in effect.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    fn wait_for_init(&mut self) -> ProcessStart {
        loop {
            match self.scope.recv() {
                Ok(msg) => {
                    if msg.get_str("type") == Some("init") {
                        return decode_init(&msg);
                    }
                    self.handle_out_of_band(&msg);
                }
                Err(_) => {
                    self.terminated = true;
                    return ProcessStart::default();
                }
            }
        }
    }

    fn handle_out_of_band(&mut self, msg: &Message) {
        if msg.get_str("type") == Some("signal") {
            if let Some(signal) = msg.get_int("signal").and_then(|n| Signal::from_number(n as i32)) {
                self.signals.push_back(signal);
            }
        }
    }

    /// Drains signals delivered to this process (checking for newly arrived
    /// messages first).
    pub fn pending_signals(&mut self) -> Vec<Signal> {
        while let Ok(Some(msg)) = self.scope.try_recv() {
            self.handle_out_of_band(&msg);
        }
        self.signals.drain(..).collect()
    }

    /// Issues a system call and waits for its result.
    pub fn call(&mut self, call: Syscall) -> SysResult {
        if self.terminated {
            return SysResult::Err(Errno::EINTR);
        }
        match self.mode {
            ClientMode::Sync => self.call_sync(call),
            ClientMode::Async => self.call_async(call),
        }
    }

    /// Issues a system call without waiting for a result (used for `exit`,
    /// which never gets a reply).
    pub fn send_only(&mut self, call: Syscall) {
        match self.mode {
            ClientMode::Sync => {
                let _ = self.kernel.send(KernelEvent::Syscall {
                    pid: self.pid,
                    transport: Transport::Sync { call },
                });
            }
            ClientMode::Async => {
                self.next_seq += 1;
                let msg = call.to_message();
                precise_delay(self.config.post_cost(msg.byte_size()));
                let _ = self.kernel.send(KernelEvent::Syscall {
                    pid: self.pid,
                    transport: Transport::Async {
                        seq: self.next_seq,
                        msg,
                    },
                });
            }
        }
    }

    /// Copies `data` into the shared heap's outgoing-data area (synchronous
    /// convention) and returns the byte-source descriptor for it.  Falls back
    /// to an inline copy when running asynchronously.
    pub fn stage_write(&mut self, data: &[u8]) -> browsix_core::ByteSource {
        match (&self.mode, &self.sync) {
            (ClientMode::Sync, Some(state)) if data.len() <= SYNC_DATA_CAPACITY => {
                let _ = state.sab.write_bytes(DATA_OFFSET, data);
                browsix_core::ByteSource::SharedHeap {
                    offset: DATA_OFFSET as u32,
                    len: data.len() as u32,
                }
            }
            _ => browsix_core::ByteSource::Inline(data.to_vec()),
        }
    }

    /// The maximum number of bytes [`SyscallClient::stage_write`] can place in
    /// the shared heap at once.
    pub fn max_staged_write(&self) -> usize {
        match self.mode {
            ClientMode::Sync => SYNC_DATA_CAPACITY,
            ClientMode::Async => usize::MAX,
        }
    }

    fn call_async(&mut self, call: Syscall) -> SysResult {
        self.next_seq += 1;
        let seq = self.next_seq;
        let msg = call.to_message();
        // postMessage to the kernel: pay the message + structured-clone cost.
        precise_delay(self.config.post_cost(msg.byte_size()));
        if self
            .kernel
            .send(KernelEvent::Syscall {
                pid: self.pid,
                transport: Transport::Async { seq, msg },
            })
            .is_err()
        {
            self.terminated = true;
            return SysResult::Err(Errno::EINTR);
        }
        self.wait_for_response(seq)
    }

    fn wait_for_response(&mut self, seq: u64) -> SysResult {
        loop {
            if let Some(result) = self.stashed.remove(&seq) {
                return result;
            }
            match self.scope.recv() {
                Ok(msg) => match msg.get_str("type") {
                    Some("syscall-response") => {
                        let response_seq = msg.get_int("seq").unwrap_or(-1) as u64;
                        let result = msg
                            .get("result")
                            .and_then(SysResult::from_message)
                            .unwrap_or(SysResult::Err(Errno::EIO));
                        if response_seq == seq {
                            return result;
                        }
                        self.stashed.insert(response_seq, result);
                    }
                    _ => self.handle_out_of_band(&msg),
                },
                Err(_) => {
                    self.terminated = true;
                    return SysResult::Err(Errno::EINTR);
                }
            }
        }
    }

    fn call_sync(&mut self, call: Syscall) -> SysResult {
        // fork is incompatible with the synchronous convention (§3.2).
        if matches!(call, Syscall::Fork { .. }) {
            return SysResult::Err(Errno::ENOSYS);
        }
        let Some(state) = &self.sync else {
            return SysResult::Err(Errno::EFAULT);
        };
        // Arm the wake address, send the (integer-only) request, block.
        if state.sab.store_i32(WAKE_OFFSET, 0).is_err() {
            return SysResult::Err(Errno::EFAULT);
        }
        precise_delay(self.config.post_cost(32));
        if self
            .kernel
            .send(KernelEvent::Syscall {
                pid: self.pid,
                transport: Transport::Sync { call },
            })
            .is_err()
        {
            self.terminated = true;
            return SysResult::Err(Errno::EINTR);
        }
        loop {
            if self.scope.terminated() {
                self.terminated = true;
                return SysResult::Err(Errno::EINTR);
            }
            match state.sab.wait(WAKE_OFFSET, 0, Some(Duration::from_millis(100))) {
                Ok(AtomicsWaitResult::TimedOut) => continue,
                Ok(_) => break,
                Err(_) => return SysResult::Err(Errno::EFAULT),
            }
        }
        // Decode [len][payload] from the response area.
        let len_bytes = match state.sab.read_bytes(RESP_OFFSET, 4) {
            Ok(bytes) => bytes,
            Err(_) => return SysResult::Err(Errno::EFAULT),
        };
        let len = u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
        let payload = match state.sab.read_bytes(RESP_OFFSET + 4, len) {
            Ok(bytes) => bytes,
            Err(_) => return SysResult::Err(Errno::EFAULT),
        };
        SysResult::decode_bytes(&payload).unwrap_or(SysResult::Err(Errno::EIO))
    }
}

fn decode_init(msg: &Message) -> ProcessStart {
    let args = msg
        .get("args")
        .and_then(Message::as_array)
        .map(|items| items.iter().filter_map(|m| m.as_str().map(|s| s.to_owned())).collect())
        .unwrap_or_default();
    let env = msg
        .get("env")
        .and_then(Message::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(|pair| {
                    let pair = pair.as_array()?;
                    Some((pair.first()?.as_str()?.to_owned(), pair.get(1)?.as_str()?.to_owned()))
                })
                .collect()
        })
        .unwrap_or_default();
    let cwd = msg.get_str("cwd").unwrap_or("/").to_owned();
    let blob_url = msg.get_str("blob_url").map(|s| s.to_owned());
    let fork_image = msg.get_bytes("fork_image").map(|bytes| ForkImage {
        image: bytes.to_vec(),
        resume_point: msg.get_int("fork_resume").unwrap_or(0) as u64,
    });
    ProcessStart {
        args,
        env,
        cwd,
        blob_url,
        fork_image,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_decoding_extracts_fields() {
        let msg = Message::map()
            .with("type", "init")
            .with("args", Message::from(vec!["ls".to_string(), "-l".to_string()]))
            .with(
                "env",
                Message::Array(vec![Message::Array(vec![
                    Message::from("PATH"),
                    Message::from("/usr/bin"),
                ])]),
            )
            .with("cwd", "/home")
            .with("blob_url", "blob:browsix/1")
            .with("fork_image", vec![1u8, 2, 3])
            .with("fork_resume", 7i64);
        let start = decode_init(&msg);
        assert_eq!(start.args, vec!["ls", "-l"]);
        assert_eq!(start.env, vec![("PATH".to_string(), "/usr/bin".to_string())]);
        assert_eq!(start.cwd, "/home");
        assert_eq!(start.blob_url.as_deref(), Some("blob:browsix/1"));
        let image = start.fork_image.unwrap();
        assert_eq!(image.image, vec![1, 2, 3]);
        assert_eq!(image.resume_point, 7);
    }

    #[test]
    fn init_decoding_tolerates_missing_fields() {
        let start = decode_init(&Message::map().with("type", "init"));
        assert!(start.args.is_empty());
        assert!(start.env.is_empty());
        assert_eq!(start.cwd, "/");
        assert!(start.blob_url.is_none());
        assert!(start.fork_image.is_none());
    }

    #[test]
    fn sync_layout_constants_are_consistent() {
        const { assert!(RESP_OFFSET > WAKE_OFFSET + 4) };
        const { assert!(DATA_OFFSET > RESP_OFFSET) };
        const { assert!(SYNC_DATA_CAPACITY > 64 * 1024) };
        const { assert!(DATA_OFFSET + SYNC_DATA_CAPACITY <= SYNC_HEAP_BYTES) };
    }
}
