//! The worker-side system-call client.
//!
//! This is the "common services" syscall layer of §4.2: a typed API over the
//! browser's message-passing primitives that language runtimes use to talk to
//! the shared kernel.  Calls are issued as [`SyscallBatch`] submissions —
//! [`SyscallClient::submit`] sends a whole batch in one round trip and
//! returns one result per entry; [`SyscallClient::call`] is the one-entry
//! convenience.  Both transport conventions from §3.2 carry the same encoded
//! frames:
//!
//! * **asynchronous** — the encoded batch is posted to the kernel inside a
//!   structured-clone message; the worker then waits for the single response
//!   message carrying the encoded completion batch.  The clone cost is paid
//!   once per batch instead of once per call.
//! * **synchronous** — at startup the client allocates a `SharedArrayBuffer`
//!   heap and registers it (plus a response offset and a wake address) with
//!   the kernel.  Submissions carry only integers; bulk data is staged in the
//!   shared heap, and the worker blocks in `Atomics.wait` until the kernel
//!   writes the encoded completion batch into the heap and notifies it.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use browsix_browser::time::precise_delay;
use browsix_browser::{AtomicsWaitResult, Message, PlatformConfig, SharedArrayBuffer, WorkerScope};
use browsix_core::exec::{ForkImage, LaunchContext, ProcessStart};
use browsix_core::ring::{Ring, RingGeometry};
use browsix_core::wire::Reader;
use browsix_core::{CompletionBatch, Errno, KernelEvent, Signal, SysResult, Syscall, SyscallBatch, Transport};
use crossbeam::channel::Sender;

/// Size of the shared heap allocated for synchronous system calls.
const SYNC_HEAP_BYTES: usize = 1024 * 1024;
/// Offset of the wake address within the shared heap.
const WAKE_OFFSET: usize = 0;
/// Offset of the response area within the shared heap.
const RESP_OFFSET: usize = 64;
/// Offset of the outgoing-data area within the shared heap.
const DATA_OFFSET: usize = 256 * 1024;
/// Offset of the persistent syscall-ring region (submission and completion
/// queues plus the registered-buffer table) within the shared heap.
const RING_REGION_OFFSET: usize = 512 * 1024;
/// Capacity of the outgoing-data area.
pub const SYNC_DATA_CAPACITY: usize = RING_REGION_OFFSET - DATA_OFFSET;
/// Fixed per-message overhead charged on top of the encoded batch (the
/// envelope fields of the structured-clone message).
const MESSAGE_ENVELOPE_BYTES: usize = 24;
/// Process-environment variable that disables the ring transport (set to
/// `"0"`); the benchmarks use it to compare ring and framed submission.
pub const RINGS_ENV_VAR: &str = "BROWSIX_SYSCALL_RINGS";

/// Which convention the client ended up using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientMode {
    /// Asynchronous message-passing system calls.
    Async,
    /// Synchronous shared-memory system calls.
    Sync,
}

struct SyncState {
    sab: SharedArrayBuffer,
    /// The persistent submission/completion ring, once the kernel has
    /// accepted its geometry.
    ring: Option<Ring>,
}

/// The per-process system-call client.
pub struct SyscallClient {
    pid: u32,
    config: PlatformConfig,
    kernel: Sender<KernelEvent>,
    scope: WorkerScope,
    mode: ClientMode,
    next_seq: u64,
    stashed: HashMap<u64, CompletionBatch>,
    signals: VecDeque<Signal>,
    shared_maps: HashMap<u64, SharedArrayBuffer>,
    sync: Option<SyncState>,
    terminated: bool,
}

impl std::fmt::Debug for SyscallClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyscallClient")
            .field("pid", &self.pid)
            .field("mode", &self.mode)
            .field("terminated", &self.terminated)
            .finish()
    }
}

impl SyscallClient {
    /// Waits for the kernel's init message and builds the client.
    ///
    /// `prefer_sync` asks for the synchronous convention; it is honoured only
    /// when the simulated browser supports shared memory, mirroring the
    /// Chrome-only status of SharedArrayBuffer at publication time.
    pub fn start(ctx: LaunchContext, prefer_sync: bool) -> (SyscallClient, ProcessStart) {
        let LaunchContext {
            pid,
            config,
            kernel,
            scope,
        } = ctx;
        let mut client = SyscallClient {
            pid,
            config,
            kernel,
            scope,
            mode: ClientMode::Async,
            next_seq: 0,
            stashed: HashMap::new(),
            signals: VecDeque::new(),
            shared_maps: HashMap::new(),
            sync: None,
            terminated: false,
        };
        let start = client.wait_for_init();
        if prefer_sync && client.config.shared_memory {
            let sab = SharedArrayBuffer::new(SYNC_HEAP_BYTES);
            let _ = client.kernel.send(KernelEvent::RegisterSyncHeap {
                pid: client.pid,
                sab: sab.clone(),
                resp_offset: RESP_OFFSET,
                wake_offset: WAKE_OFFSET,
            });
            client.sync = Some(SyncState {
                sab: sab.clone(),
                ring: None,
            });
            client.mode = ClientMode::Sync;
            // The persistent rings ride the same heap; `BROWSIX_SYSCALL_RINGS=0`
            // in the process environment keeps the framed transport (how the
            // benchmarks compare the two submission paths).
            let rings_disabled = start.env.iter().any(|(k, v)| k == RINGS_ENV_VAR && v == "0");
            if !rings_disabled {
                client.setup_ring(sab);
            }
        }
        (client, start)
    }

    /// Asks the kernel to map a submission/completion ring over the
    /// registered heap.  The request itself travels over the framed
    /// transport — the ring does not exist until the kernel accepts the
    /// geometry.
    fn setup_ring(&mut self, sab: SharedArrayBuffer) {
        let geo = RingGeometry::standard(RING_REGION_OFFSET as u32);
        if !geo.validate(sab.len()) {
            return;
        }
        let accepted = self.call(Syscall::RingSetup {
            sq_offset: geo.sq_offset,
            cq_offset: geo.cq_offset,
            slots: geo.slots,
            slot_bytes: geo.slot_bytes,
            buf_offset: geo.buf_offset,
            buf_count: geo.buf_count,
            buf_bytes: geo.buf_bytes,
        }) == SysResult::Ok;
        if accepted {
            if let Some(state) = self.sync.as_mut() {
                state.ring = Some(Ring::new(sab, geo));
            }
        }
    }

    /// Whether system calls are travelling over a persistent ring.
    pub fn ring_enabled(&self) -> bool {
        self.sync.as_ref().is_some_and(|s| s.ring.is_some())
    }

    /// The process id assigned by the kernel.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Which convention the client is using.
    pub fn mode(&self) -> ClientMode {
        self.mode
    }

    /// Whether the kernel has terminated this worker (SIGKILL).
    pub fn terminated(&self) -> bool {
        self.terminated
    }

    /// The platform configuration in effect.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    fn wait_for_init(&mut self) -> ProcessStart {
        loop {
            match self.scope.recv() {
                Ok(msg) => {
                    if msg.get_str("type") == Some("init") {
                        return decode_init(&msg);
                    }
                    self.handle_out_of_band(&msg);
                }
                Err(_) => {
                    self.terminated = true;
                    return ProcessStart::default();
                }
            }
        }
    }

    fn handle_out_of_band(&mut self, msg: &Message) {
        match msg.get_str("type") {
            Some("signal") => {
                if let Some(signal) = msg.get_int("signal").and_then(|n| Signal::from_number(n as i32)) {
                    self.signals.push_back(signal);
                }
            }
            Some("mmap-shared") => {
                // The kernel delivers a MAP_SHARED mapping's backing buffer
                // before the mmap call completes; stash it under the base
                // address for the runtime to pick up with `take_shared_map`.
                if let (Some(addr), Some(sab)) = (msg.get_int("addr"), msg.get("sab").and_then(Message::as_shared)) {
                    self.shared_maps.insert(addr as u64, sab.clone());
                }
            }
            _ => {}
        }
    }

    /// Takes the backing buffer the kernel delivered for the shared mapping
    /// at `addr` (draining newly arrived messages first).  The kernel posts
    /// the `mmap-shared` message *before* completing the `mmap` call on
    /// either transport convention, so once `mmap` has returned the buffer
    /// is here.
    pub fn take_shared_map(&mut self, addr: u64) -> Option<SharedArrayBuffer> {
        while let Ok(Some(msg)) = self.scope.try_recv() {
            self.handle_out_of_band(&msg);
        }
        self.shared_maps.remove(&addr)
    }

    /// Drains signals delivered to this process (checking for newly arrived
    /// messages first).
    pub fn pending_signals(&mut self) -> Vec<Signal> {
        while let Ok(Some(msg)) = self.scope.try_recv() {
            self.handle_out_of_band(&msg);
        }
        self.signals.drain(..).collect()
    }

    /// Issues a single system call and waits for its result (a one-entry
    /// [`SyscallClient::submit`]).
    pub fn call(&mut self, call: Syscall) -> SysResult {
        self.submit(SyscallBatch::single(call))
            .pop()
            .unwrap_or(SysResult::Err(Errno::EIO))
    }

    /// Submits a whole batch in one kernel round trip and returns one result
    /// per entry, in submission order.  Entries are dispatched in order
    /// against the same task state; entries that block inside the kernel
    /// complete individually without holding up the rest, and the call
    /// returns once every entry has completed.
    pub fn submit(&mut self, batch: SyscallBatch) -> Vec<SysResult> {
        let n = batch.len();
        if n == 0 {
            return Vec::new();
        }
        if self.terminated {
            return vec![SysResult::Err(Errno::EINTR); n];
        }
        match self.mode {
            ClientMode::Sync => {
                if let Some(results) = self.try_submit_ring(&batch) {
                    return results;
                }
                self.submit_sync(batch)
            }
            ClientMode::Async => self.submit_async(batch),
        }
    }

    /// Issues a system call without waiting for a result (used for `exit`,
    /// which never gets a reply).
    pub fn send_only(&mut self, call: Syscall) {
        let payload = SyscallBatch::single(call).encode();
        let transport = match self.mode {
            ClientMode::Sync => Transport::Sync { payload },
            ClientMode::Async => {
                self.next_seq += 1;
                precise_delay(self.config.post_cost(payload.len() + MESSAGE_ENVELOPE_BYTES));
                Transport::Async {
                    seq: self.next_seq,
                    payload,
                }
            }
        };
        let _ = self.kernel.send(KernelEvent::Syscall {
            pid: self.pid,
            transport,
        });
    }

    /// Copies `data` into the shared heap's outgoing-data area (synchronous
    /// convention) and returns the byte-source descriptor for it.  Falls back
    /// to an inline copy when running asynchronously.
    pub fn stage_write(&mut self, data: &[u8]) -> browsix_core::ByteSource {
        self.stage_writes(&[data]).pop().expect("one source per buffer")
    }

    /// Stages several buffers back to back in the shared heap, one
    /// [`ByteSource`](browsix_core::ByteSource) per buffer, for a batch of
    /// data-carrying entries submitted together.  Buffers that do not fit in
    /// the data area fall back to inline copies.
    pub fn stage_writes(&mut self, bufs: &[&[u8]]) -> Vec<browsix_core::ByteSource> {
        match (&self.mode, &self.sync) {
            (ClientMode::Sync, Some(state)) => {
                let mut cursor = DATA_OFFSET;
                bufs.iter()
                    .map(|data| {
                        if cursor + data.len() <= SYNC_HEAP_BYTES && state.sab.write_bytes(cursor, data).is_ok() {
                            let source = browsix_core::ByteSource::SharedHeap {
                                offset: cursor as u32,
                                len: data.len() as u32,
                            };
                            cursor += data.len();
                            source
                        } else {
                            browsix_core::ByteSource::Inline(data.to_vec())
                        }
                    })
                    .collect()
            }
            _ => bufs
                .iter()
                .map(|data| browsix_core::ByteSource::Inline(data.to_vec()))
                .collect(),
        }
    }

    /// The maximum number of bytes [`SyscallClient::stage_write`] can place in
    /// the shared heap at once.
    pub fn max_staged_write(&self) -> usize {
        match self.mode {
            ClientMode::Sync => SYNC_DATA_CAPACITY,
            ClientMode::Async => usize::MAX,
        }
    }

    fn submit_async(&mut self, batch: SyscallBatch) -> Vec<SysResult> {
        let n = batch.len();
        self.next_seq += 1;
        let seq = self.next_seq;
        let payload = batch.encode();
        // postMessage to the kernel: the whole batch crosses the worker
        // boundary as one structured clone, so the message + clone cost is
        // paid once per batch rather than once per call.
        precise_delay(self.config.post_cost(payload.len() + MESSAGE_ENVELOPE_BYTES));
        if self
            .kernel
            .send(KernelEvent::Syscall {
                pid: self.pid,
                transport: Transport::Async { seq, payload },
            })
            .is_err()
        {
            self.terminated = true;
            return vec![SysResult::Err(Errno::EINTR); n];
        }
        self.wait_for_completions(seq, n)
    }

    fn wait_for_completions(&mut self, seq: u64, n: usize) -> Vec<SysResult> {
        loop {
            if let Some(batch) = self.stashed.remove(&seq) {
                return results_from(batch, n);
            }
            match self.scope.recv() {
                Ok(msg) => match msg.get_str("type") {
                    Some("syscall-response") => {
                        let response_seq = msg.get_int("seq").unwrap_or(-1) as u64;
                        let batch = msg
                            .get_bytes("completions")
                            .and_then(CompletionBatch::decode)
                            .unwrap_or_default();
                        if response_seq == seq {
                            return results_from(batch, n);
                        }
                        self.stashed.insert(response_seq, batch);
                    }
                    _ => self.handle_out_of_band(&msg),
                },
                Err(_) => {
                    self.terminated = true;
                    return vec![SysResult::Err(Errno::EINTR); n];
                }
            }
        }
    }

    /// Submits the batch over the persistent ring, if one is mapped and every
    /// entry is ring-safe.  Returns `None` to fall back to the framed
    /// transport.
    fn try_submit_ring(&mut self, batch: &SyscallBatch) -> Option<Vec<SysResult>> {
        let ring = self.sync.as_ref()?.ring.clone()?;
        let payload_cap = ring.geometry().slot_payload_bytes();
        let buf_cap = ring.geometry().buf_bytes;
        let mut encoded = Vec::with_capacity(batch.len());
        for call in &batch.entries {
            if !ring_safe(call, buf_cap) {
                return None;
            }
            let mut frame = Vec::with_capacity(32);
            call.encode_into(&mut frame);
            if frame.len() > payload_cap {
                return None;
            }
            encoded.push(frame);
        }
        Some(self.pump_ring(&ring, &encoded))
    }

    /// Drives one batch through the ring: write submission entries in place
    /// (chunked through the queue in waves when the batch is larger than it),
    /// ring the doorbell only on an observed kernel park, and drain the
    /// completion queue — blocking in `Atomics.wait` on its tail — until
    /// every entry has completed.  No per-batch message or structured clone
    /// is paid anywhere on this path.
    fn pump_ring(&mut self, ring: &Ring, encoded: &[Vec<u8>]) -> Vec<SysResult> {
        let n = encoded.len();
        let mut results = vec![SysResult::Err(Errno::EIO); n];
        let mut submitted = 0usize;
        let mut completed = 0usize;
        while completed < n {
            while submitted < n && ring.push_sqe(submitted as u32, &encoded[submitted]) {
                submitted += 1;
            }
            // Doorbell protocol: entries are published first, then the
            // kernel's NEED_WAKEUP flag is consumed.  Flag set → the kernel
            // parked after draining the queue dry and needs the (free,
            // Atomics.notify-style) wake event; flag clear → it is already
            // draining and will observe the new tail itself.
            if ring.take_doorbell() && self.kernel.send(KernelEvent::Doorbell { pid: self.pid }).is_err() {
                self.terminated = true;
                return vec![SysResult::Err(Errno::EINTR); n];
            }
            let seen_tail = ring.cq_tail();
            let mut progressed = false;
            while let Some((user_data, frame)) = ring.pop_cqe() {
                let result = resolve_cqe(ring, &frame);
                if let Some(slot) = results.get_mut(user_data as usize) {
                    *slot = result;
                }
                completed += 1;
                progressed = true;
            }
            if completed >= n {
                break;
            }
            if progressed {
                // Popping freed queue slots and registered buffers: submit
                // the next wave before sleeping.
                continue;
            }
            if self.scope.terminated() {
                self.terminated = true;
                return vec![SysResult::Err(Errno::EINTR); n];
            }
            match ring.sab().wait(
                ring.geometry().cq_tail_off(),
                seen_tail as i32,
                Some(Duration::from_millis(100)),
            ) {
                // Timed out or woken: re-check the queue either way (the
                // kernel's periodic backstop drain bounds a missed edge).
                Ok(_) => {}
                Err(_) => return vec![SysResult::Err(Errno::EFAULT); n],
            }
        }
        results
    }

    fn submit_sync(&mut self, batch: SyscallBatch) -> Vec<SysResult> {
        let n = batch.len();
        // fork is incompatible with the synchronous convention (§3.2).
        if batch.entries.iter().any(|c| matches!(c, Syscall::Fork { .. })) {
            return vec![SysResult::Err(Errno::ENOSYS); n];
        }
        let Some(state) = &self.sync else {
            return vec![SysResult::Err(Errno::EFAULT); n];
        };
        // Arm the wake address, send the (integer-only) request, block.
        if state.sab.store_i32(WAKE_OFFSET, 0).is_err() {
            return vec![SysResult::Err(Errno::EFAULT); n];
        }
        let payload = batch.encode();
        precise_delay(self.config.post_cost(32));
        if self
            .kernel
            .send(KernelEvent::Syscall {
                pid: self.pid,
                transport: Transport::Sync { payload },
            })
            .is_err()
        {
            self.terminated = true;
            return vec![SysResult::Err(Errno::EINTR); n];
        }
        loop {
            if self.scope.terminated() {
                self.terminated = true;
                return vec![SysResult::Err(Errno::EINTR); n];
            }
            let state = self.sync.as_ref().expect("checked above");
            match state.sab.wait(WAKE_OFFSET, 0, Some(Duration::from_millis(100))) {
                Ok(AtomicsWaitResult::TimedOut) => continue,
                Ok(_) => break,
                Err(_) => return vec![SysResult::Err(Errno::EFAULT); n],
            }
        }
        // Decode [len][completion frame] from the response area.
        let state = self.sync.as_ref().expect("checked above");
        let len_bytes = match state.sab.read_bytes(RESP_OFFSET, 4) {
            Ok(bytes) => bytes,
            Err(_) => return vec![SysResult::Err(Errno::EFAULT); n],
        };
        let len = u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]) as usize;
        let frame = match state.sab.read_bytes(RESP_OFFSET + 4, len) {
            Ok(bytes) => bytes,
            Err(_) => return vec![SysResult::Err(Errno::EFAULT); n],
        };
        results_from(CompletionBatch::decode(&frame).unwrap_or_default(), n)
    }
}

// Ring eligibility comes from the IDL's per-syscall `ring:` class, via the
// classifier generated into `browsix_core::abi`: a call may ride the ring
// when its submission entry fits a slot and its result is bounded — by a
// completion slot, or by one registered buffer for bulk reads.  Everything
// else (fork, unbounded-result directory/link calls, oversized reads) takes
// the framed transport.
use browsix_core::abi::ring_safe;

include!(concat!(env!("OUT_DIR"), "/client_gen.rs"));

/// Decodes one completion entry, dereferencing (and freeing) a
/// registered-buffer result.
fn resolve_cqe(ring: &Ring, frame: &[u8]) -> SysResult {
    let mut r = Reader::new(frame);
    match SysResult::decode_from(&mut r) {
        Some(SysResult::DataFixed { buf, len }) => {
            let data = ring.read_buf(buf, len as usize);
            ring.free_buf(buf);
            match data {
                Some(bytes) => SysResult::Data(bytes),
                None => SysResult::Err(Errno::EFAULT),
            }
        }
        Some(result) => result,
        None => SysResult::Err(Errno::EIO),
    }
}

/// Spreads a completion batch back into one result per submission entry.
/// Entries the kernel never completed (which should not happen) read as I/O
/// errors rather than hanging or panicking.
fn results_from(batch: CompletionBatch, n: usize) -> Vec<SysResult> {
    let mut out = vec![SysResult::Err(Errno::EIO); n];
    for completion in batch.completions {
        if let Some(slot) = out.get_mut(completion.index as usize) {
            *slot = completion.result;
        }
    }
    out
}

fn decode_init(msg: &Message) -> ProcessStart {
    let args = msg
        .get("args")
        .and_then(Message::as_array)
        .map(|items| items.iter().filter_map(|m| m.as_str().map(|s| s.to_owned())).collect())
        .unwrap_or_default();
    let env = msg
        .get("env")
        .and_then(Message::as_array)
        .map(|items| {
            items
                .iter()
                .filter_map(|pair| {
                    let pair = pair.as_array()?;
                    Some((pair.first()?.as_str()?.to_owned(), pair.get(1)?.as_str()?.to_owned()))
                })
                .collect()
        })
        .unwrap_or_default();
    let cwd = msg.get_str("cwd").unwrap_or("/").to_owned();
    let blob_url = msg.get_str("blob_url").map(|s| s.to_owned());
    let fork_image = msg.get_bytes("fork_image").map(|bytes| ForkImage {
        image: bytes.to_vec(),
        resume_point: msg.get_int("fork_resume").unwrap_or(0) as u64,
    });
    ProcessStart {
        args,
        env,
        cwd,
        blob_url,
        fork_image,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_decoding_extracts_fields() {
        let msg = Message::map()
            .with("type", "init")
            .with("args", Message::from(vec!["ls".to_string(), "-l".to_string()]))
            .with(
                "env",
                Message::Array(vec![Message::Array(vec![
                    Message::from("PATH"),
                    Message::from("/usr/bin"),
                ])]),
            )
            .with("cwd", "/home")
            .with("blob_url", "blob:browsix/1")
            .with("fork_image", vec![1u8, 2, 3])
            .with("fork_resume", 7i64);
        let start = decode_init(&msg);
        assert_eq!(start.args, vec!["ls", "-l"]);
        assert_eq!(start.env, vec![("PATH".to_string(), "/usr/bin".to_string())]);
        assert_eq!(start.cwd, "/home");
        assert_eq!(start.blob_url.as_deref(), Some("blob:browsix/1"));
        let image = start.fork_image.unwrap();
        assert_eq!(image.image, vec![1, 2, 3]);
        assert_eq!(image.resume_point, 7);
    }

    #[test]
    fn init_decoding_tolerates_missing_fields() {
        let start = decode_init(&Message::map().with("type", "init"));
        assert!(start.args.is_empty());
        assert!(start.env.is_empty());
        assert_eq!(start.cwd, "/");
        assert!(start.blob_url.is_none());
        assert!(start.fork_image.is_none());
    }

    #[test]
    fn sync_layout_constants_are_consistent() {
        const { assert!(RESP_OFFSET > WAKE_OFFSET + 4) };
        const { assert!(DATA_OFFSET > RESP_OFFSET) };
        const { assert!(SYNC_DATA_CAPACITY > 64 * 1024) };
        const { assert!(DATA_OFFSET + SYNC_DATA_CAPACITY <= RING_REGION_OFFSET) };
        const { assert!(RING_REGION_OFFSET + browsix_core::ring::RING_REGION_BYTES as usize <= SYNC_HEAP_BYTES) };
    }

    #[test]
    fn completion_spreading_fills_gaps_with_eio() {
        use browsix_core::Completion;
        let batch = CompletionBatch {
            completions: vec![
                Completion {
                    index: 2,
                    result: SysResult::Int(7),
                },
                Completion {
                    index: 0,
                    result: SysResult::Ok,
                },
            ],
        };
        let results = results_from(batch, 3);
        assert_eq!(results[0], SysResult::Ok);
        assert_eq!(results[1], SysResult::Err(Errno::EIO));
        assert_eq!(results[2], SysResult::Int(7));
    }
}
