//! The runtime environment interface guest programs are written against.
//!
//! A [`RuntimeEnv`] is what libc plus the language runtime
//! look like to a program: files, directories, processes, pipes, signals,
//! sockets and standard I/O.  The same guest program can run under the
//! in-process [`NativeEnv`](crate::NativeEnv) (the paper's native and
//! Node.js-on-Linux baselines) or under [`BrowsixEnv`](crate::BrowsixEnv)
//! (a real Browsix process in a worker issuing system calls), which is
//! exactly the property the paper relies on when it runs "the same JavaScript
//! utility under BROWSIX and on Linux under Node.js".

use browsix_browser::SharedArrayBuffer;
use browsix_core::{Errno, SigAction, SigSet, Signal};
use browsix_fs::{DirEntry, Metadata, OpenFlags};

use crate::profile::ExecutionProfile;

pub use browsix_core::{
    MAP_ANONYMOUS, MAP_PRIVATE, MAP_SHARED, PAGE_SIZE, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT, PROT_READ,
    PROT_WRITE, WNOHANG, WUNTRACED,
};

/// File-descriptor type used by guest programs.
pub type Fd = i32;

/// One descriptor's entry in a [`RuntimeEnv::poll`] call, mirroring
/// `struct pollfd`: the caller fills `fd` and `events`, the environment
/// fills `revents`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PollFd {
    /// Descriptor to query.
    pub fd: Fd,
    /// Requested events (`POLLIN` | `POLLOUT`).
    pub events: u16,
    /// Reported events; `POLLERR`/`POLLHUP`/`POLLNVAL` may appear whether
    /// requested or not.
    pub revents: u16,
}

impl PollFd {
    /// An entry asking about `events` on `fd`.
    pub fn new(fd: Fd, events: u16) -> PollFd {
        PollFd { fd, events, revents: 0 }
    }

    /// An entry waiting for `fd` to become readable.
    pub fn readable(fd: Fd) -> PollFd {
        PollFd::new(fd, POLLIN)
    }

    /// An entry waiting for `fd` to become writable.
    pub fn writable(fd: Fd) -> PollFd {
        PollFd::new(fd, POLLOUT)
    }

    /// Whether the descriptor reported readable (data, EOF or hang-up — all
    /// states in which a read returns immediately).
    pub fn is_readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// Whether the descriptor reported writable (or broken, in which case
    /// the write fails immediately rather than blocking).
    pub fn is_writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR) != 0
    }
}

/// A mapping created by [`RuntimeEnv::mmap`].
///
/// Private mappings carry only the base address — the guest accesses them
/// through [`RuntimeEnv::vm_read`]/[`RuntimeEnv::vm_write`] (the simulated
/// load/store pair).  `MAP_SHARED` mappings also carry the backing
/// [`SharedArrayBuffer`] the kernel delivered, so the guest reads and writes
/// — and `Atomics.wait`s — the mapping directly, with **no system calls on
/// the data path**.
#[derive(Debug, Clone)]
pub struct MappedRegion {
    /// Base virtual address of the mapping.
    pub addr: u64,
    /// Length in bytes (rounded up to whole pages).
    pub len: u64,
    /// For `MAP_SHARED`: the buffer backing the mapping.
    pub shared: Option<SharedArrayBuffer>,
    /// Byte offset within `shared` where this mapping's window starts.
    pub shared_offset: usize,
}

impl MappedRegion {
    /// Whether this is a `MAP_SHARED` mapping with a delivered buffer.
    pub fn is_shared(&self) -> bool {
        self.shared.is_some()
    }

    /// The shared buffer, for direct (zero-syscall) access and Atomics.
    pub fn buffer(&self) -> Option<&SharedArrayBuffer> {
        self.shared.as_ref()
    }

    /// Reads `len` bytes at `offset` within the mapping, straight from the
    /// shared buffer — no system call.
    ///
    /// # Errors
    ///
    /// [`Errno::EINVAL`] on a private mapping or out-of-range access.
    pub fn shared_read(&self, offset: usize, len: usize) -> Result<Vec<u8>, Errno> {
        let sab = self.shared.as_ref().ok_or(Errno::EINVAL)?;
        sab.read_bytes(self.shared_offset + offset, len)
            .map_err(|_| Errno::EINVAL)
    }

    /// Writes `data` at `offset` within the mapping, straight into the shared
    /// buffer — no system call.
    ///
    /// # Errors
    ///
    /// [`Errno::EINVAL`] on a private mapping or out-of-range access.
    pub fn shared_write(&self, offset: usize, data: &[u8]) -> Result<(), Errno> {
        let sab = self.shared.as_ref().ok_or(Errno::EINVAL)?;
        sab.write_bytes(self.shared_offset + offset, data)
            .map_err(|_| Errno::EINVAL)
    }
}

/// Which descriptors a spawned child should receive for stdin/stdout/stderr.
/// `None` inherits the parent's descriptor of the same number.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpawnStdio {
    /// Child's standard input.
    pub stdin: Option<Fd>,
    /// Child's standard output.
    pub stdout: Option<Fd>,
    /// Child's standard error.
    pub stderr: Option<Fd>,
}

impl SpawnStdio {
    /// Inherit all three standard descriptors from the parent.
    pub fn inherit() -> SpawnStdio {
        SpawnStdio::default()
    }
}

/// A reaped child process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitedChild {
    /// The child's pid.
    pub pid: u32,
    /// The raw wait status.
    pub status: i32,
    /// Exit code if the child exited normally.
    pub exit_code: Option<i32>,
}

impl WaitedChild {
    /// The signal that terminated the child, if it was killed.
    pub fn term_signal(&self) -> Option<Signal> {
        browsix_core::syscall::wait_status_signal(self.status)
    }

    /// The signal that stopped the child, if `wait` was called with
    /// [`WUNTRACED`] and the child is suspended rather than dead.
    pub fn stop_signal(&self) -> Option<Signal> {
        browsix_core::syscall::wait_status_stop_signal(self.status)
    }
}

/// The POSIX-flavoured interface guest programs use.
///
/// All paths are interpreted relative to the process's working directory.
/// Errors are [`Errno`] values, exactly as the corresponding system calls
/// would return them.
pub trait RuntimeEnv {
    // ---- identity and environment -------------------------------------------

    /// The argument vector, `argv[0]` included.
    fn args(&self) -> Vec<String>;

    /// All environment variables.
    fn env_vars(&self) -> Vec<(String, String)>;

    /// Looks up one environment variable.
    fn getenv(&self, name: &str) -> Option<String> {
        self.env_vars().iter().find(|(k, _)| k == name).map(|(_, v)| v.clone())
    }

    /// The process id.
    fn getpid(&mut self) -> u32;

    /// The parent process id.
    fn getppid(&mut self) -> u32;

    /// Resource-usage counters for the process as named `(key, value)`
    /// pairs (the `getrusage` system call; see `docs/ABI.md`).
    /// Environments without kernel-side accounting return `ENOSYS`.
    fn getrusage(&mut self) -> Result<Vec<(String, u64)>, Errno> {
        Err(Errno::ENOSYS)
    }

    /// The current working directory.
    fn getcwd(&mut self) -> String;

    /// Changes the working directory.
    fn chdir(&mut self, path: &str) -> Result<(), Errno>;

    // ---- file IO --------------------------------------------------------------

    /// Opens a file.
    fn open(&mut self, path: &str, flags: OpenFlags) -> Result<Fd, Errno>;

    /// Closes a descriptor.
    fn close(&mut self, fd: Fd) -> Result<(), Errno>;

    /// Reads up to `len` bytes from a descriptor (blocking).
    fn read(&mut self, fd: Fd, len: usize) -> Result<Vec<u8>, Errno>;

    /// Writes all of `data` to a descriptor (blocking), returning the count.
    fn write(&mut self, fd: Fd, data: &[u8]) -> Result<usize, Errno>;

    /// Writes every buffer, in order, to one descriptor, returning the total
    /// byte count.  Environments backed by the batched syscall ABI
    /// ([`BrowsixEnv`](crate::BrowsixEnv)) submit all buffers in a single
    /// kernel round trip; the default implementation degrades to sequential
    /// writes.
    fn write_vectored(&mut self, fd: Fd, bufs: &[&[u8]]) -> Result<usize, Errno> {
        let mut total = 0;
        for data in bufs {
            let mut written = 0;
            while written < data.len() {
                let count = self.write(fd, &data[written..])?;
                if count == 0 {
                    return Ok(total);
                }
                written += count;
                total += count;
            }
        }
        Ok(total)
    }

    /// Flushes any buffered standard output.  Environments that buffer stdout
    /// (to batch many small writes into one syscall) override this; the
    /// default is an unbuffered no-op.  Buffering environments flush
    /// automatically on exit, reads, spawns and waits, so guests only need an
    /// explicit flush when output must be visible mid-computation.
    fn flush_stdout(&mut self) -> Result<(), Errno> {
        Ok(())
    }

    /// Positional read.
    fn pread(&mut self, fd: Fd, len: usize, offset: u64) -> Result<Vec<u8>, Errno>;

    /// Positional write.
    fn pwrite(&mut self, fd: Fd, data: &[u8], offset: u64) -> Result<usize, Errno>;

    /// Repositions a descriptor (whence: 0 = SET, 1 = CUR, 2 = END).
    fn seek(&mut self, fd: Fd, offset: i64, whence: u32) -> Result<u64, Errno>;

    /// Duplicates `from` onto `to`.
    fn dup2(&mut self, from: Fd, to: Fd) -> Result<(), Errno>;

    /// Stats an open descriptor.
    fn fstat(&mut self, fd: Fd) -> Result<Metadata, Errno>;

    /// Flushes a descriptor's data to its backing store (`fsync`).  The
    /// in-memory backends have nothing to flush, so the default succeeds;
    /// kernel-backed environments issue the real system call.
    fn fsync(&mut self, _fd: Fd) -> Result<(), Errno> {
        Ok(())
    }

    /// Moves up to `len` bytes from the regular file `in_fd` into the stream
    /// (pipe or socket) `out_fd` without the data entering guest memory.
    /// `offset` is the file position to read from; `-1` uses — and advances —
    /// the descriptor's cursor, like passing NULL to `sendfile(2)`.  Returns
    /// the number of bytes moved (0 at end of file).
    ///
    /// Kernel-backed environments issue the real zero-copy system call; the
    /// default degrades to a pread/read + write copy loop so guests written
    /// against `sendfile` still run everywhere.
    fn sendfile(&mut self, out_fd: Fd, in_fd: Fd, offset: i64, len: u64) -> Result<u64, Errno> {
        let mut pos = offset;
        let mut sent: u64 = 0;
        while sent < len {
            let chunk_len = (len - sent).min(64 * 1024) as usize;
            let data = match if pos >= 0 {
                self.pread(in_fd, chunk_len, pos as u64)
            } else {
                self.read(in_fd, chunk_len)
            } {
                Ok(data) => data,
                Err(_) if sent > 0 => break,
                Err(e) => return Err(e),
            };
            if data.is_empty() {
                break;
            }
            let mut written = 0;
            while written < data.len() {
                match self.write(out_fd, &data[written..]) {
                    Ok(0) => return Ok(sent + written as u64),
                    Ok(count) => written += count,
                    Err(_) if sent + written as u64 > 0 => return Ok(sent + written as u64),
                    Err(e) => return Err(e),
                }
            }
            if pos >= 0 {
                pos += data.len() as i64;
            }
            sent += data.len() as u64;
        }
        Ok(sent)
    }

    /// Moves up to `len` buffered bytes from stream `fd_in` to stream
    /// `fd_out` without copying through guest memory, returning the count
    /// (0 means `fd_in` reached end of stream).  The default degrades to one
    /// read + write round trip.
    fn splice(&mut self, fd_in: Fd, fd_out: Fd, len: u64) -> Result<u64, Errno> {
        let data = self.read(fd_in, len.min(64 * 1024) as usize)?;
        if data.is_empty() {
            return Ok(0);
        }
        let mut written = 0;
        while written < data.len() {
            match self.write(fd_out, &data[written..]) {
                Ok(0) => break,
                Ok(count) => written += count,
                Err(_) if written > 0 => break,
                Err(e) => return Err(e),
            }
        }
        Ok(written as u64)
    }

    // ---- readiness -------------------------------------------------------------

    /// Waits until any entry in `fds` is ready (filling its `revents`) or
    /// `timeout_ms` expires, returning the number of ready descriptors
    /// (0 on timeout).  Negative `timeout_ms` waits forever; 0 reports the
    /// current readiness without blocking.  This is how a server multiplexes
    /// a listener and many non-blocking connections from one loop.
    fn poll(&mut self, fds: &mut [PollFd], timeout_ms: i32) -> Result<usize, Errno>;

    /// Sets or clears `O_NONBLOCK` on a descriptor's open-file description:
    /// reads, writes and accepts that would block return `EAGAIN` instead.
    fn set_nonblocking(&mut self, fd: Fd, nonblocking: bool) -> Result<(), Errno>;

    // ---- paths ---------------------------------------------------------------

    /// Closes several descriptors, reporting the first error after attempting
    /// all of them.  Batched environments close them in one round trip.
    fn close_many(&mut self, fds: &[Fd]) -> Result<(), Errno> {
        let mut first_error = Ok(());
        for &fd in fds {
            if let Err(e) = self.close(fd) {
                if first_error.is_ok() {
                    first_error = Err(e);
                }
            }
        }
        first_error
    }

    /// Creates `count` pipes, returning `(read_fd, write_fd)` pairs.  Batched
    /// environments create them all in one round trip.
    fn pipe_many(&mut self, count: usize) -> Result<Vec<(Fd, Fd)>, Errno> {
        (0..count).map(|_| self.pipe()).collect()
    }

    /// Stats a path.
    fn stat(&mut self, path: &str) -> Result<Metadata, Errno>;

    /// Stats several paths, one result per path.  Batched environments stat
    /// them all in one round trip (the `ls -l` hot path).
    fn stat_many(&mut self, paths: &[&str]) -> Vec<Result<Metadata, Errno>> {
        paths.iter().map(|path| self.stat(path)).collect()
    }

    /// Lists a directory.
    fn readdir(&mut self, path: &str) -> Result<Vec<DirEntry>, Errno>;

    /// Creates a directory.
    fn mkdir(&mut self, path: &str) -> Result<(), Errno>;

    /// Removes an empty directory.
    fn rmdir(&mut self, path: &str) -> Result<(), Errno>;

    /// Removes a file.
    fn unlink(&mut self, path: &str) -> Result<(), Errno>;

    /// Renames a file or directory.
    fn rename(&mut self, from: &str, to: &str) -> Result<(), Errno>;

    /// Truncates a file.
    fn truncate(&mut self, path: &str, size: u64) -> Result<(), Errno>;

    /// Checks a path for existence/accessibility.
    fn access(&mut self, path: &str) -> Result<(), Errno>;

    /// Sets file times.
    fn utimes(&mut self, path: &str, atime_ms: u64, mtime_ms: u64) -> Result<(), Errno>;

    // ---- processes -----------------------------------------------------------

    /// Spawns a child process from an executable path.
    fn spawn(&mut self, path: &str, args: &[String], stdio: SpawnStdio) -> Result<u32, Errno>;

    /// Blocks until a child exits (`pid` = -1 waits for any child).
    fn wait(&mut self, pid: i32) -> Result<WaitedChild, Errno>;

    /// Non-blocking wait (`WNOHANG`); `Ok(None)` means no child has exited.
    fn wait_nohang(&mut self, pid: i32) -> Result<Option<WaitedChild>, Errno>;

    /// `wait4` with explicit option bits ([`WNOHANG`] | [`WUNTRACED`]):
    /// `Ok(None)` means `WNOHANG` found nothing.  With `WUNTRACED` the
    /// returned child may be stopped rather than dead — check
    /// [`WaitedChild::stop_signal`].  The default degrades to the plain
    /// wait/wait-nohang pair (stop reporting needs a kernel).
    fn wait_options(&mut self, pid: i32, options: u32) -> Result<Option<WaitedChild>, Errno> {
        if options & WNOHANG != 0 {
            self.wait_nohang(pid)
        } else {
            self.wait(pid).map(Some)
        }
    }

    /// Creates a pipe, returning `(read_fd, write_fd)`.
    fn pipe(&mut self) -> Result<(Fd, Fd), Errno>;

    /// Sends a signal to a process.
    fn kill(&mut self, pid: u32, signal: Signal) -> Result<(), Errno>;

    /// Sends a signal to every member of a process group (`kill(-pgid)`).
    fn kill_group(&mut self, _pgid: u32, _signal: Signal) -> Result<(), Errno> {
        Err(Errno::ESRCH)
    }

    /// Installs a handler for a signal: delivered signals are then queued and
    /// visible through [`RuntimeEnv::pending_signals`] rather than applying
    /// their default disposition.
    fn register_signal_handler(&mut self, signal: Signal) -> Result<(), Errno>;

    /// Full `sigaction`: install a handler (optionally with `SA_RESTART`),
    /// ignore the signal, or restore the default disposition.  The default
    /// implementation degrades to [`RuntimeEnv::register_signal_handler`]
    /// for handlers and ignores the rest.
    fn sigaction(&mut self, signal: Signal, action: SigAction) -> Result<(), Errno> {
        match action {
            SigAction::Handler { .. } => self.register_signal_handler(signal),
            SigAction::Default | SigAction::Ignore => Ok(()),
        }
    }

    /// `sigprocmask`: applies `how` ([`browsix_core::SIG_BLOCK`] and
    /// friends) with `mask`, returning the previous mask.  Kernel-less
    /// environments have no asynchronous signals, so the default is a no-op.
    fn sigprocmask(&mut self, _how: u32, _mask: SigSet) -> Result<SigSet, Errno> {
        Ok(SigSet::empty())
    }

    /// Moves `pid` (0 = self) into process group `pgid` (0 = its own new
    /// group).  A no-op outside the kernel.
    fn setpgid(&mut self, _pid: u32, _pgid: u32) -> Result<(), Errno> {
        Ok(())
    }

    /// The process group of `pid` (0 = self).
    fn getpgid(&mut self, pid: u32) -> Result<u32, Errno>;

    /// Makes `pgid` the foreground group of the controlling terminal.
    fn tcsetpgrp(&mut self, _pgid: u32) -> Result<(), Errno> {
        Ok(())
    }

    /// Drains signals delivered since the last call.
    fn pending_signals(&mut self) -> Vec<Signal>;

    /// Forks the process, shipping `image` (a runtime-defined snapshot of
    /// guest state) to the child.  Returns the child pid in the parent; the
    /// child starts as a fresh process whose [`RuntimeEnv::fork_image`]
    /// returns the snapshot.  Only supported by the Emterpreter-mode C
    /// runtime, as in the paper.
    fn fork(&mut self, image: Vec<u8>) -> Result<u32, Errno>;

    /// The fork snapshot this process was started from, if any.
    fn fork_image(&self) -> Option<Vec<u8>>;

    /// Exits the process immediately with `code` (issues the `exit` system
    /// call and stops running guest code).  Where possible guest programs
    /// should simply return from `run` instead.
    fn exit(&mut self, code: i32);

    // ---- sockets ---------------------------------------------------------------

    /// Creates a TCP socket.
    fn socket(&mut self) -> Result<Fd, Errno>;

    /// Binds a socket to a port (0 picks an ephemeral port); returns the
    /// bound port.
    fn bind(&mut self, fd: Fd, port: u16) -> Result<u16, Errno>;

    /// Starts listening.
    fn listen(&mut self, fd: Fd, backlog: u32) -> Result<(), Errno>;

    /// Accepts a connection (blocking), returning the new descriptor.
    fn accept(&mut self, fd: Fd) -> Result<Fd, Errno>;

    /// Connects to a port on the in-Browsix loopback network.
    fn connect(&mut self, fd: Fd, port: u16) -> Result<(), Errno>;

    // ---- virtual memory --------------------------------------------------------

    /// Truncates (or zero-extends) an open descriptor's file — the way
    /// `shm_open` objects, which have no path, are sized before mapping.
    /// Environments without a VM subsystem report `ENOSYS`.
    fn ftruncate(&mut self, _fd: Fd, _size: u64) -> Result<(), Errno> {
        Err(Errno::ENOSYS)
    }

    /// Maps memory ([`MAP_PRIVATE`]/[`MAP_SHARED`] | [`MAP_ANONYMOUS`], with
    /// [`PROT_READ`] | [`PROT_WRITE`]).  `fd` is -1 for anonymous mappings;
    /// `addr` 0 lets the kernel place the region.
    fn mmap(
        &mut self,
        _addr: u64,
        _len: u64,
        _prot: u32,
        _flags: u32,
        _fd: Fd,
        _offset: u64,
    ) -> Result<MappedRegion, Errno> {
        Err(Errno::ENOSYS)
    }

    /// Unmaps a whole region previously returned by [`RuntimeEnv::mmap`].
    fn munmap(&mut self, _addr: u64, _len: u64) -> Result<(), Errno> {
        Err(Errno::ENOSYS)
    }

    /// Writes a shared mapping's bytes back to its backing object
    /// (`len` 0 = through the end of the region).
    fn msync(&mut self, _addr: u64, _len: u64) -> Result<(), Errno> {
        Err(Errno::ENOSYS)
    }

    /// Changes a whole region's protection.
    fn mprotect(&mut self, _addr: u64, _len: u64, _prot: u32) -> Result<(), Errno> {
        Err(Errno::ENOSYS)
    }

    /// Opens (or, with `flags.create`, creates) a named POSIX shared-memory
    /// object, returning a descriptor suitable for [`RuntimeEnv::ftruncate`]
    /// and [`RuntimeEnv::mmap`].
    fn shm_open(&mut self, _name: &str, _flags: OpenFlags, _mode: u32) -> Result<Fd, Errno> {
        Err(Errno::ENOSYS)
    }

    /// Removes a shared-memory object's name.
    fn shm_unlink(&mut self, _name: &str) -> Result<(), Errno> {
        Err(Errno::ENOSYS)
    }

    /// Reads from the process's mapped memory (the simulated load; how
    /// private mappings are accessed).
    fn vm_read(&mut self, _addr: u64, _len: usize) -> Result<Vec<u8>, Errno> {
        Err(Errno::ENOSYS)
    }

    /// Writes to the process's mapped memory (the simulated store; a write
    /// to a COW-shared page faults and is serviced in the kernel).
    fn vm_write(&mut self, _addr: u64, _data: &[u8]) -> Result<(), Errno> {
        Err(Errno::ENOSYS)
    }

    // ---- cost model ------------------------------------------------------------

    /// Charges `units` of compute time according to the execution profile
    /// (the stand-in for actually executing the original program's code in a
    /// JavaScript engine).
    fn charge_compute(&mut self, units: u64);

    /// The execution profile in effect.
    fn profile(&self) -> &ExecutionProfile;

    // ---- convenience (default implementations) ---------------------------------

    /// Reads an entire file.
    fn read_file(&mut self, path: &str) -> Result<Vec<u8>, Errno> {
        let fd = self.open(path, OpenFlags::read_only())?;
        let mut out = Vec::new();
        loop {
            let chunk = self.read(fd, 64 * 1024)?;
            if chunk.is_empty() {
                break;
            }
            out.extend_from_slice(&chunk);
        }
        self.close(fd)?;
        Ok(out)
    }

    /// Creates/replaces an entire file.
    fn write_file(&mut self, path: &str, data: &[u8]) -> Result<(), Errno> {
        let fd = self.open(path, OpenFlags::write_create_truncate())?;
        let mut written = 0;
        while written < data.len() {
            written += self.write(fd, &data[written..])?;
        }
        self.close(fd)?;
        Ok(())
    }

    /// Writes a string to standard output.
    fn print(&mut self, text: &str) {
        let _ = self.write(1, text.as_bytes());
    }

    /// Writes a string to standard error.
    fn eprint(&mut self, text: &str) {
        let _ = self.write(2, text.as_bytes());
    }

    /// Reads standard input until EOF.
    fn read_stdin_to_end(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        loop {
            match self.read(0, 64 * 1024) {
                Ok(chunk) if chunk.is_empty() => break,
                Ok(chunk) => out.extend_from_slice(&chunk),
                Err(_) => break,
            }
        }
        out
    }

    /// Whether a path exists.
    fn exists(&mut self, path: &str) -> bool {
        self.stat(path).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_stdio_default_inherits() {
        let stdio = SpawnStdio::inherit();
        assert_eq!(stdio.stdin, None);
        assert_eq!(stdio.stdout, None);
        assert_eq!(stdio.stderr, None);
    }

    #[test]
    fn waited_child_carries_exit_code() {
        let child = WaitedChild {
            pid: 3,
            status: 2 << 8,
            exit_code: Some(2),
        };
        assert_eq!(child.exit_code, Some(2));
        assert_eq!(child.pid, 3);
    }
}
