//! Execution profiles: the calibrated cost model for each environment.
//!
//! The paper's evaluation compares the same programs running natively, under
//! Node.js on Linux, and under Browsix in different browsers and system-call
//! conventions.  Two effects dominate:
//!
//! 1. *JavaScript execution cost* — "most of the overhead can be attributed to
//!    JavaScript"; asm.js code is several tens of times slower than native C,
//!    the Emterpreter is roughly another 4× slower, and GopherJS numeric code
//!    suffers badly from the lack of 64-bit integers.
//! 2. *System-call convention* — asynchronous calls pay a `postMessage` plus
//!    structured-clone cost per call; synchronous calls pay only a small
//!    message plus shared-memory copies.
//!
//! An [`ExecutionProfile`] captures the first effect as a cost per abstract
//! "compute unit" charged by guest programs through
//! [`RuntimeEnv::charge_compute`](crate::RuntimeEnv::charge_compute); the
//! second is real, produced by the simulated kernel.  Calibration constants
//! are documented in EXPERIMENTS.md.

use std::time::Duration;

use browsix_browser::time::precise_delay;

/// How a process reaches the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallConvention {
    /// No kernel at all: direct calls into an in-process file system
    /// (the native and Node.js-on-Linux baselines).
    Direct,
    /// Asynchronous Browsix system calls (structured-clone messages).
    Async,
    /// Synchronous Browsix system calls (shared memory + `Atomics.wait`).
    Sync,
}

/// The per-environment cost model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionProfile {
    /// Environment name as it appears in result tables.
    pub name: &'static str,
    /// Cost of one abstract compute unit, in nanoseconds.  One unit stands
    /// for roughly a thousand machine operations of the original program.
    pub compute_ns_per_unit: u64,
    /// Which system-call convention processes in this environment use.
    pub convention: SyscallConvention,
    /// Whether compute delays are actually injected (benchmarks) or skipped
    /// (functional tests).
    pub inject_compute: bool,
}

impl ExecutionProfile {
    /// Native C on Linux (the GNU coreutils / pdflatex baseline).
    pub fn native() -> ExecutionProfile {
        ExecutionProfile {
            name: "native",
            compute_ns_per_unit: 400,
            convention: SyscallConvention::Direct,
            inject_compute: true,
        }
    }

    /// Node.js on Linux: V8-executed JavaScript, direct system calls.
    pub fn nodejs_linux() -> ExecutionProfile {
        ExecutionProfile {
            name: "node.js",
            compute_ns_per_unit: 12_000,
            convention: SyscallConvention::Direct,
            inject_compute: true,
        }
    }

    /// JavaScript (Node.js utilities or asm.js) running as a Browsix process
    /// with asynchronous system calls.
    pub fn browsix_async() -> ExecutionProfile {
        ExecutionProfile {
            name: "browsix (async)",
            compute_ns_per_unit: 12_000,
            convention: SyscallConvention::Async,
            inject_compute: true,
        }
    }

    /// asm.js-compiled C running as a Browsix process with synchronous system
    /// calls (Chrome with SharedArrayBuffer).
    pub fn browsix_sync_asmjs() -> ExecutionProfile {
        ExecutionProfile {
            name: "browsix (sync, asm.js)",
            compute_ns_per_unit: 18_000,
            convention: SyscallConvention::Sync,
            inject_compute: true,
        }
    }

    /// Emterpreter-compiled C running as a Browsix process with asynchronous
    /// system calls (required when a program uses `fork`, and the only option
    /// in browsers without shared memory).
    pub fn browsix_emterpreter() -> ExecutionProfile {
        ExecutionProfile {
            name: "browsix (async, emterpreter)",
            compute_ns_per_unit: 72_000,
            convention: SyscallConvention::Async,
            inject_compute: true,
        }
    }

    /// GopherJS-compiled Go running as a Browsix process; numeric code pays
    /// the missing-64-bit-integer penalty the paper highlights for the meme
    /// generator.
    pub fn gopherjs() -> ExecutionProfile {
        ExecutionProfile {
            name: "browsix (gopherjs)",
            compute_ns_per_unit: 120_000,
            convention: SyscallConvention::Async,
            inject_compute: true,
        }
    }

    /// A profile with no injected compute cost, for functional tests.
    pub fn instant(convention: SyscallConvention) -> ExecutionProfile {
        ExecutionProfile {
            name: "instant",
            compute_ns_per_unit: 0,
            convention,
            inject_compute: false,
        }
    }

    /// Returns a copy with compute injection disabled.
    pub fn without_compute(mut self) -> ExecutionProfile {
        self.inject_compute = false;
        self
    }

    /// Returns a copy with the compute cost scaled by `factor` (used by the
    /// benchmark harness to shrink long experiments while preserving ratios).
    pub fn scaled(mut self, factor: f64) -> ExecutionProfile {
        self.compute_ns_per_unit = ((self.compute_ns_per_unit as f64) * factor).round() as u64;
        self
    }

    /// The wall-clock cost of `units` compute units under this profile.
    pub fn compute_cost(&self, units: u64) -> Duration {
        if !self.inject_compute {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.compute_ns_per_unit.saturating_mul(units))
    }

    /// Blocks for the cost of `units` compute units.
    pub fn charge(&self, units: u64) {
        precise_delay(self.compute_cost(units));
    }
}

impl Default for ExecutionProfile {
    fn default() -> Self {
        ExecutionProfile::instant(SyscallConvention::Direct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_ordering_matches_the_paper() {
        // Native < Node/asm.js < Emterpreter < GopherJS numeric.
        let native = ExecutionProfile::native().compute_ns_per_unit;
        let node = ExecutionProfile::nodejs_linux().compute_ns_per_unit;
        let asmjs = ExecutionProfile::browsix_sync_asmjs().compute_ns_per_unit;
        let emterp = ExecutionProfile::browsix_emterpreter().compute_ns_per_unit;
        let gopher = ExecutionProfile::gopherjs().compute_ns_per_unit;
        assert!(native < node);
        assert!(node <= asmjs);
        assert!(asmjs < emterp);
        assert!(emterp < gopher);
        // The Emterpreter is roughly 4x asm.js, as the paper reports.
        let ratio = emterp as f64 / asmjs as f64;
        assert!((3.0..6.0).contains(&ratio), "emterpreter/asm.js ratio {ratio}");
    }

    #[test]
    fn conventions_match_environments() {
        assert_eq!(ExecutionProfile::native().convention, SyscallConvention::Direct);
        assert_eq!(ExecutionProfile::nodejs_linux().convention, SyscallConvention::Direct);
        assert_eq!(ExecutionProfile::browsix_async().convention, SyscallConvention::Async);
        assert_eq!(
            ExecutionProfile::browsix_sync_asmjs().convention,
            SyscallConvention::Sync
        );
        assert_eq!(
            ExecutionProfile::browsix_emterpreter().convention,
            SyscallConvention::Async
        );
    }

    #[test]
    fn compute_cost_scales_linearly_and_respects_injection() {
        let profile = ExecutionProfile::nodejs_linux();
        assert_eq!(profile.compute_cost(0), Duration::ZERO);
        assert_eq!(profile.compute_cost(10) * 10, profile.compute_cost(100));
        let off = profile.clone().without_compute();
        assert_eq!(off.compute_cost(1_000_000), Duration::ZERO);
        let instant = ExecutionProfile::instant(SyscallConvention::Async);
        assert_eq!(instant.compute_cost(1_000_000), Duration::ZERO);
        assert_eq!(instant.convention, SyscallConvention::Async);
    }

    #[test]
    fn scaling_preserves_ratios() {
        let a = ExecutionProfile::browsix_sync_asmjs().scaled(0.1);
        let b = ExecutionProfile::browsix_emterpreter().scaled(0.1);
        let ratio = b.compute_ns_per_unit as f64 / a.compute_ns_per_unit as f64;
        assert!((3.0..6.0).contains(&ratio));
    }

    #[test]
    fn charge_injects_real_time() {
        let profile = ExecutionProfile {
            name: "test",
            compute_ns_per_unit: 1_000,
            convention: SyscallConvention::Direct,
            inject_compute: true,
        };
        let start = std::time::Instant::now();
        profile.charge(500); // 0.5 ms
        assert!(start.elapsed() >= Duration::from_micros(500));
    }
}
