//! [`RuntimeEnv`] implemented over the Browsix system-call client: what a
//! guest program sees when it actually runs as a Browsix process inside a
//! worker.

use browsix_core::{Errno, PollRequest, SigAction, SigSet, Signal, SysResult, Syscall, SyscallBatch, NONBLOCK};
use browsix_fs::{DirEntry, Metadata, OpenFlags};

use crate::client::SyscallClient;
use crate::env::{Fd, MappedRegion, PollFd, RuntimeEnv, SpawnStdio, WaitedChild, MAP_SHARED};
use crate::profile::ExecutionProfile;

/// Stdout writes below this size are coalesced into one buffered syscall;
/// once the buffer reaches it, the buffer is flushed.  Chosen well under the
/// shared-heap data area so a flush always stages in one piece.
const STDOUT_BUFFER_LIMIT: usize = 32 * 1024;

/// Runs one guest program as a Browsix process: waits for the init message,
/// builds the environment, runs the program and issues the final `exit`
/// system call.  Shared by all three launchers.
pub(crate) fn run_guest_process(
    ctx: browsix_core::exec::LaunchContext,
    factory: &crate::program::GuestFactory,
    profile: ExecutionProfile,
    prefer_sync: bool,
) {
    let (client, start) = SyscallClient::start(ctx, prefer_sync);
    if client.terminated() {
        return;
    }
    let mut env = BrowsixEnv::new(client, start, profile);
    let mut program = factory();
    let code = program.run(&mut env);
    env.exit_process(code);
}

/// The process-side view of Browsix.
pub struct BrowsixEnv {
    client: SyscallClient,
    profile: ExecutionProfile,
    args: Vec<String>,
    env: Vec<(String, String)>,
    cwd: String,
    fork_image: Option<Vec<u8>>,
    exited: Option<i32>,
    /// Small stdout writes accumulate here and go to the kernel as one write
    /// syscall, flushed at the buffer limit, before operations whose ordering
    /// could observe stdout (reads, spawns, waits, fd-1 plumbing) and at exit.
    stdout_buf: Vec<u8>,
}

impl std::fmt::Debug for BrowsixEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrowsixEnv")
            .field("pid", &self.client.pid())
            .field("mode", &self.client.mode())
            .field("profile", &self.profile.name)
            .finish()
    }
}

impl BrowsixEnv {
    /// Builds the environment from a started client, the kernel's init
    /// payload and the execution profile to charge compute against.
    pub fn new(
        client: SyscallClient,
        start: browsix_core::exec::ProcessStart,
        profile: ExecutionProfile,
    ) -> BrowsixEnv {
        BrowsixEnv {
            client,
            profile,
            args: start.args,
            env: start.env,
            cwd: start.cwd,
            fork_image: start.fork_image.map(|f| f.image),
            exited: None,
            stdout_buf: Vec::new(),
        }
    }

    /// Whether the process has issued its final `exit` system call (or been
    /// terminated by the kernel).
    pub fn finished(&self) -> bool {
        self.exited.is_some() || self.client.terminated()
    }

    /// Issues the final `exit` system call, as Browsix runtimes must do
    /// explicitly because the worker cannot otherwise signal completion.
    /// Buffered stdout is flushed first so no output is lost.
    pub fn exit_process(&mut self, code: i32) {
        if self.finished() {
            return;
        }
        let _ = self.flush_stdout();
        self.exited = Some(code);
        self.client.send_only(Syscall::Exit { code });
    }

    /// The underlying client (used by tests to inspect the convention).
    pub fn client(&self) -> &SyscallClient {
        &self.client
    }

    /// Writes straight through to the kernel, bypassing the stdout buffer.
    fn write_through(&mut self, fd: Fd, data: &[u8]) -> Result<usize, Errno> {
        let mut written = 0;
        while written < data.len() {
            let chunk_len = (data.len() - written).min(self.client.max_staged_write());
            let chunk = &data[written..written + chunk_len];
            let source = self.client.stage_write(chunk);
            let count = self.expect_int(Syscall::Write { fd, data: source })? as usize;
            if count == 0 {
                break;
            }
            written += count;
        }
        Ok(written)
    }

    fn expect_int(&mut self, call: Syscall) -> Result<i64, Errno> {
        match self.client.call(call) {
            SysResult::Int(v) => Ok(v),
            SysResult::Ok => Ok(0),
            SysResult::Err(e) => Err(e),
            _ => Err(Errno::EIO),
        }
    }

    fn expect_ok(&mut self, call: Syscall) -> Result<(), Errno> {
        match self.client.call(call) {
            SysResult::Ok | SysResult::Int(_) => Ok(()),
            SysResult::Err(e) => Err(e),
            _ => Err(Errno::EIO),
        }
    }

    fn expect_data(&mut self, call: Syscall) -> Result<Vec<u8>, Errno> {
        match self.client.call(call) {
            SysResult::Data(data) => Ok(data),
            SysResult::Err(e) => Err(e),
            _ => Err(Errno::EIO),
        }
    }
}

impl RuntimeEnv for BrowsixEnv {
    fn args(&self) -> Vec<String> {
        self.args.clone()
    }

    fn env_vars(&self) -> Vec<(String, String)> {
        self.env.clone()
    }

    fn getpid(&mut self) -> u32 {
        self.expect_int(Syscall::GetPid).unwrap_or(0) as u32
    }

    fn getppid(&mut self) -> u32 {
        self.expect_int(Syscall::GetPPid).unwrap_or(0) as u32
    }

    fn getrusage(&mut self) -> Result<Vec<(String, u64)>, Errno> {
        let data = self.expect_data(Syscall::Getrusage { who: 0 })?;
        // Pair encoding: u32 count, then (str key, u64 value) pairs.
        let mut r = browsix_core::wire::Reader::new(&data);
        let count = r.u32().ok_or(Errno::EIO)?;
        let mut pairs = Vec::with_capacity(count.min(64) as usize);
        for _ in 0..count {
            let key = r.str().ok_or(Errno::EIO)?.to_owned();
            let value = r.u64().ok_or(Errno::EIO)?;
            pairs.push((key, value));
        }
        Ok(pairs)
    }

    fn getcwd(&mut self) -> String {
        match self.client.call(Syscall::GetCwd) {
            SysResult::Path(path) => {
                self.cwd = path.clone();
                path
            }
            _ => self.cwd.clone(),
        }
    }

    fn chdir(&mut self, path: &str) -> Result<(), Errno> {
        self.expect_ok(Syscall::Chdir { path: path.to_owned() })?;
        self.cwd = browsix_fs::path::resolve(&self.cwd, path);
        Ok(())
    }

    fn open(&mut self, path: &str, flags: OpenFlags) -> Result<Fd, Errno> {
        self.expect_int(Syscall::Open {
            path: path.to_owned(),
            flags,
            mode: 0o644,
        })
        .map(|fd| fd as Fd)
    }

    fn close(&mut self, fd: Fd) -> Result<(), Errno> {
        if fd == 1 {
            let _ = self.flush_stdout();
        }
        self.expect_ok(Syscall::Close { fd })
    }

    fn read(&mut self, fd: Fd, len: usize) -> Result<Vec<u8>, Errno> {
        // Anything read may depend on output we have buffered (a pipe fed by
        // a child of ours, for example), so reads flush first.  A flush
        // failure (stdout's pipe gone, say) is stdout's problem, not this
        // read's.
        let _ = self.flush_stdout();
        self.expect_data(Syscall::Read { fd, len: len as u32 })
    }

    fn write(&mut self, fd: Fd, data: &[u8]) -> Result<usize, Errno> {
        // Small stdout writes coalesce in the buffer; large ones (and every
        // other descriptor) go straight through.
        if fd == 1 {
            if data.len() >= STDOUT_BUFFER_LIMIT {
                self.flush_stdout()?;
                return self.write_through(fd, data);
            }
            self.stdout_buf.extend_from_slice(data);
            if self.stdout_buf.len() >= STDOUT_BUFFER_LIMIT {
                self.flush_stdout()?;
            }
            return Ok(data.len());
        }
        self.write_through(fd, data)
    }

    fn write_vectored(&mut self, fd: Fd, bufs: &[&[u8]]) -> Result<usize, Errno> {
        if bufs.is_empty() {
            return Ok(0);
        }
        if fd == 1 {
            self.flush_stdout()?;
        }
        // One submission per shared-heap-capacity's worth of buffers: every
        // write in a chunk is staged back to back and the whole chunk crosses
        // to the kernel in a single round trip.
        let capacity = self.client.max_staged_write();
        let mut total = 0usize;
        let mut start = 0usize;
        while start < bufs.len() {
            let mut end = start;
            let mut staged = 0usize;
            while end < bufs.len() && (end == start || staged + bufs[end].len() <= capacity) {
                staged += bufs[end].len();
                end += 1;
            }
            let sources = self.client.stage_writes(&bufs[start..end]);
            let mut batch = SyscallBatch::new();
            for source in sources {
                batch.push(Syscall::Write { fd, data: source });
            }
            for result in self.client.submit(batch) {
                match result {
                    SysResult::Int(count) => total += count as usize,
                    SysResult::Ok => {}
                    SysResult::Err(e) => {
                        if total == 0 {
                            return Err(e);
                        }
                        return Ok(total);
                    }
                    _ => return Err(Errno::EIO),
                }
            }
            start = end;
        }
        Ok(total)
    }

    fn flush_stdout(&mut self) -> Result<(), Errno> {
        if self.stdout_buf.is_empty() {
            return Ok(());
        }
        let data = std::mem::take(&mut self.stdout_buf);
        self.write_through(1, &data).map(|_| ())
    }

    fn pread(&mut self, fd: Fd, len: usize, offset: u64) -> Result<Vec<u8>, Errno> {
        self.expect_data(Syscall::Pread {
            fd,
            len: len as u32,
            offset,
        })
    }

    fn pwrite(&mut self, fd: Fd, data: &[u8], offset: u64) -> Result<usize, Errno> {
        let source = self.client.stage_write(data);
        self.expect_int(Syscall::Pwrite {
            fd,
            data: source,
            offset,
        })
        .map(|n| n as usize)
    }

    fn seek(&mut self, fd: Fd, offset: i64, whence: u32) -> Result<u64, Errno> {
        if fd == 1 {
            let _ = self.flush_stdout();
        }
        self.expect_int(Syscall::Seek { fd, offset, whence }).map(|n| n as u64)
    }

    fn dup2(&mut self, from: Fd, to: Fd) -> Result<(), Errno> {
        if from == 1 || to == 1 {
            let _ = self.flush_stdout();
        }
        self.expect_ok(Syscall::Dup2 { from, to })
    }

    fn fstat(&mut self, fd: Fd) -> Result<Metadata, Errno> {
        match self.client.call(Syscall::Fstat { fd }) {
            SysResult::Stat(meta) => Ok(meta),
            SysResult::Err(e) => Err(e),
            _ => Err(Errno::EIO),
        }
    }

    fn fsync(&mut self, fd: Fd) -> Result<(), Errno> {
        if fd == 1 {
            // Buffered stdout must reach the kernel before it can be synced.
            let _ = self.flush_stdout();
        }
        self.expect_ok(Syscall::Fsync { fd })
    }

    fn sendfile(&mut self, out_fd: Fd, in_fd: Fd, offset: i64, len: u64) -> Result<u64, Errno> {
        if out_fd == 1 {
            // Anything already buffered must reach the descriptor first.
            let _ = self.flush_stdout();
        }
        self.expect_int(Syscall::Sendfile {
            out_fd,
            in_fd,
            offset,
            len,
        })
        .map(|n| n as u64)
    }

    fn splice(&mut self, fd_in: Fd, fd_out: Fd, len: u64) -> Result<u64, Errno> {
        if fd_out == 1 {
            let _ = self.flush_stdout();
        }
        self.expect_int(Syscall::Splice { fd_in, fd_out, len })
            .map(|n| n as u64)
    }

    fn poll(&mut self, fds: &mut [PollFd], timeout_ms: i32) -> Result<usize, Errno> {
        // Readiness downstream of us (a child reading the pipe we feed) can
        // depend on output still sitting in the stdout buffer.
        let _ = self.flush_stdout();
        let requests: Vec<PollRequest> = fds
            .iter()
            .map(|p| PollRequest {
                fd: p.fd,
                events: p.events,
            })
            .collect();
        match self.client.call(Syscall::Poll {
            fds: requests,
            timeout_ms,
        }) {
            SysResult::Poll(revents) => {
                let mut ready = 0;
                for (slot, revent) in fds.iter_mut().zip(revents) {
                    slot.revents = revent;
                    if revent != 0 {
                        ready += 1;
                    }
                }
                Ok(ready)
            }
            SysResult::Err(e) => Err(e),
            _ => Err(Errno::EIO),
        }
    }

    fn set_nonblocking(&mut self, fd: Fd, nonblocking: bool) -> Result<(), Errno> {
        self.expect_ok(Syscall::SetFlags {
            fd,
            flags: if nonblocking { NONBLOCK } else { 0 },
        })
    }

    fn stat(&mut self, path: &str) -> Result<Metadata, Errno> {
        match self.client.call(Syscall::Stat {
            path: path.to_owned(),
            lstat: false,
        }) {
            SysResult::Stat(meta) => Ok(meta),
            SysResult::Err(e) => Err(e),
            _ => Err(Errno::EIO),
        }
    }

    fn readdir(&mut self, path: &str) -> Result<Vec<DirEntry>, Errno> {
        match self.client.call(Syscall::Readdir { path: path.to_owned() }) {
            SysResult::Entries(entries) => Ok(entries),
            SysResult::Err(e) => Err(e),
            _ => Err(Errno::EIO),
        }
    }

    fn mkdir(&mut self, path: &str) -> Result<(), Errno> {
        self.expect_ok(Syscall::Mkdir {
            path: path.to_owned(),
            mode: 0o755,
        })
    }

    fn rmdir(&mut self, path: &str) -> Result<(), Errno> {
        self.expect_ok(Syscall::Rmdir { path: path.to_owned() })
    }

    fn unlink(&mut self, path: &str) -> Result<(), Errno> {
        self.expect_ok(Syscall::Unlink { path: path.to_owned() })
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), Errno> {
        self.expect_ok(Syscall::Rename {
            from: from.to_owned(),
            to: to.to_owned(),
        })
    }

    fn truncate(&mut self, path: &str, size: u64) -> Result<(), Errno> {
        self.expect_ok(Syscall::Truncate {
            path: path.to_owned(),
            size,
        })
    }

    fn access(&mut self, path: &str) -> Result<(), Errno> {
        self.expect_ok(Syscall::Access {
            path: path.to_owned(),
            mode: 0,
        })
    }

    fn utimes(&mut self, path: &str, atime_ms: u64, mtime_ms: u64) -> Result<(), Errno> {
        self.expect_ok(Syscall::Utimes {
            path: path.to_owned(),
            atime_ms,
            mtime_ms,
        })
    }

    fn spawn(&mut self, path: &str, args: &[String], stdio: SpawnStdio) -> Result<u32, Errno> {
        // Children may share our stdout; anything we printed must precede
        // anything they print.
        let _ = self.flush_stdout();
        self.expect_int(Syscall::Spawn {
            path: path.to_owned(),
            args: args.to_vec(),
            env: self.env.clone(),
            cwd: None,
            stdio: [stdio.stdin, stdio.stdout, stdio.stderr],
        })
        .map(|pid| pid as u32)
    }

    fn wait(&mut self, pid: i32) -> Result<WaitedChild, Errno> {
        let _ = self.flush_stdout();
        match self.client.call(Syscall::Wait4 { pid, options: 0 }) {
            SysResult::Wait { pid, status } => Ok(WaitedChild {
                pid,
                status,
                exit_code: browsix_core::syscall::wait_status_exit_code(status),
            }),
            SysResult::Err(e) => Err(e),
            _ => Err(Errno::EIO),
        }
    }

    fn wait_nohang(&mut self, pid: i32) -> Result<Option<WaitedChild>, Errno> {
        let _ = self.flush_stdout();
        match self.client.call(Syscall::Wait4 { pid, options: 1 }) {
            SysResult::Wait { pid: 0, .. } => Ok(None),
            SysResult::Wait { pid, status } => Ok(Some(WaitedChild {
                pid,
                status,
                exit_code: browsix_core::syscall::wait_status_exit_code(status),
            })),
            SysResult::Err(e) => Err(e),
            _ => Err(Errno::EIO),
        }
    }

    fn pipe(&mut self) -> Result<(Fd, Fd), Errno> {
        match self.client.call(Syscall::Pipe2) {
            SysResult::Pair(read_fd, write_fd) => Ok((read_fd as Fd, write_fd as Fd)),
            SysResult::Err(e) => Err(e),
            _ => Err(Errno::EIO),
        }
    }

    fn close_many(&mut self, fds: &[Fd]) -> Result<(), Errno> {
        if fds.is_empty() {
            return Ok(());
        }
        if fds.contains(&1) {
            let _ = self.flush_stdout();
        }
        let mut batch = SyscallBatch::new();
        for &fd in fds {
            batch.push(Syscall::Close { fd });
        }
        let mut first_error = Ok(());
        for result in self.client.submit(batch) {
            if let SysResult::Err(e) = result {
                if first_error.is_ok() {
                    first_error = Err(e);
                }
            }
        }
        first_error
    }

    fn pipe_many(&mut self, count: usize) -> Result<Vec<(Fd, Fd)>, Errno> {
        if count == 0 {
            return Ok(Vec::new());
        }
        let mut batch = SyscallBatch::new();
        for _ in 0..count {
            batch.push(Syscall::Pipe2);
        }
        let mut pairs = Vec::with_capacity(count);
        for result in self.client.submit(batch) {
            match result {
                SysResult::Pair(read_fd, write_fd) => pairs.push((read_fd as Fd, write_fd as Fd)),
                SysResult::Err(e) => return Err(e),
                _ => return Err(Errno::EIO),
            }
        }
        Ok(pairs)
    }

    fn stat_many(&mut self, paths: &[&str]) -> Vec<Result<Metadata, Errno>> {
        if paths.is_empty() {
            return Vec::new();
        }
        let mut batch = SyscallBatch::new();
        for path in paths {
            batch.push(Syscall::Stat {
                path: (*path).to_owned(),
                lstat: false,
            });
        }
        self.client
            .submit(batch)
            .into_iter()
            .map(|result| match result {
                SysResult::Stat(meta) => Ok(meta),
                SysResult::Err(e) => Err(e),
                _ => Err(Errno::EIO),
            })
            .collect()
    }

    fn kill(&mut self, pid: u32, signal: Signal) -> Result<(), Errno> {
        self.expect_ok(Syscall::Kill {
            pid: pid as i32,
            signal,
        })
    }

    fn kill_group(&mut self, pgid: u32, signal: Signal) -> Result<(), Errno> {
        self.expect_ok(Syscall::Kill {
            pid: -(pgid as i64) as i32,
            signal,
        })
    }

    fn register_signal_handler(&mut self, signal: Signal) -> Result<(), Errno> {
        self.sigaction(signal, SigAction::Handler { restart: false })
    }

    fn sigaction(&mut self, signal: Signal, action: SigAction) -> Result<(), Errno> {
        self.expect_ok(Syscall::SignalAction { signal, action })
    }

    fn sigprocmask(&mut self, how: u32, mask: SigSet) -> Result<SigSet, Errno> {
        self.expect_int(Syscall::Sigprocmask { how, mask: mask.bits() })
            .map(|old| SigSet::from_bits(old as u64))
    }

    fn setpgid(&mut self, pid: u32, pgid: u32) -> Result<(), Errno> {
        self.expect_ok(Syscall::Setpgid { pid, pgid })
    }

    fn getpgid(&mut self, pid: u32) -> Result<u32, Errno> {
        self.expect_int(Syscall::Getpgid { pid }).map(|pgid| pgid as u32)
    }

    fn tcsetpgrp(&mut self, pgid: u32) -> Result<(), Errno> {
        self.expect_ok(Syscall::Tcsetpgrp { pgid })
    }

    fn wait_options(&mut self, pid: i32, options: u32) -> Result<Option<WaitedChild>, Errno> {
        let _ = self.flush_stdout();
        match self.client.call(Syscall::Wait4 { pid, options }) {
            SysResult::Wait { pid: 0, .. } => Ok(None),
            SysResult::Wait { pid, status } => Ok(Some(WaitedChild {
                pid,
                status,
                exit_code: browsix_core::syscall::wait_status_exit_code(status),
            })),
            SysResult::Err(e) => Err(e),
            _ => Err(Errno::EIO),
        }
    }

    fn pending_signals(&mut self) -> Vec<Signal> {
        self.client.pending_signals()
    }

    fn fork(&mut self, image: Vec<u8>) -> Result<u32, Errno> {
        let _ = self.flush_stdout();
        self.expect_int(Syscall::Fork { image, resume_point: 0 })
            .map(|pid| pid as u32)
    }

    fn fork_image(&self) -> Option<Vec<u8>> {
        self.fork_image.clone()
    }

    fn exit(&mut self, code: i32) {
        self.exit_process(code);
    }

    fn socket(&mut self) -> Result<Fd, Errno> {
        self.expect_int(Syscall::Socket).map(|fd| fd as Fd)
    }

    fn bind(&mut self, fd: Fd, port: u16) -> Result<u16, Errno> {
        self.expect_int(Syscall::Bind { fd, port }).map(|p| p as u16)
    }

    fn listen(&mut self, fd: Fd, backlog: u32) -> Result<(), Errno> {
        self.expect_ok(Syscall::Listen { fd, backlog })
    }

    fn accept(&mut self, fd: Fd) -> Result<Fd, Errno> {
        self.expect_int(Syscall::Accept { fd }).map(|fd| fd as Fd)
    }

    fn connect(&mut self, fd: Fd, port: u16) -> Result<(), Errno> {
        self.expect_ok(Syscall::Connect { fd, port })
    }

    fn ftruncate(&mut self, fd: Fd, size: u64) -> Result<(), Errno> {
        self.expect_ok(Syscall::Ftruncate { fd, size })
    }

    fn mmap(&mut self, addr: u64, len: u64, prot: u32, flags: u32, fd: Fd, offset: u64) -> Result<MappedRegion, Errno> {
        let base = self.expect_int(Syscall::Mmap {
            addr,
            len,
            prot,
            flags,
            fd,
            offset,
        })? as u64;
        // For MAP_SHARED the kernel posted the backing buffer out of band
        // before completing the call, so it is already waiting for us.
        let shared = if flags & MAP_SHARED != 0 {
            let sab = self.client.take_shared_map(base).ok_or(Errno::EIO)?;
            Some(sab)
        } else {
            None
        };
        Ok(MappedRegion {
            addr: base,
            len: browsix_core::vm::page_align(len),
            shared,
            shared_offset: 0,
        })
    }

    fn munmap(&mut self, addr: u64, len: u64) -> Result<(), Errno> {
        self.expect_ok(Syscall::Munmap { addr, len })
    }

    fn msync(&mut self, addr: u64, len: u64) -> Result<(), Errno> {
        self.expect_ok(Syscall::Msync { addr, len })
    }

    fn mprotect(&mut self, addr: u64, len: u64, prot: u32) -> Result<(), Errno> {
        self.expect_ok(Syscall::Mprotect { addr, len, prot })
    }

    fn shm_open(&mut self, name: &str, flags: OpenFlags, mode: u32) -> Result<Fd, Errno> {
        self.expect_int(Syscall::ShmOpen {
            name: name.to_owned(),
            flags: flags.to_bits(),
            mode,
        })
        .map(|fd| fd as Fd)
    }

    fn shm_unlink(&mut self, name: &str) -> Result<(), Errno> {
        self.expect_ok(Syscall::ShmUnlink { name: name.to_owned() })
    }

    fn vm_read(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, Errno> {
        self.expect_data(Syscall::VmRead { addr, len: len as u32 })
    }

    fn vm_write(&mut self, addr: u64, data: &[u8]) -> Result<(), Errno> {
        let source = self.client.stage_write(data);
        self.expect_ok(Syscall::VmWrite { addr, data: source })
    }

    fn charge_compute(&mut self, units: u64) {
        self.profile.charge(units);
    }

    fn profile(&self) -> &ExecutionProfile {
        &self.profile
    }
}
