//! The native and Node.js-on-Linux baselines.
//!
//! Figure 9 of the paper compares utilities running under Browsix against the
//! same utilities running directly on Linux (GNU coreutils) and under Node.js
//! on Linux.  [`NativeWorld`] provides those baselines: guest programs run in
//! the calling thread, against the same in-process file system, with no
//! kernel, no workers and no message passing — only the execution profile
//! differs (native C vs V8-executed JavaScript).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use browsix_browser::SharedArrayBuffer;
use browsix_core::vm::{page_align, AddressSpace, ShmObject};
use browsix_core::{Errno, Signal, MAP_ANONYMOUS, MAP_SHARED, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use browsix_fs::{DirEntry, FileHandle, FileSystem, Metadata, MountedFs, OpenFlags};

use crate::env::{Fd, MappedRegion, PollFd, RuntimeEnv, SpawnStdio, WaitedChild};
use crate::profile::ExecutionProfile;
use crate::program::ProgramTable;

/// A shared, unbounded in-memory pipe used by the native baseline.
#[derive(Debug, Default)]
struct NativePipe {
    data: std::collections::VecDeque<u8>,
    write_closed: bool,
}

/// What a native descriptor refers to.
#[derive(Clone)]
enum NativeFd {
    /// An open regular file: the path was resolved to a handle at `open`,
    /// mirroring the kernel's descriptor table.
    File {
        handle: Arc<dyn FileHandle>,
        flags: OpenFlags,
        offset: u64,
    },
    /// A directory opened read-only (stat-able, not readable).
    Dir {
        path: String,
    },
    PipeRead(Arc<Mutex<NativePipe>>),
    PipeWrite(Arc<Mutex<NativePipe>>),
    Sink(Arc<Mutex<Vec<u8>>>),
    Source {
        data: Arc<Vec<u8>>,
        pos: usize,
    },
    Null,
}

/// The result of running a program to completion in the native world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeRunResult {
    /// Exit code returned by the program.
    pub exit_code: i32,
    /// Captured standard output.
    pub stdout: Vec<u8>,
    /// Captured standard error.
    pub stderr: Vec<u8>,
}

impl NativeRunResult {
    /// Standard output as (lossy) UTF-8.
    pub fn stdout_string(&self) -> String {
        String::from_utf8_lossy(&self.stdout).into_owned()
    }
}

/// An execution world with no kernel: programs run in the calling thread
/// against a shared file system.
#[derive(Clone)]
pub struct NativeWorld {
    fs: Arc<MountedFs>,
    table: ProgramTable,
    profile: ExecutionProfile,
    next_pid: Arc<AtomicU32>,
    /// Named POSIX shared-memory objects, shared by every process in the
    /// world (the native analogue of the kernel's `shm_open` registry).
    shm: Arc<Mutex<HashMap<String, Arc<ShmObject>>>>,
}

impl std::fmt::Debug for NativeWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeWorld")
            .field("profile", &self.profile.name)
            .field("programs", &self.table.len())
            .finish()
    }
}

impl NativeWorld {
    /// Creates a world over `fs` with the given execution profile
    /// (typically [`ExecutionProfile::native`] or
    /// [`ExecutionProfile::nodejs_linux`]).
    pub fn new(fs: Arc<MountedFs>, profile: ExecutionProfile) -> NativeWorld {
        NativeWorld {
            fs,
            table: ProgramTable::new(),
            profile,
            next_pid: Arc::new(AtomicU32::new(1)),
            shm: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The program table; register guest programs here.
    pub fn table(&self) -> &ProgramTable {
        &self.table
    }

    /// The shared file system.
    pub fn fs(&self) -> Arc<MountedFs> {
        Arc::clone(&self.fs)
    }

    /// The world's execution profile.
    pub fn profile(&self) -> &ExecutionProfile {
        &self.profile
    }

    /// Runs a program to completion with empty standard input.
    pub fn run(&self, path_or_name: &str, args: &[&str]) -> NativeRunResult {
        self.run_with_stdin(path_or_name, args, &[])
    }

    /// Runs a program to completion, feeding it `stdin`.
    pub fn run_with_stdin(&self, path_or_name: &str, args: &[&str], stdin: &[u8]) -> NativeRunResult {
        let stdout = Arc::new(Mutex::new(Vec::new()));
        let stderr = Arc::new(Mutex::new(Vec::new()));
        let exit_code = match self.table.instantiate(path_or_name) {
            Some(mut program) => {
                let mut env = NativeEnv::new(self.clone(), args, "/");
                env.fds.insert(
                    0,
                    NativeFd::Source {
                        data: Arc::new(stdin.to_vec()),
                        pos: 0,
                    },
                );
                env.fds.insert(1, NativeFd::Sink(Arc::clone(&stdout)));
                env.fds.insert(2, NativeFd::Sink(Arc::clone(&stderr)));
                program.run(&mut env)
            }
            None => {
                stderr.lock().extend_from_slice(b"command not found\n");
                127
            }
        };
        let stdout_bytes = stdout.lock().clone();
        let stderr_bytes = stderr.lock().clone();
        NativeRunResult {
            exit_code,
            stdout: stdout_bytes,
            stderr: stderr_bytes,
        }
    }
}

/// A [`RuntimeEnv`] with no kernel underneath: every operation is a direct
/// call into the in-process file system.
pub struct NativeEnv {
    world: NativeWorld,
    pid: u32,
    ppid: u32,
    args: Vec<String>,
    env: Vec<(String, String)>,
    cwd: String,
    fds: HashMap<Fd, NativeFd>,
    next_fd: Fd,
    /// Descriptors with `O_NONBLOCK` set.
    nonblocking: HashSet<Fd>,
    reaped: Vec<WaitedChild>,
    exit_code: Option<i32>,
    handled_signals: Vec<Signal>,
    /// The process's address space, same model the kernel keeps per task.
    address_space: AddressSpace,
}

impl NativeEnv {
    /// Creates a process-like environment in `world`.
    pub fn new(world: NativeWorld, args: &[&str], cwd: &str) -> NativeEnv {
        let pid = world.next_pid.fetch_add(1, Ordering::Relaxed);
        let mut fds = HashMap::new();
        fds.insert(0, NativeFd::Null);
        fds.insert(1, NativeFd::Null);
        fds.insert(2, NativeFd::Null);
        NativeEnv {
            world,
            pid,
            ppid: 0,
            args: args.iter().map(|s| s.to_string()).collect(),
            env: vec![
                ("PATH".to_owned(), "/usr/bin:/bin".to_owned()),
                ("HOME".to_owned(), "/home".to_owned()),
            ],
            cwd: browsix_fs::path::normalize(cwd),
            fds,
            next_fd: 3,
            nonblocking: HashSet::new(),
            reaped: Vec::new(),
            exit_code: None,
            handled_signals: Vec::new(),
            address_space: AddressSpace::new(),
        }
    }

    /// The exit code recorded by an explicit [`RuntimeEnv::exit`] call.
    pub fn recorded_exit(&self) -> Option<i32> {
        self.exit_code
    }

    fn resolve(&self, path: &str) -> String {
        browsix_fs::path::resolve(&self.cwd, path)
    }

    fn alloc_fd(&mut self, fd: NativeFd) -> Fd {
        let id = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(id, fd);
        id
    }

    fn fd_entry(&mut self, fd: Fd) -> Result<&mut NativeFd, Errno> {
        self.fds.get_mut(&fd).ok_or(Errno::EBADF)
    }

    /// The file handle behind descriptor `fd`, for mapping.
    fn file_handle(&self, fd: Fd) -> Result<Arc<dyn FileHandle>, Errno> {
        match self.fds.get(&fd).ok_or(Errno::EBADF)? {
            NativeFd::File { handle, .. } => Ok(Arc::clone(handle)),
            NativeFd::Dir { .. } => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    /// Finds the registered shm object a handle belongs to (identity, not
    /// name, so descriptors survive `shm_unlink`).
    fn shm_object_for(&self, handle: &Arc<dyn FileHandle>) -> Option<Arc<ShmObject>> {
        self.world
            .shm
            .lock()
            .values()
            .find(|object| Arc::ptr_eq(&object.handle, handle))
            .map(Arc::clone)
    }
}

impl RuntimeEnv for NativeEnv {
    fn args(&self) -> Vec<String> {
        self.args.clone()
    }

    fn env_vars(&self) -> Vec<(String, String)> {
        self.env.clone()
    }

    fn getpid(&mut self) -> u32 {
        self.pid
    }

    fn getppid(&mut self) -> u32 {
        self.ppid
    }

    fn getcwd(&mut self) -> String {
        self.cwd.clone()
    }

    fn chdir(&mut self, path: &str) -> Result<(), Errno> {
        let target = self.resolve(path);
        let meta = self.world.fs.stat(&target)?;
        if !meta.is_dir() {
            return Err(Errno::ENOTDIR);
        }
        self.cwd = target;
        Ok(())
    }

    fn open(&mut self, path: &str, flags: OpenFlags) -> Result<Fd, Errno> {
        let path = self.resolve(path);
        match self.world.fs.stat(&path) {
            Ok(meta) => {
                if flags.create && flags.exclusive {
                    return Err(Errno::EEXIST);
                }
                if meta.is_dir() {
                    if flags.write {
                        return Err(Errno::EISDIR);
                    }
                    return Ok(self.alloc_fd(NativeFd::Dir { path }));
                }
            }
            Err(Errno::ENOENT) if flags.create => {
                self.world.fs.create(&path, 0o644)?;
            }
            Err(e) => return Err(e),
        }
        // Resolve the path exactly once; all I/O goes through the handle.
        let handle = self.world.fs.open_handle(&path, flags)?;
        if flags.truncate && flags.write {
            handle.truncate(0)?;
        }
        Ok(self.alloc_fd(NativeFd::File {
            handle,
            flags,
            offset: 0,
        }))
    }

    fn close(&mut self, fd: Fd) -> Result<(), Errno> {
        self.nonblocking.remove(&fd);
        match self.fds.remove(&fd) {
            Some(NativeFd::PipeWrite(pipe)) => {
                // Closing the last writer marks EOF for readers.  The native
                // baseline shares pipes only between a parent and one child,
                // so a single close is sufficient.
                pipe.lock().write_closed = true;
                Ok(())
            }
            Some(_) => Ok(()),
            None => Err(Errno::EBADF),
        }
    }

    fn read(&mut self, fd: Fd, len: usize) -> Result<Vec<u8>, Errno> {
        let nonblocking = self.nonblocking.contains(&fd);
        match self.fd_entry(fd)? {
            NativeFd::File { handle, flags, offset } => {
                if !flags.read {
                    return Err(Errno::EBADF);
                }
                let data = handle.read_at(*offset, len)?;
                *offset += data.len() as u64;
                Ok(data)
            }
            NativeFd::Dir { .. } => Err(Errno::EISDIR),
            NativeFd::PipeRead(pipe) => {
                let mut pipe = pipe.lock();
                if pipe.data.is_empty() && !pipe.write_closed && nonblocking {
                    // The native baseline runs children synchronously, so a
                    // blocking read on an open empty pipe would return EOF;
                    // a non-blocking one must report EAGAIN like the kernel.
                    return Err(Errno::EAGAIN);
                }
                let take = len.min(pipe.data.len());
                Ok(pipe.data.drain(..take).collect())
            }
            NativeFd::Source { data, pos } => {
                let start = (*pos).min(data.len());
                let end = (start + len).min(data.len());
                *pos = end;
                Ok(data[start..end].to_vec())
            }
            NativeFd::Null => Ok(Vec::new()),
            NativeFd::Sink(_) | NativeFd::PipeWrite(_) => Err(Errno::EBADF),
        }
    }

    fn write(&mut self, fd: Fd, data: &[u8]) -> Result<usize, Errno> {
        match self.fd_entry(fd)? {
            NativeFd::File { handle, flags, offset } => {
                if !flags.write {
                    return Err(Errno::EBADF);
                }
                if flags.append {
                    // Atomic seek-to-end at the handle layer (O_APPEND).
                    *offset = handle.append(data)?;
                    Ok(data.len())
                } else {
                    let written = handle.write_at(*offset, data)?;
                    *offset += written as u64;
                    Ok(written)
                }
            }
            NativeFd::Dir { .. } => Err(Errno::EISDIR),
            NativeFd::PipeWrite(pipe) => {
                pipe.lock().data.extend(data.iter().copied());
                Ok(data.len())
            }
            NativeFd::Sink(sink) => {
                sink.lock().extend_from_slice(data);
                Ok(data.len())
            }
            NativeFd::Null => Ok(data.len()),
            NativeFd::Source { .. } | NativeFd::PipeRead(_) => Err(Errno::EBADF),
        }
    }

    fn pread(&mut self, fd: Fd, len: usize, offset: u64) -> Result<Vec<u8>, Errno> {
        match self.fd_entry(fd)? {
            NativeFd::File { handle, .. } => handle.read_at(offset, len),
            _ => Err(Errno::ESPIPE),
        }
    }

    fn pwrite(&mut self, fd: Fd, data: &[u8], offset: u64) -> Result<usize, Errno> {
        match self.fd_entry(fd)? {
            NativeFd::File { handle, .. } => handle.write_at(offset, data),
            _ => Err(Errno::ESPIPE),
        }
    }

    fn seek(&mut self, fd: Fd, offset: i64, whence: u32) -> Result<u64, Errno> {
        match self.fd_entry(fd)? {
            NativeFd::File {
                handle,
                offset: current,
                ..
            } => {
                let base = match whence {
                    0 => 0,
                    1 => *current as i64,
                    2 => handle.metadata()?.size as i64,
                    _ => return Err(Errno::EINVAL),
                };
                let target = base + offset;
                if target < 0 {
                    return Err(Errno::EINVAL);
                }
                *current = target as u64;
                Ok(*current)
            }
            _ => Err(Errno::ESPIPE),
        }
    }

    fn dup2(&mut self, from: Fd, to: Fd) -> Result<(), Errno> {
        let entry = self.fds.get(&from).ok_or(Errno::EBADF)?.clone();
        self.fds.insert(to, entry);
        Ok(())
    }

    fn fstat(&mut self, fd: Fd) -> Result<Metadata, Errno> {
        let fs = Arc::clone(&self.world.fs);
        match self.fd_entry(fd)? {
            NativeFd::File { handle, .. } => handle.metadata(),
            NativeFd::Dir { path } => fs.stat(path),
            _ => Ok(Metadata::regular(0)),
        }
    }

    fn fsync(&mut self, fd: Fd) -> Result<(), Errno> {
        match self.fd_entry(fd)? {
            NativeFd::File { handle, .. } => handle.fsync(),
            _ => Ok(()),
        }
    }

    fn poll(&mut self, fds: &mut [PollFd], _timeout_ms: i32) -> Result<usize, Errno> {
        // The native world is synchronous: readiness never changes while we
        // "wait", so poll reports the current state immediately.
        let mut ready = 0;
        for slot in fds.iter_mut() {
            let revents = match self.fds.get(&slot.fd) {
                None => POLLNVAL,
                Some(NativeFd::PipeRead(pipe)) => {
                    let pipe = pipe.lock();
                    let mut revents = 0;
                    if !pipe.data.is_empty() {
                        revents |= POLLIN;
                    }
                    if pipe.write_closed {
                        revents |= POLLHUP;
                    }
                    revents
                }
                // Native pipes are unbounded, so the write side (like files,
                // sinks and sources) is always ready.
                Some(NativeFd::PipeWrite(_)) => POLLOUT,
                Some(_) => POLLIN | POLLOUT,
            };
            slot.revents = revents & (slot.events | POLLHUP | POLLNVAL);
            if slot.revents != 0 {
                ready += 1;
            }
        }
        Ok(ready)
    }

    fn set_nonblocking(&mut self, fd: Fd, nonblocking: bool) -> Result<(), Errno> {
        if !self.fds.contains_key(&fd) {
            return Err(Errno::EBADF);
        }
        if nonblocking {
            self.nonblocking.insert(fd);
        } else {
            self.nonblocking.remove(&fd);
        }
        Ok(())
    }

    fn stat(&mut self, path: &str) -> Result<Metadata, Errno> {
        let path = self.resolve(path);
        self.world.fs.stat(&path)
    }

    fn readdir(&mut self, path: &str) -> Result<Vec<DirEntry>, Errno> {
        let path = self.resolve(path);
        self.world.fs.read_dir(&path)
    }

    fn mkdir(&mut self, path: &str) -> Result<(), Errno> {
        let path = self.resolve(path);
        self.world.fs.mkdir(&path)
    }

    fn rmdir(&mut self, path: &str) -> Result<(), Errno> {
        let path = self.resolve(path);
        self.world.fs.rmdir(&path)
    }

    fn unlink(&mut self, path: &str) -> Result<(), Errno> {
        let path = self.resolve(path);
        self.world.fs.unlink(&path)
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), Errno> {
        let from = self.resolve(from);
        let to = self.resolve(to);
        self.world.fs.rename(&from, &to)
    }

    fn truncate(&mut self, path: &str, size: u64) -> Result<(), Errno> {
        let path = self.resolve(path);
        self.world.fs.truncate(&path, size)
    }

    fn access(&mut self, path: &str) -> Result<(), Errno> {
        let path = self.resolve(path);
        self.world.fs.stat(&path).map(|_| ())
    }

    fn utimes(&mut self, path: &str, atime_ms: u64, mtime_ms: u64) -> Result<(), Errno> {
        let path = self.resolve(path);
        self.world.fs.set_times(&path, atime_ms, mtime_ms)
    }

    fn spawn(&mut self, path: &str, args: &[String], stdio: SpawnStdio) -> Result<u32, Errno> {
        let resolved = self.resolve(path);
        let mut program = self
            .world
            .table
            .instantiate(&resolved)
            .or_else(|| self.world.table.instantiate(path))
            .ok_or(Errno::ENOENT)?;
        let arg_refs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
        let mut child = NativeEnv::new(self.world.clone(), &arg_refs, &self.cwd);
        child.ppid = self.pid;
        child.env = self.env.clone();
        // Wire the child's standard descriptors.
        for (child_fd, selector) in [(0, stdio.stdin), (1, stdio.stdout), (2, stdio.stderr)] {
            let source = selector.unwrap_or(child_fd);
            if let Some(entry) = self.fds.get(&source) {
                child.fds.insert(child_fd, entry.clone());
            }
        }
        // The native baseline runs children synchronously: by the time spawn
        // returns, the child has finished (sufficient for the paper's
        // single-program and simple-pipeline workloads).
        let code = program.run(&mut child);
        let child_pid = child.pid;
        self.reaped.push(WaitedChild {
            pid: child_pid,
            status: (code & 0xff) << 8,
            exit_code: Some(code),
        });
        Ok(child_pid)
    }

    fn wait(&mut self, pid: i32) -> Result<WaitedChild, Errno> {
        let index = self
            .reaped
            .iter()
            .position(|child| pid < 0 || child.pid == pid as u32)
            .ok_or(Errno::ECHILD)?;
        Ok(self.reaped.remove(index))
    }

    fn wait_nohang(&mut self, pid: i32) -> Result<Option<WaitedChild>, Errno> {
        match self.wait(pid) {
            Ok(child) => Ok(Some(child)),
            Err(Errno::ECHILD) => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn pipe(&mut self) -> Result<(Fd, Fd), Errno> {
        let pipe = Arc::new(Mutex::new(NativePipe::default()));
        let read_fd = self.alloc_fd(NativeFd::PipeRead(Arc::clone(&pipe)));
        let write_fd = self.alloc_fd(NativeFd::PipeWrite(pipe));
        Ok((read_fd, write_fd))
    }

    fn kill(&mut self, _pid: u32, _signal: Signal) -> Result<(), Errno> {
        // The native baseline has no concurrently-running processes to signal.
        Err(Errno::ESRCH)
    }

    fn getpgid(&mut self, pid: u32) -> Result<u32, Errno> {
        // Every native process leads its own group (children run
        // synchronously, so groups never matter here).
        if pid == 0 || pid == self.pid {
            Ok(self.pid)
        } else {
            Err(Errno::ESRCH)
        }
    }

    fn register_signal_handler(&mut self, signal: Signal) -> Result<(), Errno> {
        self.handled_signals.push(signal);
        Ok(())
    }

    fn pending_signals(&mut self) -> Vec<Signal> {
        Vec::new()
    }

    fn fork(&mut self, _image: Vec<u8>) -> Result<u32, Errno> {
        Err(Errno::ENOSYS)
    }

    fn fork_image(&self) -> Option<Vec<u8>> {
        None
    }

    fn exit(&mut self, code: i32) {
        self.exit_code = Some(code);
    }

    fn socket(&mut self) -> Result<Fd, Errno> {
        Err(Errno::ENOSYS)
    }

    fn bind(&mut self, _fd: Fd, _port: u16) -> Result<u16, Errno> {
        Err(Errno::ENOSYS)
    }

    fn listen(&mut self, _fd: Fd, _backlog: u32) -> Result<(), Errno> {
        Err(Errno::ENOSYS)
    }

    fn accept(&mut self, _fd: Fd) -> Result<Fd, Errno> {
        Err(Errno::ENOSYS)
    }

    fn connect(&mut self, _fd: Fd, _port: u16) -> Result<(), Errno> {
        Err(Errno::ENOSYS)
    }

    fn ftruncate(&mut self, fd: Fd, size: u64) -> Result<(), Errno> {
        match self.fd_entry(fd)? {
            NativeFd::File { handle, flags, .. } => {
                if !flags.write {
                    return Err(Errno::EINVAL);
                }
                handle.truncate(size)
            }
            NativeFd::Dir { .. } => Err(Errno::EISDIR),
            _ => Err(Errno::EINVAL),
        }
    }

    fn mmap(&mut self, addr: u64, len: u64, prot: u32, flags: u32, fd: Fd, offset: u64) -> Result<MappedRegion, Errno> {
        // Same placement and backing rules as the kernel's handlers, run
        // directly against this process's embedded address space.
        if flags & MAP_SHARED != 0 {
            let (sab, handle) = if flags & MAP_ANONYMOUS != 0 {
                if len == 0 {
                    return Err(Errno::EINVAL);
                }
                (SharedArrayBuffer::new(page_align(len) as usize), None)
            } else {
                let handle = self.file_handle(fd)?;
                let sab = match self.shm_object_for(&handle) {
                    Some(object) => object.sab_for_mapping()?,
                    None => {
                        let size = page_align(handle.metadata()?.size.max(offset + len));
                        if size == 0 {
                            return Err(Errno::EINVAL);
                        }
                        let sab = SharedArrayBuffer::new(size as usize);
                        let seed = handle.read_at(0, size as usize)?;
                        sab.write_bytes(0, &seed).map_err(|_| Errno::EIO)?;
                        sab
                    }
                };
                (sab, Some(handle))
            };
            let base = self
                .address_space
                .map_shared(sab.clone(), handle, offset, len, addr, prot)?;
            return Ok(MappedRegion {
                addr: base,
                len: page_align(len),
                shared: Some(sab),
                shared_offset: 0,
            });
        }
        let base = if flags & MAP_ANONYMOUS != 0 {
            self.address_space.map_anonymous(addr, len, prot)?
        } else {
            let handle = self.file_handle(fd)?;
            self.address_space.map_file(&handle, offset, len, addr, prot)?.0
        };
        Ok(MappedRegion {
            addr: base,
            len: page_align(len),
            shared: None,
            shared_offset: 0,
        })
    }

    fn munmap(&mut self, addr: u64, len: u64) -> Result<(), Errno> {
        self.address_space.unmap(addr, len).map(|_| ())
    }

    fn msync(&mut self, addr: u64, len: u64) -> Result<(), Errno> {
        self.address_space.msync(addr, len)
    }

    fn mprotect(&mut self, addr: u64, len: u64, prot: u32) -> Result<(), Errno> {
        self.address_space.protect(addr, len, prot)
    }

    fn shm_open(&mut self, name: &str, flags: OpenFlags, _mode: u32) -> Result<Fd, Errno> {
        let object = {
            let mut shm = self.world.shm.lock();
            match shm.get(name) {
                Some(object) => {
                    if flags.create && flags.exclusive {
                        return Err(Errno::EEXIST);
                    }
                    Arc::clone(object)
                }
                None => {
                    if !flags.create {
                        return Err(Errno::ENOENT);
                    }
                    let object = Arc::new(ShmObject::new());
                    shm.insert(name.to_owned(), Arc::clone(&object));
                    object
                }
            }
        };
        if flags.truncate {
            object.handle.truncate(0)?;
        }
        Ok(self.alloc_fd(NativeFd::File {
            handle: Arc::clone(&object.handle),
            flags,
            offset: 0,
        }))
    }

    fn shm_unlink(&mut self, name: &str) -> Result<(), Errno> {
        self.world.shm.lock().remove(name).map(|_| ()).ok_or(Errno::ENOENT)
    }

    fn vm_read(&mut self, addr: u64, len: usize) -> Result<Vec<u8>, Errno> {
        self.address_space.read(addr, len)
    }

    fn vm_write(&mut self, addr: u64, data: &[u8]) -> Result<(), Errno> {
        self.address_space.write(addr, data).map(|_| ())
    }

    fn charge_compute(&mut self, units: u64) {
        self.world.profile.charge(units);
    }

    fn profile(&self) -> &ExecutionProfile {
        &self.world.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{factory, FnProgram};
    use browsix_fs::MemFs;

    fn world() -> NativeWorld {
        let fs = Arc::new(MountedFs::new(Arc::new(MemFs::new())));
        NativeWorld::new(fs, ExecutionProfile::instant(crate::SyscallConvention::Direct))
    }

    #[test]
    fn run_program_captures_output_and_exit_code() {
        let world = world();
        world.table().register(
            "/usr/bin/hello",
            factory(|| {
                FnProgram::new("hello", |env: &mut dyn RuntimeEnv| {
                    env.print("hello world\n");
                    env.eprint("warning\n");
                    0
                })
            }),
        );
        let result = world.run("hello", &["hello"]);
        assert_eq!(result.exit_code, 0);
        assert_eq!(result.stdout_string(), "hello world\n");
        assert_eq!(result.stderr, b"warning\n");
    }

    #[test]
    fn missing_program_exits_127() {
        let result = world().run("nonexistent", &["nonexistent"]);
        assert_eq!(result.exit_code, 127);
        assert!(!result.stderr.is_empty());
    }

    #[test]
    fn file_io_round_trip_through_env() {
        let world = world();
        world.fs().mkdir("/data").unwrap();
        let mut env = NativeEnv::new(world.clone(), &["test"], "/data");
        env.write_file("notes.txt", b"line one\n").unwrap();
        assert_eq!(env.read_file("/data/notes.txt").unwrap(), b"line one\n");
        assert!(env.exists("notes.txt"));
        assert_eq!(env.stat("notes.txt").unwrap().size, 9);

        // Append and seek behaviour.
        let fd = env.open("notes.txt", OpenFlags::append_create()).unwrap();
        env.write(fd, b"line two\n").unwrap();
        env.close(fd).unwrap();
        let fd = env.open("notes.txt", OpenFlags::read_only()).unwrap();
        env.seek(fd, 5, 0).unwrap();
        assert_eq!(env.read(fd, 4).unwrap(), b"one\n");
        env.close(fd).unwrap();
        assert_eq!(env.close(fd), Err(Errno::EBADF));
    }

    #[test]
    fn directories_and_metadata() {
        let world = world();
        let mut env = NativeEnv::new(world, &["test"], "/");
        env.mkdir("/proj").unwrap();
        env.chdir("/proj").unwrap();
        assert_eq!(env.getcwd(), "/proj");
        env.write_file("a.txt", b"1").unwrap();
        env.write_file("b.txt", b"22").unwrap();
        let names: Vec<String> = env.readdir(".").unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["a.txt", "b.txt"]);
        env.rename("a.txt", "c.txt").unwrap();
        assert!(env.exists("c.txt"));
        env.unlink("b.txt").unwrap();
        env.truncate("c.txt", 0).unwrap();
        assert_eq!(env.stat("c.txt").unwrap().size, 0);
        assert_eq!(env.chdir("/missing"), Err(Errno::ENOENT));
        assert_eq!(env.chdir("/proj/c.txt"), Err(Errno::ENOTDIR));
    }

    #[test]
    fn spawn_runs_children_and_wait_reaps_them() {
        let world = world();
        world.table().register(
            "/usr/bin/child",
            factory(|| {
                FnProgram::new("child", |env: &mut dyn RuntimeEnv| {
                    env.print("from child\n");
                    7
                })
            }),
        );
        let mut env = NativeEnv::new(world, &["parent"], "/");
        let (read_fd, write_fd) = env.pipe().unwrap();
        let pid = env
            .spawn(
                "/usr/bin/child",
                &["child".to_string()],
                SpawnStdio {
                    stdout: Some(write_fd),
                    ..SpawnStdio::default()
                },
            )
            .unwrap();
        let child = env.wait(pid as i32).unwrap();
        assert_eq!(child.exit_code, Some(7));
        env.close(write_fd).unwrap();
        assert_eq!(env.read(read_fd, 64).unwrap(), b"from child\n");
        assert_eq!(env.wait(-1), Err(Errno::ECHILD));
        assert_eq!(env.wait_nohang(-1).unwrap(), None);
    }

    #[test]
    fn unsupported_operations_report_enosys() {
        let mut env = NativeEnv::new(world(), &["x"], "/");
        assert_eq!(env.socket(), Err(Errno::ENOSYS));
        assert_eq!(env.fork(vec![]), Err(Errno::ENOSYS));
        assert_eq!(env.fork_image(), None);
        assert_eq!(env.kill(1, Signal::SIGTERM), Err(Errno::ESRCH));
        env.exit(3);
        assert_eq!(env.recorded_exit(), Some(3));
    }

    #[test]
    fn mappings_and_shared_memory_work_natively() {
        use browsix_core::{MAP_PRIVATE, PROT_READ, PROT_WRITE};
        let world = world();
        let mut env = NativeEnv::new(world.clone(), &["a"], "/");

        // Private anonymous mapping reached through vm_read/vm_write.
        let region = env
            .mmap(0, 8192, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0)
            .unwrap();
        assert!(!region.is_shared());
        env.vm_write(region.addr + 100, b"native").unwrap();
        assert_eq!(env.vm_read(region.addr + 100, 6).unwrap(), b"native");
        env.munmap(region.addr, region.len).unwrap();

        // Named shared memory visible to a second process in the same world.
        let flags = OpenFlags {
            create: true,
            ..OpenFlags::read_write()
        };
        let fd = env.shm_open("/ring", flags, 0o600).unwrap();
        env.ftruncate(fd, 4096).unwrap();
        let map_a = env.mmap(0, 4096, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0).unwrap();
        map_a.shared_write(0, b"ping").unwrap();

        let mut other = NativeEnv::new(world, &["b"], "/");
        let fd_b = other.shm_open("/ring", OpenFlags::read_write(), 0).unwrap();
        let map_b = other
            .mmap(0, 4096, PROT_READ | PROT_WRITE, MAP_SHARED, fd_b, 0)
            .unwrap();
        assert_eq!(map_b.shared_read(0, 4).unwrap(), b"ping");

        // Writes travel the other way too: the buffer is aliased, not copied.
        map_b.shared_write(8, b"pong").unwrap();
        assert_eq!(map_a.shared_read(8, 4).unwrap(), b"pong");

        other.shm_unlink("/ring").unwrap();
        assert_eq!(env.shm_unlink("/ring"), Err(Errno::ENOENT));
        // Descriptors keep working after the name is gone.
        assert_eq!(env.fstat(fd).unwrap().size, 4096);
    }

    #[test]
    fn stdin_source_is_consumed() {
        let world = world();
        world.table().register(
            "/usr/bin/upper",
            factory(|| {
                FnProgram::new("upper", |env: &mut dyn RuntimeEnv| {
                    let input = env.read_stdin_to_end();
                    let upper = String::from_utf8_lossy(&input).to_uppercase();
                    env.print(&upper);
                    0
                })
            }),
        );
        let result = world.run_with_stdin("upper", &["upper"], b"hello");
        assert_eq!(result.stdout, b"HELLO");
    }
}
