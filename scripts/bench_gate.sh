#!/usr/bin/env bash
# Benchmark regression gate: compares a fresh bench_smoke.sh run against the
# committed BENCH_smoke.json baseline, prints a per-id delta table, and fails
# when any benchmark id's mean regressed more than the threshold (30%).
#
# Usage: scripts/bench_gate.sh FRESH.json [BASELINE.json]
#        (BASELINE.json defaults to the committed BENCH_smoke.json)
set -euo pipefail
cd "$(dirname "$0")/.."

fresh="${1:?usage: bench_gate.sh FRESH.json [BASELINE.json]}"
baseline="${2:-BENCH_smoke.json}"

python3 - "$fresh" "$baseline" <<'EOF'
import json
import sys

THRESHOLD = 0.30  # fail on >30% mean regression for any id


def load(path):
    means = {}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            means[row["id"]] = row["mean_ns"]
    return means


fresh_path, base_path = sys.argv[1], sys.argv[2]
fresh, base = load(fresh_path), load(base_path)

failures = []
rows = []
for bench_id in sorted(base):
    baseline_ns = base[bench_id]
    fresh_ns = fresh.get(bench_id)
    if fresh_ns is None:
        failures.append(f"{bench_id}: present in the baseline but missing from the fresh run")
        continue
    delta = (fresh_ns - baseline_ns) / baseline_ns if baseline_ns else 0.0
    rows.append((bench_id, baseline_ns, fresh_ns, delta))
    if delta > THRESHOLD:
        failures.append(
            f"{bench_id}: {baseline_ns:.0f} ns -> {fresh_ns:.0f} ns "
            f"(+{delta * 100:.1f}% > {THRESHOLD * 100:.0f}%)"
        )

width = max((len(r[0]) for r in rows), default=10)
print(f"{'id'.ljust(width)}  {'baseline ns':>14}  {'fresh ns':>14}  {'delta':>8}")
for bench_id, baseline_ns, fresh_ns, delta in rows:
    print(f"{bench_id.ljust(width)}  {baseline_ns:>14.0f}  {fresh_ns:>14.0f}  {delta * 100:>+7.1f}%")
for bench_id in sorted(set(fresh) - set(base)):
    print(f"{bench_id.ljust(width)}  {'(new id)':>14}  {fresh[bench_id]:>14.0f}")

if failures:
    print(f"\nBENCH GATE FAILED vs {base_path}:")
    for failure in failures:
        print("  " + failure)
    sys.exit(1)
print(f"\nbench gate OK: no id regressed more than {THRESHOLD * 100:.0f}% vs {base_path}")
EOF
