#!/usr/bin/env bash
# ABI freshness gate: verifies that the committed docs/ABI.md matches what
# browsix-abigen renders from abi/syscalls.abi, and prints the generation
# manifest.  CI runs this next to the build so an IDL edit that forgets to
# regenerate the reference fails fast.
#
# Usage: scripts/abigen_check.sh          # check (CI mode, fails on drift)
#        scripts/abigen_check.sh --fix    # regenerate docs/ABI.md in place
set -euo pipefail
cd "$(dirname "$0")/.."

idl=abi/syscalls.abi
doc=docs/ABI.md

if [[ "${1:-}" == "--fix" ]]; then
    cargo run -q -p browsix-abigen -- docs "$idl" "$doc"
    exit 0
fi

cargo run -q -p browsix-abigen -- manifest "$idl"
cargo run -q -p browsix-abigen -- check "$idl" "$doc"
