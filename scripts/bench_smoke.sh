#!/usr/bin/env bash
# Benchmark smoke baseline: proves the perf targets still compile and records
# one fast criterion group as JSON for BENCH_*.json trajectory tracking.
#
# Usage: scripts/bench_smoke.sh [output.json]   (default: BENCH_smoke.json)
set -euo pipefail
cd "$(dirname "$0")/.."

# Resolve to an absolute path: cargo runs benches from the bench crate's
# directory, so a relative BROWSIX_BENCH_JSON would land there instead.
out="${1:-BENCH_smoke.json}"
case "$out" in
/*) ;;
*) out="$PWD/$out" ;;
esac

echo "== compiling all bench targets (cargo bench --no-run) =="
cargo bench --no-run

echo "== running the 'filesystem' criterion group =="
rm -f "$out"
BROWSIX_BENCH_JSON="$out" cargo bench -p browsix-bench --bench fs -- filesystem

echo "== baseline written to $out =="
cat "$out"
