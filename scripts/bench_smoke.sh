#!/usr/bin/env bash
# Benchmark smoke baseline: proves the perf targets still compile and records
# one fast criterion group as JSON for BENCH_*.json trajectory tracking.
#
# Usage: scripts/bench_smoke.sh [output.json]   (default: BENCH_smoke.json)
set -euo pipefail
cd "$(dirname "$0")/.."

# Resolve to an absolute path: cargo runs benches from the bench crate's
# directory, so a relative BROWSIX_BENCH_JSON would land there instead.
out="${1:-BENCH_smoke.json}"
case "$out" in
/*) ;;
*) out="$PWD/$out" ;;
esac

echo "== compiling all bench targets (cargo bench --no-run) =="
cargo bench --no-run

echo "== running the 'filesystem' criterion group =="
rm -f "$out"
BROWSIX_BENCH_JSON="$out" cargo bench -p browsix-bench --bench fs -- filesystem

echo "== running the 'fs_handles' criterion group =="
BROWSIX_BENCH_JSON="$out" cargo bench -p browsix-bench --bench fs -- fs_handles

echo "== running the 'syscall_batching' criterion group =="
BROWSIX_BENCH_JSON="$out" cargo bench -p browsix-bench --bench syscall_batching

echo "== running the 'readiness' criterion group =="
BROWSIX_BENCH_JSON="$out" cargo bench -p browsix-bench --bench readiness -- readiness

echo "== running the 'rings' criterion group =="
BROWSIX_BENCH_JSON="$out" cargo bench -p browsix-bench --bench rings -- rings

echo "== running the 'vm' criterion group =="
BROWSIX_BENCH_JSON="$out" cargo bench -p browsix-bench --bench vm -- vm

echo "== running the 'sharding' criterion group =="
BROWSIX_BENCH_JSON="$out" cargo bench -p browsix-bench --bench sharding -- sharding

echo "== baseline written to $out =="
cat "$out"

# Guard the headline result of the batched ABI: one batched submission must
# beat per-call round trips on the pipe/write-heavy workload.
python3 - "$out" <<'EOF'
import json, sys
means = {}
with open(sys.argv[1]) as fh:
    for line in fh:
        row = json.loads(line)
        means[row["id"]] = row["mean_ns"]
for convention in ("async", "sync"):
    batched = means.get(f"syscall_batching/{convention}_batched")
    per_call = means.get(f"syscall_batching/{convention}_per_call")
    if batched is None or per_call is None:
        sys.exit(f"missing syscall_batching results for {convention}")
    if batched >= per_call:
        sys.exit(f"{convention}: batched ({batched} ns) did not beat per-call ({per_call} ns)")
    print(f"{convention}: batched beats per-call by {per_call / batched:.1f}x")

# Guard the handle-based VFS: descriptor I/O through an open-file handle must
# beat legacy path-per-operation dispatch on the 1 MiB sequential read.
handle = means.get("fs_handles/handle_seq_read_1m")
per_op = means.get("fs_handles/path_per_op_seq_read_1m")
if handle is None or per_op is None:
    sys.exit("missing fs_handles results")
if handle >= per_op:
    sys.exit(f"fs_handles: handle I/O ({handle} ns) did not beat path-per-op ({per_op} ns)")
print(f"fs_handles: handle I/O beats path-per-op by {per_op / handle:.1f}x")

# Guard the wait-queue design: delivering one wakeup through per-resource
# wait queues must beat the old retry-everything rescan by at least 5x with
# 256 blocked waiters, and its cost must not grow with the waiter count.
wake_1 = means.get("readiness/wake_one_1")
wake_256 = means.get("readiness/wake_one_256")
rescan_256 = means.get("readiness/rescan_256")
if wake_1 is None or wake_256 is None or rescan_256 is None:
    sys.exit("missing readiness results")
if rescan_256 < 5 * wake_256:
    sys.exit(
        f"readiness: wait-queue wakeup ({wake_256} ns) is not 5x faster than "
        f"the rescan baseline at 256 waiters ({rescan_256} ns)"
    )
print(f"readiness: wait-queue wakeup beats the 256-waiter rescan by {rescan_256 / wake_256:.1f}x")
# Independence: the cost of one wakeup must not grow with the number of
# *other* blocked waiters (3x leaves room for measurement noise; the real
# ratio hovers around 1x, while a rescan-shaped regression lands near 30x).
if wake_256 > 3 * wake_1:
    sys.exit(
        f"readiness: wakeup cost grew with waiter count "
        f"({wake_1} ns at 1 waiter vs {wake_256} ns at 256)"
    )
print(f"readiness: wakeup cost at 256 waiters is {wake_256 / wake_1:.2f}x the 1-waiter cost (independence)")

# Guard the ring transport: submitting 256 individual pipe writes over the
# persistent shared-memory rings must beat the framed sync transport by at
# least 5x (the framed path pays the postMessage-priced doorbell per call;
# the ring path pays it only on empty->nonempty edges).
ring = means.get("rings/ring_submit_256")
framed = means.get("rings/framed_submit_256")
if ring is None or framed is None:
    sys.exit("missing rings results")
if framed < 5 * ring:
    sys.exit(
        f"rings: ring submission ({ring} ns) is not 5x faster than "
        f"framed submission ({framed} ns)"
    )
print(f"rings: ring submission beats framed by {framed / ring:.1f}x")

# Guard the zero-copy data path: httpd serving the 32 KiB payload over
# sendfile (page cache -> socket inside the kernel) must beat the classic
# read-then-write copy loop.
sendfile = means.get("readiness/httpd_payload_sendfile")
copy = means.get("readiness/httpd_payload_copy")
if sendfile is None or copy is None:
    sys.exit("missing httpd payload results")
if sendfile >= copy:
    sys.exit(f"sendfile: zero-copy serving ({sendfile} ns) did not beat the copy path ({copy} ns)")
print(f"sendfile: zero-copy serving beats the copy path by {copy / sendfile:.2f}x")

# Guard the virtual-memory subsystem: COW fork of a fully-resident 1 MiB
# address space must beat the old image-copy fork by at least 10x (fork is
# O(regions), not O(image bytes)), and mapping cached file pages must beat
# read() copies of the same megabyte.
cow = means.get("vm/cow_fork_1m")
image_copy = means.get("vm/image_copy_fork_1m")
mmap_read = means.get("vm/mmap_file_1m")
read_copy = means.get("vm/read_copy_1m")
if None in (cow, image_copy, mmap_read, read_copy):
    sys.exit("missing vm results")
if image_copy < 10 * cow:
    sys.exit(f"vm: COW fork ({cow} ns) is not 10x faster than image copy ({image_copy} ns)")
print(f"vm: COW fork beats the 1 MiB image-copy fork by {image_copy / cow:.1f}x")
if mmap_read >= read_copy:
    sys.exit(f"vm: mmap of cached pages ({mmap_read} ns) did not beat read() copies ({read_copy} ns)")
print(f"vm: mmap page references beat read() copies by {read_copy / mmap_read:.1f}x")

# Guard the sharded kernel: the fixed 16-request httpd workload must run at
# least 2.5x faster (i.e. >= 2.5x the requests/second) on a 4-shard kernel
# than on the classic single event loop.  Near-linear is ~4x; 2.5x leaves
# room for cross-shard protocol overhead and scheduler noise.
one_shard = means.get("sharding/httpd_rps_1shard")
four_shard = means.get("sharding/httpd_rps_4shard")
if one_shard is None or four_shard is None:
    sys.exit("missing sharding results")
if one_shard < 2.5 * four_shard:
    sys.exit(
        f"sharding: 4-shard httpd throughput is only {one_shard / four_shard:.2f}x "
        f"the 1-shard kernel ({four_shard} ns vs {one_shard} ns per iteration); need >= 2.5x"
    )
print(f"sharding: 4 shards serve the httpd workload {one_shard / four_shard:.2f}x faster than 1 shard")
EOF
