//! Generates the proptest fuzz-shape builders (`make_call`/`make_result`)
//! from `abi/syscalls.abi` via `browsix-abigen`, so the round-trip property
//! tests sweep every opcode automatically as the IDL grows.

use std::path::Path;

fn main() {
    let idl = Path::new(env!("CARGO_MANIFEST_DIR")).join("../abi/syscalls.abi");
    println!("cargo:rerun-if-changed={}", idl.display());
    let abi = browsix_abigen::load(&idl).unwrap_or_else(|e| panic!("abi/syscalls.abi: {e}"));
    let out_dir = std::env::var("OUT_DIR").expect("OUT_DIR");
    std::fs::write(
        Path::new(&out_dir).join("shapes_gen.rs"),
        browsix_abigen::codegen::gen_shapes(&abi),
    )
    .expect("write shapes_gen.rs");
}
