//! Integration-test crate for the Browsix reproduction.
//!
//! The library target is intentionally empty: all content lives in the
//! `tests/` directory, where each file exercises the full stack (browser
//! substrate, kernel, runtimes, utilities, shell and case studies) end to end.
