//! Property-based tests (proptest) over core data structures and invariants.

use proptest::prelude::*;

use browsix_browser::Message;
use browsix_core::{
    Completion, CompletionBatch, SigSet, Signal, SignalState, SyscallBatch, SIG_BLOCK, SIG_SETMASK, SIG_UNBLOCK,
};
use browsix_fs::{path, FileSystem, MemFs, OpenFlags};
use browsix_http::Json;

// The call/result shape builders (`make_call`/`make_result`) are generated
// from `abi/syscalls.abi` by `browsix-abigen` (see `build.rs`): one shape per
// opcode and one per result tag, with alternate encodings (inline vs
// shared-heap byte sources, `stat` vs `lstat`, empty vs populated lists)
// driven by the fuzz inputs.  The round-trip properties below therefore grow
// automatically whenever a syscall is added to the IDL.
mod abi_shapes {
    include!(concat!(env!("OUT_DIR"), "/shapes_gen.rs"));
}
use abi_shapes::{make_call, make_result, Fuzz, RESULT_SHAPES, SYSCALL_SHAPES};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Path normalisation is idempotent and always yields an absolute path.
    #[test]
    fn normalize_is_idempotent_and_absolute(input in "[a-z./]{0,40}") {
        let once = path::normalize(&input);
        prop_assert!(once.starts_with('/'));
        prop_assert_eq!(path::normalize(&once), once.clone());
        prop_assert!(!once.contains("//"));
        prop_assert!(!path::components(&once).iter().any(|c| c == "." || c == ".."));
    }

    /// resolve() against a cwd always lands under "/" and is normalised.
    #[test]
    fn resolve_always_absolute(cwd in "(/[a-z]{1,8}){0,4}", rel in "[a-z./]{0,20}") {
        let resolved = path::resolve(&format!("/{cwd}"), &rel);
        prop_assert!(resolved.starts_with('/'));
        prop_assert_eq!(path::normalize(&resolved), resolved);
    }

    /// Writing then reading a file through MemFs returns exactly the bytes
    /// written, regardless of how the writes are split.
    #[test]
    fn memfs_write_read_round_trip(chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..128), 0..8)) {
        let fs = MemFs::new();
        fs.create("/file", 0o644).unwrap();
        let mut expected = Vec::new();
        for chunk in &chunks {
            fs.write_at("/file", expected.len() as u64, chunk).unwrap();
            expected.extend_from_slice(chunk);
        }
        prop_assert_eq!(fs.read_file("/file").unwrap(), expected.clone());
        prop_assert_eq!(fs.stat("/file").unwrap().size as usize, expected.len());
    }

    /// The kernel stream ring buffer is a faithful FIFO: bytes come out in
    /// order and none are lost or invented, under arbitrary interleavings of
    /// push/pop (the ring wraps many times at this capacity).
    #[test]
    fn stream_preserves_fifo_byte_stream(ops in proptest::collection::vec((any::<bool>(), proptest::collection::vec(any::<u8>(), 0..64)), 1..40)) {
        let mut stream = browsix_core::Stream::new(1024);
        let mut sent: Vec<u8> = Vec::new();
        let mut received: Vec<u8> = Vec::new();
        for (is_write, data) in &ops {
            if *is_write {
                let accepted = stream.push(data);
                sent.extend_from_slice(&data[..accepted]);
            } else {
                received.extend(stream.pop(data.len().max(1)));
            }
        }
        received.extend(stream.pop(usize::MAX));
        prop_assert_eq!(received, sent);
    }

    /// Every `Syscall` variant round-trips through the wire codec
    /// (`encode → decode == id`), with fuzzed strings, buffers and scalars.
    /// Both transport conventions carry exactly this encoding, so this is the
    /// round-trip property for the whole submission path.
    #[test]
    fn every_syscall_variant_round_trips(
        text in "[a-z0-9._ -]{0,24}",
        data in proptest::collection::vec(any::<u8>(), 0..256),
        num in any::<i64>(),
        small in any::<u32>(),
        flag in any::<bool>(),
    ) {
        let fuzz = Fuzz { text, data, num, small, flag };
        for shape in 0..SYSCALL_SHAPES {
            let call = make_call(shape, &fuzz);
            let batch = SyscallBatch::single(call.clone());
            let decoded = SyscallBatch::decode(&batch.encode());
            prop_assert_eq!(decoded, Some(batch), "variant {} ({})", shape, call.name());
        }
    }

    /// Every `SysResult` variant round-trips through the wire codec, both
    /// alone and inside a completion batch with out-of-order indices.
    #[test]
    fn every_sysresult_variant_round_trips(
        text in "[a-z0-9._ -]{0,24}",
        data in proptest::collection::vec(any::<u8>(), 0..256),
        num in any::<i64>(),
        small in any::<u32>(),
        flag in any::<bool>(),
    ) {
        let fuzz = Fuzz { text, data, num, small, flag };
        let completions: Vec<Completion> = (0..RESULT_SHAPES)
            .map(|shape| Completion {
                // Reversed indices: completion order need not match
                // submission order.
                index: (RESULT_SHAPES - 1 - shape) as u32,
                result: make_result(shape, &fuzz),
            })
            .collect();
        let batch = CompletionBatch { completions };
        let decoded = CompletionBatch::decode(&batch.encode());
        prop_assert_eq!(decoded, Some(batch));
    }

    /// Mixed batches of arbitrary size and variant composition round-trip
    /// entry for entry, in order.
    #[test]
    fn mixed_batches_round_trip(
        shapes in proptest::collection::vec(0usize..SYSCALL_SHAPES, 1..12),
        text in "[a-z0-9._-]{0,16}",
        data in proptest::collection::vec(any::<u8>(), 0..64),
        num in any::<i64>(),
        small in any::<u32>(),
        flag in any::<bool>(),
    ) {
        let fuzz = Fuzz { text, data, num, small, flag };
        let batch = SyscallBatch {
            entries: shapes.iter().map(|&shape| make_call(shape, &fuzz)).collect(),
        };
        let decoded = SyscallBatch::decode(&batch.encode()).unwrap();
        prop_assert_eq!(decoded.len(), shapes.len());
        prop_assert_eq!(decoded, batch);
    }

    /// Flipping the frame's magic or version byte always makes it invalid;
    /// the decoder never panics on arbitrary prefixes of a valid frame.
    #[test]
    fn corrupted_frames_never_decode_to_garbage(
        shapes in proptest::collection::vec(0usize..SYSCALL_SHAPES, 1..6),
        cut in any::<prop::sample::Index>(),
        num in any::<i64>(),
    ) {
        let fuzz = Fuzz { text: "x".into(), data: vec![1, 2, 3], num, small: 7, flag: true };
        let batch = SyscallBatch {
            entries: shapes.iter().map(|&shape| make_call(shape, &fuzz)).collect(),
        };
        let encoded = batch.encode();

        let mut bad_magic = encoded.clone();
        bad_magic[0] ^= 0xff;
        prop_assert_eq!(SyscallBatch::decode(&bad_magic), None);

        let mut bad_version = encoded.clone();
        bad_version[1] ^= 0xff;
        prop_assert_eq!(SyscallBatch::decode(&bad_version), None);

        // A strict prefix is truncated and must decode to None (never panic).
        let len = cut.index(encoded.len().max(1));
        prop_assert_eq!(SyscallBatch::decode(&encoded[..len]), None);
    }

    /// Structured-clone messages report a byte size at least as large as the
    /// payload they carry (the clone-cost model never undercounts).
    #[test]
    fn message_byte_size_bounds_payload(data in proptest::collection::vec(any::<u8>(), 0..2048), key in "[a-z]{1,8}") {
        let msg = Message::map().with(&key, data.clone());
        prop_assert!(msg.byte_size() >= data.len());
    }

    /// JSON encode/decode round-trips for strings, numbers and nested arrays.
    #[test]
    fn json_round_trips(s in "[ -~]{0,32}", n in -1_000_000i64..1_000_000, items in proptest::collection::vec(-1000i64..1000, 0..8)) {
        let value = Json::object()
            .with("s", s.as_str())
            .with("n", n)
            .with("items", Json::Array(items.iter().map(|&i| Json::from(i)).collect()));
        let decoded = Json::decode(&value.encode()).unwrap();
        prop_assert_eq!(decoded, value);
    }

    /// The shell lexer never loses non-whitespace characters of unquoted
    /// words, and parsing a pipeline of simple words always succeeds.
    #[test]
    fn shell_parses_simple_pipelines(words in proptest::collection::vec("[a-z0-9._-]{1,10}", 1..6)) {
        let line = words.join(" | ");
        let script = browsix_shell::parse_script(&line).unwrap();
        prop_assert_eq!(script.entries.len(), 1);
        prop_assert_eq!(script.entries[0].1.commands.len(), words.len());
        for (command, word) in script.entries[0].1.commands.iter().zip(&words) {
            prop_assert_eq!(&command.words[0], word);
        }
    }

    /// Glob matching: a pattern equal to the name always matches, and `*`
    /// matches every name without separators.
    #[test]
    fn glob_matching_laws(name in "[a-z0-9._]{1,12}") {
        let prefix_pattern = format!("{name}*");
        prop_assert!(path::glob_match(&name, &name));
        prop_assert!(path::glob_match("*", &name));
        prop_assert!(path::glob_match(&prefix_pattern, &name));
    }

    /// SHA-1 digests are 20 bytes and differ when a byte is flipped.
    #[test]
    fn sha1_flip_changes_digest(mut data in proptest::collection::vec(any::<u8>(), 1..512), index in any::<prop::sample::Index>()) {
        let original = browsix_utils::sha1_digest(&data);
        prop_assert_eq!(original.len(), 20);
        let i = index.index(data.len());
        data[i] ^= 0xff;
        prop_assert_ne!(browsix_utils::sha1_digest(&data), original);
    }
}

// ---- non-blocking stream semantics vs a model ring buffer --------------------

/// What a non-blocking operation on a stream may observe.
#[derive(Debug, Clone, PartialEq, Eq)]
enum StreamIo {
    /// Bytes read / byte count written.
    Progress(usize),
    /// Read at EOF (no writers, nothing buffered).
    Eof,
    /// The operation would block.
    WouldBlock,
    /// Write with no readers left.
    BrokenPipe,
}

/// The kernel's non-blocking read decision, expressed over any
/// "stream-like" view (used for both the real stream and the model).
fn nonblocking_read(len: usize, buffered: usize, writers_open: bool) -> StreamIo {
    if buffered > 0 {
        StreamIo::Progress(len.min(buffered))
    } else if !writers_open {
        StreamIo::Eof
    } else {
        StreamIo::WouldBlock
    }
}

/// The kernel's non-blocking write decision.
fn nonblocking_write(len: usize, space: usize, readers_open: bool) -> StreamIo {
    if !readers_open {
        StreamIo::BrokenPipe
    } else if space == 0 && len > 0 {
        StreamIo::WouldBlock
    } else {
        StreamIo::Progress(len.min(space))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random interleavings of non-blocking reads, writes and end-closes
    /// against a plain `VecDeque` model: EAGAIN / EOF / EPIPE decisions, the
    /// bytes moved, and the readiness predicates must all agree with the
    /// model at every step.  These predicates are exactly what `poll`'s
    /// POLLIN/POLLOUT bits and the wait-queue wakeup conditions are built
    /// on, so this pins the whole readiness contract.
    #[test]
    fn nonblocking_stream_ops_match_model_ring_buffer(
        capacity in 1usize..48,
        ops in proptest::collection::vec((0u8..4, any::<u8>()), 1..48),
    ) {
        let mut stream = browsix_core::Stream::new(capacity);
        stream.readers = 1;
        stream.writers = 1;
        let mut model: std::collections::VecDeque<u8> = std::collections::VecDeque::new();
        let mut next_byte = 0u8;

        for &(code, amount) in &ops {
            let len = amount as usize % (capacity + 4);
            match code {
                0 => {
                    // Non-blocking write of `len` fresh bytes.
                    let expected = nonblocking_write(len, capacity - model.len(), stream.readers > 0);
                    let data: Vec<u8> = (0..len).map(|_| { next_byte = next_byte.wrapping_add(1); next_byte }).collect();
                    let actual = if stream.read_end_closed() {
                        StreamIo::BrokenPipe
                    } else {
                        match stream.push(&data) {
                            0 if len > 0 => StreamIo::WouldBlock,
                            accepted => StreamIo::Progress(accepted),
                        }
                    };
                    prop_assert_eq!(&actual, &expected);
                    if let StreamIo::Progress(accepted) = expected {
                        model.extend(data[..accepted].iter());
                    }
                }
                1 => {
                    // Non-blocking read of up to `len` bytes.
                    let expected = nonblocking_read(len, model.len(), stream.writers > 0);
                    let actual = if !stream.is_empty() {
                        StreamIo::Progress(stream.pop(len).len())
                    } else if stream.write_end_closed() {
                        StreamIo::Eof
                    } else {
                        StreamIo::WouldBlock
                    };
                    prop_assert_eq!(&actual, &expected);
                    if let StreamIo::Progress(taken) = expected {
                        model.drain(..taken);
                    }
                }
                2 => stream.readers = 0,
                _ => stream.writers = 0,
            }
            // Readiness bits agree with the model after every step.
            prop_assert_eq!(stream.len(), model.len());
            prop_assert_eq!(stream.read_ready(), !model.is_empty() || stream.writers == 0);
            prop_assert_eq!(stream.write_ready(), model.len() < capacity || stream.readers == 0);
        }
        // Whatever is left drains in FIFO order.
        let drained = stream.pop(usize::MAX);
        let expected: Vec<u8> = model.into_iter().collect();
        prop_assert_eq!(drained, expected);
    }
}

// ---- path helpers vs a model implementation ---------------------------------

/// Model semantics of path normalisation: the canonical component stack,
/// written against `Vec` operations only (no string surgery), so the real
/// implementation's string handling is checked against independent logic.
fn model_components(path: &str) -> Vec<String> {
    let mut stack: Vec<String> = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                stack.pop();
            }
            other => stack.push(other.to_owned()),
        }
    }
    stack
}

fn model_normalize(path: &str) -> String {
    let stack = model_components(path);
    if stack.is_empty() {
        "/".to_owned()
    } else {
        let mut out = String::new();
        for comp in &stack {
            out.push('/');
            out.push_str(comp);
        }
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `normalize` agrees with the component-stack model on arbitrary messy
    /// inputs (dots, double slashes, leading-relative paths).
    #[test]
    fn normalize_agrees_with_model(input in "[a-z./]{0,48}") {
        prop_assert_eq!(path::normalize(&input), model_normalize(&input));
        prop_assert_eq!(path::components(&input), model_components(&input));
    }

    /// `starts_with`/`strip_prefix` agree with each other and with the
    /// component-prefix model: `q` is a prefix of `p` exactly when `q`'s
    /// component list is a prefix of `p`'s, and stripping then rejoining
    /// reconstructs the original path.
    #[test]
    fn prefix_helpers_agree_with_component_model(
        p in "(/[a-z]{1,6}){0,5}/?",
        q in "(/[a-z]{1,6}){0,5}/?",
    ) {
        let p_comps = model_components(&p);
        let q_comps = model_components(&q);
        let model_is_prefix = p_comps.len() >= q_comps.len() && p_comps[..q_comps.len()] == q_comps[..];

        prop_assert_eq!(path::starts_with(&p, &q), model_is_prefix);
        // starts_with and strip_prefix are two views of the same relation.
        let stripped = path::strip_prefix(&p, &q);
        prop_assert_eq!(stripped.is_some(), model_is_prefix);
        if let Some(rest) = stripped {
            prop_assert!(rest.starts_with('/'));
            // Rejoining the prefix and the remainder reconstructs the path.
            let rejoined = path::normalize(&format!("{}/{}", path::normalize(&q), rest));
            prop_assert_eq!(rejoined, path::normalize(&p));
        }
        // Reflexivity and the universal "/" prefix.
        prop_assert!(path::starts_with(&p, &p));
        prop_assert!(path::starts_with(&p, "/"));
    }

    /// `dirname`/`basename` recompose to the normalised path.
    #[test]
    fn dirname_basename_recompose(p in "(/[a-z]{1,6}){1,5}") {
        let normalized = path::normalize(&p);
        let dir = path::dirname(&normalized);
        let base = path::basename(&normalized);
        prop_assert_eq!(path::normalize(&format!("{dir}/{base}")), normalized);
    }
}

// ---- handle-layer I/O vs an in-memory model file -----------------------------

/// One fuzzed file operation: (opcode, offset, length, fill byte).
type HandleOp = (u8, u16, u8, u8);

/// Applies `op` to the model file and the real handle, asserting identical
/// observable behaviour (read contents, reported sizes, append offsets).
fn check_handle_op(model: &mut Vec<u8>, handle: &std::sync::Arc<dyn browsix_fs::FileHandle>, op: &HandleOp) {
    let (code, offset, len, byte) = *op;
    let offset = offset as usize % 4096;
    let len = len as usize;
    match code % 4 {
        // write_at: zero-fills any gap, extends past the end.
        0 => {
            let data = vec![byte; len];
            let written = handle.write_at(offset as u64, &data).unwrap();
            assert_eq!(written, len);
            if model.len() < offset {
                model.resize(offset, 0);
            }
            if model.len() < offset + len {
                model.resize(offset + len, 0);
            }
            model[offset..offset + len].copy_from_slice(&data);
        }
        // read_at: clamped to EOF, never errors.
        1 => {
            let got = handle.read_at(offset as u64, len).unwrap();
            let start = offset.min(model.len());
            let end = (offset + len).min(model.len()).max(start);
            assert_eq!(got, &model[start..end]);
        }
        // truncate: shrinks or zero-extends.
        2 => {
            let size = (offset / 2) as u64;
            handle.truncate(size).unwrap();
            model.resize(size as usize, 0);
        }
        // append: always lands at the current end of file.
        _ => {
            let data = vec![byte.wrapping_add(1); len];
            let end = handle.append(&data).unwrap();
            model.extend_from_slice(&data);
            assert_eq!(end, model.len() as u64, "append must return the new end offset");
        }
    }
    assert_eq!(handle.metadata().unwrap().size, model.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary read/write/truncate/append sequences through a MemFs handle
    /// behave exactly like the same operations on a plain byte vector.
    #[test]
    fn memfs_handle_matches_model_file(
        ops in proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u8>(), any::<u8>()), 0..32),
    ) {
        let fs = MemFs::new();
        fs.create("/f", 0o644).unwrap();
        let handle = fs.open_handle("/f", OpenFlags::read_write()).unwrap();
        let mut model: Vec<u8> = Vec::new();
        for op in &ops {
            check_handle_op(&mut model, &handle, op);
        }
        assert_eq!(fs.read_file("/f").unwrap(), model);
    }

    /// The same property through the full VFS stack: a mount table (dentry
    /// cache) routing into an overlay whose underlay seeded the file, so
    /// copy-up-on-first-write sits in the I/O path.
    #[test]
    fn mounted_overlay_handle_matches_model_file(
        seed in proptest::collection::vec(any::<u8>(), 0..512),
        ops in proptest::collection::vec((any::<u8>(), any::<u16>(), any::<u8>(), any::<u8>()), 0..24),
    ) {
        use browsix_fs::{Bundle, BundleFs, MountedFs, OverlayFs, OverlayMode};
        use std::sync::Arc;

        let mut bundle = Bundle::new();
        bundle.insert("/data/file.bin", seed.clone());
        let overlay = OverlayFs::new(Arc::new(BundleFs::new(bundle)), OverlayMode::Lazy);
        let root = MountedFs::new(Arc::new(MemFs::new()));
        root.mount("/ov", Arc::new(overlay)).unwrap();

        let handle = root.open_handle("/ov/data/file.bin", OpenFlags::read_write()).unwrap();
        let mut model: Vec<u8> = seed;
        for op in &ops {
            check_handle_op(&mut model, &handle, op);
        }
        assert_eq!(root.read_file("/ov/data/file.bin").unwrap(), model);
    }
}

// ---- COW address spaces vs a deep-copy model ---------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Copy-on-write address spaces behave exactly like naive deep copies:
    /// random interleavings of fork / write / read across a family of up to
    /// eight spaces must be byte-for-byte indistinguishable from a model that
    /// copies the whole image at every fork.  This is the isolation property
    /// COW is meant to preserve — a write in any space is never visible in
    /// any other, no matter how the pages are shared underneath.
    #[test]
    fn cow_fork_matches_deep_copy_model(
        ops in proptest::collection::vec(
            (0u8..4, any::<u16>(), proptest::collection::vec(any::<u8>(), 1..48), any::<prop::sample::Index>()),
            0..48,
        ),
    ) {
        use browsix_core::{AddressSpace, PAGE_SIZE, PROT_READ, PROT_WRITE};
        const REGION: u64 = 4 * PAGE_SIZE as u64;

        let mut first = AddressSpace::new();
        let base = first.map_anonymous(0, REGION, PROT_READ | PROT_WRITE).unwrap();
        let mut spaces = vec![first];
        let mut models: Vec<Vec<u8>> = vec![vec![0u8; REGION as usize]];

        for (op, offset, data, pick) in &ops {
            let i = pick.index(spaces.len());
            let off = (*offset as u64) % REGION;
            let len = data.len().min((REGION - off) as usize);
            match op {
                // Fork: O(regions) in the real thing, O(bytes) in the model.
                0 if spaces.len() < 8 => {
                    let (child, _delta) = spaces[i].fork_clone();
                    spaces.push(child);
                    let image = models[i].clone();
                    models.push(image);
                }
                // Write: may trigger a COW fault in the real thing.
                1 | 0 => {
                    spaces[i].write(base + off, &data[..len]).unwrap();
                    models[i][off as usize..off as usize + len].copy_from_slice(&data[..len]);
                }
                // Read: must agree with the model at every step.
                _ => {
                    let got = spaces[i].read(base + off, len).unwrap();
                    prop_assert_eq!(&got[..], &models[i][off as usize..off as usize + len]);
                }
            }
        }

        // Every space equals its deep-copy model, byte for byte.
        for (space, model) in spaces.iter().zip(&models) {
            let image = space.read(base, REGION as usize).unwrap();
            prop_assert_eq!(&image[..], &model[..]);
        }

        // Tear all spaces down; under `--features scavenger` release()
        // debug-asserts the refcount invariant (no page leaked, none freed
        // twice) as each space drops its references.
        for mut space in spaces {
            space.release();
        }
    }
}

// ---- syscall rings vs a FIFO model -------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The shared-memory submission/completion ring against a plain
    /// `VecDeque` model, under arbitrary single-threaded interleavings of
    /// client submits, kernel drains and client completion reaps:
    ///
    /// * acceptance agrees with the model (a push succeeds exactly when the
    ///   model queue is below capacity),
    /// * entries come out in submission order with their payloads intact
    ///   (no lost, duplicated, reordered or corrupted entries),
    /// * the doorbell fires exactly on empty→nonempty transitions, and
    /// * after every kernel drain the strict protocol invariant holds: the
    ///   submission queue is empty and NEED_WAKEUP is set.  (This is the
    ///   deterministic statement of the invariant; kernel-side it can only
    ///   be enforced structurally, because a concurrent client may be
    ///   mid-publish at any instant.)
    #[test]
    fn ring_matches_fifo_model(
        ops in proptest::collection::vec((0u8..3, any::<u8>()), 1..160),
    ) {
        use browsix_core::ring::{Ring, RingGeometry, NEED_WAKEUP, RING_REGION_BYTES, RING_SLOTS};
        use std::collections::VecDeque;

        let sab = browsix_browser::SharedArrayBuffer::new(RING_REGION_BYTES as usize);
        let geo = RingGeometry::standard(0);
        prop_assert!(geo.validate(sab.len()));
        // Two views of the same shared memory, exactly as in the real system:
        // the client's and the kernel's.
        let client = Ring::new(sab.clone(), geo);
        let kernel = Ring::new(sab, geo);
        kernel.set_need_wakeup();

        let mut next_user: u32 = 0;
        // Submitted but not yet drained by the kernel.
        let mut model_sq: VecDeque<(u32, Vec<u8>)> = VecDeque::new();
        // Completed by the kernel but not yet reaped by the client.
        let mut model_cq: VecDeque<(u32, Vec<u8>)> = VecDeque::new();
        // The payload each completion must echo (completion order follows
        // submission order in this model, as it does for ring dispatch).
        let mut doorbells = 0u32;

        for &(op, size) in &ops {
            match op {
                0 => {
                    // Client submit: payload of fuzzed length ≤ slot capacity.
                    let payload: Vec<u8> = (0..size as usize % (geo.slot_payload_bytes() + 1))
                        .map(|i| (i as u8).wrapping_add(size))
                        .collect();
                    let was_empty = client.sq_is_empty();
                    let accepted = client.push_sqe(next_user, &payload);
                    prop_assert_eq!(accepted, model_sq.len() < RING_SLOTS as usize, "SQ acceptance diverged");
                    if accepted {
                        model_sq.push_back((next_user, payload));
                        next_user = next_user.wrapping_add(1);
                        // Doorbell: exactly the empty→nonempty edge (the flag
                        // is armed because the kernel drained to empty).
                        if client.take_doorbell() {
                            prop_assert!(was_empty, "doorbell fired on a non-edge");
                            doorbells += 1;
                        }
                    }
                }
                1 => {
                    // Kernel drain, exactly the event-loop shape: pop until
                    // empty, post a completion per entry (if there is CQ
                    // space — otherwise the real kernel queues it; the model
                    // defers the echo the same way), then arm NEED_WAKEUP.
                    while let Some((user, data)) = kernel.pop_sqe() {
                        let (expected_user, expected_data) = model_sq
                            .pop_front()
                            .expect("kernel drained an entry the model never saw");
                        prop_assert_eq!(user, expected_user, "drain order diverged");
                        prop_assert_eq!(&data, &expected_data, "payload corrupted in the SQ");
                        if kernel.cq_space() > 0 {
                            prop_assert!(kernel.push_cqe(user, &data));
                            model_cq.push_back((user, data));
                        }
                    }
                    kernel.set_need_wakeup();
                    // Strict invariant, assertable only here (single thread):
                    // after a drain the SQ is empty and the flag is set.
                    prop_assert!(kernel.sq_is_empty(), "drain left the SQ non-empty");
                    prop_assert_eq!(kernel.sq_flags() & NEED_WAKEUP, NEED_WAKEUP, "drain left NEED_WAKEUP clear");
                }
                _ => {
                    // Client reap: completions arrive in order, none lost,
                    // none duplicated, payloads intact.
                    while let Some((user, data)) = client.pop_cqe() {
                        let (expected_user, expected_data) = model_cq
                            .pop_front()
                            .expect("client reaped a completion the model never posted");
                        prop_assert_eq!(user, expected_user, "completion order diverged");
                        prop_assert_eq!(&data, &expected_data, "payload corrupted in the CQ");
                    }
                    prop_assert!(model_cq.is_empty(), "client lost completions");
                }
            }
        }

        // Final settle: drain and reap everything; nothing may be left
        // behind in either direction.
        while let Some((user, data)) = kernel.pop_sqe() {
            let (expected_user, expected_data) = model_sq.pop_front().expect("lost SQE");
            prop_assert_eq!(user, expected_user);
            prop_assert_eq!(&data, &expected_data);
            prop_assert!(kernel.push_cqe(user, &data));
            model_cq.push_back((user, data));
        }
        prop_assert!(model_sq.is_empty(), "entries stuck in the model SQ");
        while let Some((user, data)) = client.pop_cqe() {
            let (expected_user, expected_data) = model_cq.pop_front().expect("lost CQE");
            prop_assert_eq!(user, expected_user);
            prop_assert_eq!(&data, &expected_data);
        }
        prop_assert!(model_cq.is_empty(), "completions never reached the client");
        prop_assert!(doorbells <= ops.len() as u32);
    }

    /// The registered-buffer table is a correct allocator: distinct live
    /// indices, contents round-trip, and a freed buffer is reusable.
    #[test]
    fn ring_registered_buffers_round_trip(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..512), 1..8),
    ) {
        use browsix_core::ring::{Ring, RingGeometry, RING_REGION_BYTES};

        let sab = browsix_browser::SharedArrayBuffer::new(RING_REGION_BYTES as usize);
        let ring = Ring::new(sab, RingGeometry::standard(0));
        let mut live: Vec<(u32, Vec<u8>)> = Vec::new();
        for payload in &payloads {
            let Some(index) = ring.alloc_buf() else {
                // Table exhausted: every live index must still be distinct.
                break;
            };
            prop_assert!(live.iter().all(|(i, _)| *i != index), "allocator handed out a live index");
            prop_assert!(ring.write_buf(index, payload));
            live.push((index, payload.clone()));
        }
        for (index, expected) in &live {
            prop_assert_eq!(ring.read_buf(*index, expected.len()).as_ref(), Some(expected));
            ring.free_buf(*index);
        }
        // Everything freed: the table serves the full complement again.
        let mut again = Vec::new();
        while let Some(index) = ring.alloc_buf() {
            again.push(index);
        }
        prop_assert_eq!(again.len(), browsix_core::ring::REG_BUF_COUNT as usize);
    }
}

// ---- sigprocmask / pending-set semantics vs a model --------------------------

/// The model of POSIX standard-signal semantics: `blocked` and `pending` are
/// plain `HashSet`s, delivery is a growing log.  Standard signals coalesce
/// while pending and are delivered exactly once when unblocked.
#[derive(Debug, Default)]
struct SignalModel {
    blocked: std::collections::HashSet<Signal>,
    pending: std::collections::HashSet<Signal>,
    delivered: Vec<Signal>,
}

impl SignalModel {
    fn change_mask(&mut self, how: u32, mask: &[Signal]) {
        match how {
            SIG_BLOCK => self.blocked.extend(mask.iter().copied()),
            SIG_UNBLOCK => {
                for signal in mask {
                    self.blocked.remove(signal);
                }
            }
            _ => self.blocked = mask.iter().copied().collect(),
        }
        // SIGKILL/SIGSTOP can never be blocked.
        self.blocked.remove(&Signal::SIGKILL);
        self.blocked.remove(&Signal::SIGSTOP);
        // Anything pending and now unblocked is delivered exactly once.
        let deliverable: Vec<Signal> = browsix_core::signals::ALL_SIGNALS
            .iter()
            .copied()
            .filter(|s| self.pending.contains(s) && !self.blocked.contains(s))
            .collect();
        for signal in deliverable {
            self.pending.remove(&signal);
            self.delivered.push(signal);
        }
    }

    fn kill(&mut self, signal: Signal) {
        if signal.catchable() && self.blocked.contains(&signal) {
            // Coalesces: a `HashSet` insert of an already-pending signal.
            self.pending.insert(signal);
        } else {
            self.delivered.push(signal);
        }
    }
}

/// The signals a fuzzed index picks from (catchable handler-friendly ones
/// plus the unblockable pair, to exercise that corner).
const MODEL_SIGNALS: &[Signal] = &[
    Signal::SIGHUP,
    Signal::SIGINT,
    Signal::SIGUSR1,
    Signal::SIGUSR2,
    Signal::SIGTERM,
    Signal::SIGKILL,
    Signal::SIGCHLD,
];

fn mask_from(indices: &[u8]) -> (SigSet, Vec<Signal>) {
    let mut set = SigSet::empty();
    let mut list = Vec::new();
    for &index in indices {
        let signal = MODEL_SIGNALS[index as usize % MODEL_SIGNALS.len()];
        if !list.contains(&signal) {
            list.push(signal);
        }
        set.insert(signal);
    }
    (set, list)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `SignalState` (the kernel's per-task sigprocmask/pending machinery)
    /// agrees with the `HashSet` model on arbitrary interleavings of
    /// mask changes and kills: the same blocked set, the same pending set,
    /// and — crucially — the same delivery log.  "Block → kill (repeatedly)
    /// → unblock" delivers exactly once, in every interleaving.
    #[test]
    fn signal_state_matches_model(
        ops in proptest::collection::vec(
            (0u8..2, 0u32..4, proptest::collection::vec(any::<u8>(), 0..5), 0u8..8),
            0..48,
        ),
    ) {
        let mut state = SignalState::new();
        let mut model = SignalModel::default();
        let mut delivered: Vec<Signal> = Vec::new();

        for (op, how, mask_indices, signal_index) in &ops {
            match op {
                0 => {
                    let (mask, mask_list) = mask_from(mask_indices);
                    let how = how % 3;
                    let (_, deliverable) = state.change_mask(how, mask).unwrap();
                    delivered.extend(deliverable);
                    model.change_mask(how, &mask_list);
                }
                _ => {
                    let signal = MODEL_SIGNALS[*signal_index as usize % MODEL_SIGNALS.len()];
                    if state.admit(signal) {
                        delivered.push(signal);
                    }
                    model.kill(signal);
                }
            }
            // Invariant: blocked and pending sets agree with the model.
            for &signal in browsix_core::signals::ALL_SIGNALS {
                prop_assert_eq!(state.blocked().contains(signal), model.blocked.contains(&signal));
                prop_assert_eq!(state.pending().contains(signal), model.pending.contains(&signal));
            }
        }
        // The delivery logs agree exactly (same signals, same order).
        prop_assert_eq!(delivered, model.delivered);
    }

    /// A blocked signal killed N ≥ 1 times is delivered exactly once on
    /// unblock — the headline exactly-once property, stated directly.
    #[test]
    fn block_kill_unblock_delivers_exactly_once(
        kills in 1usize..6,
        signal_index in 0u8..5,
    ) {
        let signal = MODEL_SIGNALS[signal_index as usize % 5];
        let mut mask = SigSet::empty();
        mask.insert(signal);

        let mut state = SignalState::new();
        let (_, deliverable) = state.change_mask(SIG_BLOCK, mask).unwrap();
        prop_assert!(deliverable.is_empty());
        for _ in 0..kills {
            prop_assert!(!state.admit(signal), "blocked signal must park, not deliver");
        }
        let (_, deliverable) = state.change_mask(SIG_UNBLOCK, mask).unwrap();
        prop_assert_eq!(deliverable, vec![signal]);
        // And never again.
        let (_, again) = state.change_mask(SIG_SETMASK, SigSet::empty()).unwrap();
        prop_assert!(again.is_empty());
        prop_assert!(state.pending().is_empty());
    }

    /// Wait-status helpers partition correctly: an encoded exit, kill and
    /// stop are each recognised by exactly one decoder.
    #[test]
    fn wait_status_partition(code in 0i32..256, signal_index in 0u8..8) {
        use browsix_core::{encode_stop_status, encode_wait_status, wait_status_exit_code, wait_status_signal, wait_status_stop_signal};
        let signal = MODEL_SIGNALS[signal_index as usize % MODEL_SIGNALS.len()];

        let exited = encode_wait_status(Some(code), None);
        prop_assert_eq!(wait_status_exit_code(exited), Some(code));
        prop_assert_eq!(wait_status_signal(exited), None);
        prop_assert_eq!(wait_status_stop_signal(exited), None);

        let killed = encode_wait_status(None, Some(signal));
        prop_assert_eq!(wait_status_exit_code(killed), None);
        prop_assert_eq!(wait_status_signal(killed), Some(signal));
        prop_assert_eq!(wait_status_stop_signal(killed), None);

        let stopped = encode_stop_status(signal);
        prop_assert_eq!(wait_status_exit_code(stopped), None);
        prop_assert_eq!(wait_status_signal(stopped), None);
        prop_assert_eq!(wait_status_stop_signal(stopped), Some(signal));
    }
}
