//! Property-based tests (proptest) over core data structures and invariants.

use proptest::prelude::*;

use browsix_browser::Message;
use browsix_core::{ByteSource, SysResult, Syscall};
use browsix_fs::{path, Errno, FileSystem, MemFs};
use browsix_http::Json;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Path normalisation is idempotent and always yields an absolute path.
    #[test]
    fn normalize_is_idempotent_and_absolute(input in "[a-z./]{0,40}") {
        let once = path::normalize(&input);
        prop_assert!(once.starts_with('/'));
        prop_assert_eq!(path::normalize(&once), once.clone());
        prop_assert!(!once.contains("//"));
        prop_assert!(!path::components(&once).iter().any(|c| c == "." || c == ".."));
    }

    /// resolve() against a cwd always lands under "/" and is normalised.
    #[test]
    fn resolve_always_absolute(cwd in "(/[a-z]{1,8}){0,4}", rel in "[a-z./]{0,20}") {
        let resolved = path::resolve(&format!("/{cwd}"), &rel);
        prop_assert!(resolved.starts_with('/'));
        prop_assert_eq!(path::normalize(&resolved), resolved);
    }

    /// Writing then reading a file through MemFs returns exactly the bytes
    /// written, regardless of how the writes are split.
    #[test]
    fn memfs_write_read_round_trip(chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..128), 0..8)) {
        let fs = MemFs::new();
        fs.create("/file", 0o644).unwrap();
        let mut expected = Vec::new();
        for chunk in &chunks {
            fs.write_at("/file", expected.len() as u64, chunk).unwrap();
            expected.extend_from_slice(chunk);
        }
        prop_assert_eq!(fs.read_file("/file").unwrap(), expected.clone());
        prop_assert_eq!(fs.stat("/file").unwrap().size as usize, expected.len());
    }

    /// The kernel pipe buffer is a faithful FIFO: bytes come out in order and
    /// none are lost or invented, under arbitrary interleavings of push/pop.
    #[test]
    fn pipe_preserves_fifo_byte_stream(ops in proptest::collection::vec((any::<bool>(), proptest::collection::vec(any::<u8>(), 0..64)), 1..40)) {
        let mut pipe = browsix_core::pipe::Pipe::new(4096);
        let mut sent: Vec<u8> = Vec::new();
        let mut received: Vec<u8> = Vec::new();
        for (is_write, data) in &ops {
            if *is_write {
                let accepted = pipe.push(data);
                sent.extend_from_slice(&data[..accepted]);
            } else {
                received.extend(pipe.pop(data.len().max(1)));
            }
        }
        received.extend(pipe.pop(usize::MAX));
        prop_assert_eq!(received, sent);
    }

    /// Every syscall result round-trips through both encodings (the async
    /// message encoding and the sync shared-heap byte encoding).
    #[test]
    fn sysresult_encodings_round_trip(value in any::<i64>(), data in proptest::collection::vec(any::<u8>(), 0..256), text in "[a-zA-Z0-9/._ -]{0,32}") {
        let results = vec![
            SysResult::Int(value),
            SysResult::Data(data.clone()),
            SysResult::Path(format!("/{text}")),
            SysResult::Pair(value, value.wrapping_add(1)),
            SysResult::Err(Errno::ENOENT),
        ];
        for result in results {
            prop_assert_eq!(SysResult::from_message(&result.to_message()).unwrap(), result.clone());
            prop_assert_eq!(SysResult::decode_bytes(&result.encode_bytes()).unwrap(), result);
        }
    }

    /// Write syscalls round-trip through the structured-clone encoding with
    /// their payload intact.
    #[test]
    fn write_syscall_round_trips(fd in 0i32..64, data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let call = Syscall::Write { fd, data: ByteSource::Inline(data) };
        let decoded = Syscall::from_message(&call.to_message()).unwrap();
        prop_assert_eq!(decoded, call);
    }

    /// Structured-clone messages report a byte size at least as large as the
    /// payload they carry (the clone-cost model never undercounts).
    #[test]
    fn message_byte_size_bounds_payload(data in proptest::collection::vec(any::<u8>(), 0..2048), key in "[a-z]{1,8}") {
        let msg = Message::map().with(&key, data.clone());
        prop_assert!(msg.byte_size() >= data.len());
    }

    /// JSON encode/decode round-trips for strings, numbers and nested arrays.
    #[test]
    fn json_round_trips(s in "[ -~]{0,32}", n in -1_000_000i64..1_000_000, items in proptest::collection::vec(-1000i64..1000, 0..8)) {
        let value = Json::object()
            .with("s", s.as_str())
            .with("n", n)
            .with("items", Json::Array(items.iter().map(|&i| Json::from(i)).collect()));
        let decoded = Json::decode(&value.encode()).unwrap();
        prop_assert_eq!(decoded, value);
    }

    /// The shell lexer never loses non-whitespace characters of unquoted
    /// words, and parsing a pipeline of simple words always succeeds.
    #[test]
    fn shell_parses_simple_pipelines(words in proptest::collection::vec("[a-z0-9._-]{1,10}", 1..6)) {
        let line = words.join(" | ");
        let script = browsix_shell::parse_script(&line).unwrap();
        prop_assert_eq!(script.entries.len(), 1);
        prop_assert_eq!(script.entries[0].1.commands.len(), words.len());
        for (command, word) in script.entries[0].1.commands.iter().zip(&words) {
            prop_assert_eq!(&command.words[0], word);
        }
    }

    /// Glob matching: a pattern equal to the name always matches, and `*`
    /// matches every name without separators.
    #[test]
    fn glob_matching_laws(name in "[a-z0-9._]{1,12}") {
        let prefix_pattern = format!("{name}*");
        prop_assert!(path::glob_match(&name, &name));
        prop_assert!(path::glob_match("*", &name));
        prop_assert!(path::glob_match(&prefix_pattern, &name));
    }

    /// SHA-1 digests are 20 bytes and differ when a byte is flipped.
    #[test]
    fn sha1_flip_changes_digest(mut data in proptest::collection::vec(any::<u8>(), 1..512), index in any::<prop::sample::Index>()) {
        let original = browsix_utils::sha1_digest(&data);
        prop_assert_eq!(original.len(), 20);
        let i = index.index(data.len());
        data[i] ^= 0xff;
        prop_assert_ne!(browsix_utils::sha1_digest(&data), original);
    }
}
