//! End-to-end tests for signals, process groups and job control: EINTR
//! interruption of parked system calls, SA_RESTART, sigprocmask pending
//! semantics, SIGTSTP/SIGCONT stop-and-continue with `WUNTRACED` wait
//! reporting, foreground-group routing of terminal signals (`Ctrl-C`),
//! SIGTTIN for background terminal reads, and the `kill`/`sleep`/`timeout`
//! utilities driving all of it through the shell.

use std::sync::Arc;
use std::time::{Duration, Instant};

use browsix_apps::Terminal;
use browsix_core::{BootConfig, Errno, Kernel, SigAction, SigSet, Signal, SIG_BLOCK, SIG_UNBLOCK, WNOHANG, WUNTRACED};
use browsix_fs::FileSystem;
use browsix_runtime::{guest, ExecutionProfile, NodeLauncher, RuntimeEnv, SyscallConvention};

fn instant_async() -> ExecutionProfile {
    ExecutionProfile::instant(SyscallConvention::Async)
}

/// A kernel with the shell and all utilities (including `kill`, `sleep` and
/// `timeout`) registered.
fn boot_full() -> Kernel {
    browsix_apps::boot_standard_kernel(browsix_apps::default_config(), instant_async())
}

fn boot_with(name: &'static str, program: browsix_runtime::GuestFactory) -> Kernel {
    let config = BootConfig::in_memory();
    config.registry.register(
        &format!("/usr/bin/{name}"),
        Arc::new(NodeLauncher::new(name, program).with_profile(instant_async())),
    );
    Kernel::boot(config)
}

/// Polls `predicate` over the kernel's task table until it holds (or panics
/// after `timeout`).
fn wait_for_tasks<F: Fn(&[(u32, u32, String, String)]) -> bool>(kernel: &Kernel, timeout: Duration, predicate: F) {
    let deadline = Instant::now() + timeout;
    loop {
        let tasks = kernel.tasks();
        if predicate(&tasks) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out; tasks: {tasks:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

// ---- EINTR: signals interrupt parked system calls ---------------------------

#[test]
fn signal_handler_interrupts_a_sleep_parked_task_with_eintr() {
    // The guest parks in a pure-timer poll (what `sleep` does); a SIGUSR1
    // with a handler installed must complete that poll with EINTR long
    // before the timer, and the signal must be visible to the process.
    let kernel = boot_with(
        "sleeper",
        guest("sleeper", |env: &mut dyn RuntimeEnv| {
            env.sigaction(Signal::SIGUSR1, SigAction::Handler { restart: false })
                .unwrap();
            env.print("ready\n");
            let started = Instant::now();
            match env.poll(&mut [], 30_000) {
                Err(Errno::EINTR) => {
                    assert!(
                        started.elapsed() < Duration::from_secs(10),
                        "EINTR should arrive promptly, not at the timer"
                    );
                    if env.pending_signals().contains(&Signal::SIGUSR1) {
                        5
                    } else {
                        6
                    }
                }
                other => {
                    env.eprint(&format!("unexpected poll result: {other:?}\n"));
                    1
                }
            }
        }),
    );
    let handle = kernel.spawn("/usr/bin/sleeper", &["sleeper"], &[]).unwrap();
    // Wait until the guest's poll is actually parked on a wait queue (the
    // parked-waiter counter is the only park in this kernel), so the signal
    // deterministically interrupts a blocked call rather than racing the
    // park.
    let deadline = Instant::now() + Duration::from_secs(5);
    while kernel.stats().waiters_parked == 0 {
        assert!(Instant::now() < deadline, "sleeper never parked");
        std::thread::sleep(Duration::from_millis(5));
    }
    kernel.kill(handle.pid, Signal::SIGUSR1).unwrap();
    let status = handle.wait();
    assert_eq!(status.code, Some(5), "stderr: {}", handle.stderr_string());
    kernel.shutdown();
}

#[test]
fn sa_restart_leaves_the_parked_call_running() {
    // With SA_RESTART the same signal must NOT interrupt the parked read:
    // the guest's blocked pipe read completes only when data arrives.
    let kernel = boot_with(
        "restart",
        guest("restart", |env: &mut dyn RuntimeEnv| {
            env.sigaction(Signal::SIGUSR1, SigAction::Handler { restart: true })
                .unwrap();
            let (r, w) = env.pipe().unwrap();
            let child = env
                .spawn(
                    "/usr/bin/restart-child",
                    &["restart-child".to_string()],
                    browsix_runtime::SpawnStdio {
                        stdout: Some(w),
                        ..Default::default()
                    },
                )
                .unwrap();
            env.close(w).unwrap();
            // The child signals us, then (much later on its clock) writes.
            // Under SA_RESTART our read survives the signal and returns the
            // data; without it we would see EINTR.
            let data = env.read(r, 64).unwrap();
            assert_eq!(data, b"payload");
            assert!(env.pending_signals().contains(&Signal::SIGUSR1));
            let _ = env.wait(child as i32);
            0
        }),
    );
    kernel.registry().register(
        "/usr/bin/restart-child",
        Arc::new(
            NodeLauncher::new(
                "restart-child",
                guest("restart-child", |env: &mut dyn RuntimeEnv| {
                    let parent = env.getppid();
                    env.kill(parent, Signal::SIGUSR1).unwrap();
                    // Give the signal time to reach the parked parent before
                    // the write completes the read.
                    let _ = env.poll(&mut [], 100);
                    env.print("payload");
                    0
                }),
            )
            .with_profile(instant_async()),
        ),
    );
    let handle = kernel.spawn("/usr/bin/restart", &["restart"], &[]).unwrap();
    let status = handle.wait();
    assert!(
        status.success(),
        "status: {status:?}, stderr: {}",
        handle.stderr_string()
    );
    kernel.shutdown();
}

#[test]
fn sigprocmask_blocks_and_delivers_exactly_once() {
    // Block SIGUSR1, have a child send it three times, then unblock: the
    // handler must observe exactly one delivery (standard signals coalesce).
    let kernel = boot_with(
        "blocker",
        guest("blocker", |env: &mut dyn RuntimeEnv| {
            env.sigaction(Signal::SIGUSR1, SigAction::Handler { restart: false })
                .unwrap();
            let mut mask = SigSet::empty();
            mask.insert(Signal::SIGUSR1);
            env.sigprocmask(SIG_BLOCK, mask).unwrap();
            let my_pid = env.getpid();
            let child = env
                .spawn(
                    "/usr/bin/spammer",
                    &["spammer".to_string(), my_pid.to_string()],
                    Default::default(),
                )
                .unwrap();
            let waited = env.wait(child as i32).unwrap();
            assert_eq!(waited.exit_code, Some(0));
            // Nothing may have been delivered while blocked.
            assert!(env.pending_signals().is_empty());
            let old = env.sigprocmask(SIG_UNBLOCK, mask).unwrap();
            assert!(old.contains(Signal::SIGUSR1));
            // Exactly one delivery arrives with the unblock.
            let mut seen = Vec::new();
            let deadline = Instant::now() + Duration::from_secs(5);
            while seen.is_empty() && Instant::now() < deadline {
                seen.extend(env.pending_signals());
                let _ = env.poll(&mut [], 5);
            }
            seen.extend(env.pending_signals());
            assert_eq!(seen, vec![Signal::SIGUSR1], "exactly one delivery");
            0
        }),
    );
    kernel.registry().register(
        "/usr/bin/spammer",
        Arc::new(
            NodeLauncher::new(
                "spammer",
                guest("spammer", |env: &mut dyn RuntimeEnv| {
                    let target: u32 = env.args()[1].parse().unwrap();
                    for _ in 0..3 {
                        env.kill(target, Signal::SIGUSR1).unwrap();
                    }
                    0
                }),
            )
            .with_profile(instant_async()),
        ),
    );
    let handle = kernel.spawn("/usr/bin/blocker", &["blocker"], &[]).unwrap();
    let status = handle.wait();
    assert!(
        status.success(),
        "status: {status:?}, stderr: {}",
        handle.stderr_string()
    );
    kernel.shutdown();
}

// ---- stop / continue and WUNTRACED ------------------------------------------

#[test]
fn wait4_reports_a_sigtstp_stopped_child_instead_of_hanging() {
    // Regression for the WUNTRACED satellite: a parent waiting with
    // WUNTRACED on a child stopped by SIGTSTP must get the stop status (and
    // must NOT hang forever); after SIGCONT + SIGKILL it reaps the real
    // termination status.
    let kernel = boot_with(
        "parent",
        guest("parent", |env: &mut dyn RuntimeEnv| {
            let child = env
                .spawn("/usr/bin/dawdler", &["dawdler".to_string()], Default::default())
                .unwrap();
            env.kill(child, Signal::SIGTSTP).unwrap();
            let stopped = env.wait_options(child as i32, WUNTRACED).unwrap().unwrap();
            assert_eq!(stopped.pid, child);
            assert_eq!(stopped.stop_signal(), Some(Signal::SIGTSTP));
            assert_eq!(stopped.exit_code, None);
            // The same stop is reported only once.
            assert!(env.wait_options(child as i32, WUNTRACED | WNOHANG).unwrap().is_none());
            env.kill(child, Signal::SIGCONT).unwrap();
            env.kill(child, Signal::SIGKILL).unwrap();
            let dead = env.wait(child as i32).unwrap();
            assert_eq!(dead.term_signal(), Some(Signal::SIGKILL));
            0
        }),
    );
    kernel.registry().register(
        "/usr/bin/dawdler",
        Arc::new(
            NodeLauncher::new(
                "dawdler",
                guest("dawdler", |env: &mut dyn RuntimeEnv| loop {
                    let _ = env.poll(&mut [], 1_000);
                }),
            )
            .with_profile(instant_async()),
        ),
    );
    let handle = kernel.spawn("/usr/bin/parent", &["parent"], &[]).unwrap();
    let status = handle
        .wait_timeout(Duration::from_secs(20))
        .expect("parent hung: WUNTRACED wait4 never saw the stopped child");
    assert_eq!(status.code, Some(0), "stderr: {}", handle.stderr_string());
    kernel.shutdown();
}

#[test]
fn sigcont_resumes_a_stopped_task_even_when_blocked() {
    // POSIX: SIGCONT resumes the process whether or not it is blocked,
    // ignored or caught — only the handler delivery obeys the mask.  A
    // stopped job that had blocked SIGCONT must still be resumable by `fg`.
    let kernel = boot_with(
        "cont-blocker",
        guest("cont-blocker", |env: &mut dyn RuntimeEnv| {
            let mut mask = SigSet::empty();
            mask.insert(Signal::SIGCONT);
            env.sigprocmask(SIG_BLOCK, mask).unwrap();
            env.print("ready\n");
            // Park until signalled around; exit 9 once we are back running.
            let _ = env.poll(&mut [], 2_000);
            9
        }),
    );
    let handle = kernel.spawn("/usr/bin/cont-blocker", &["cont-blocker"], &[]).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !handle.stdout_string().contains("ready") {
        assert!(Instant::now() < deadline, "guest never became ready");
        std::thread::sleep(Duration::from_millis(5));
    }
    kernel.kill(handle.pid, Signal::SIGSTOP).unwrap();
    wait_for_tasks(&kernel, Duration::from_secs(10), |tasks| {
        tasks
            .iter()
            .any(|(pid, _, _, state)| *pid == handle.pid && state == "stopped")
    });
    kernel.kill(handle.pid, Signal::SIGCONT).unwrap();
    let status = handle
        .wait_timeout(Duration::from_secs(20))
        .expect("a blocked SIGCONT must still resume the stopped task");
    assert_eq!(status.code, Some(9), "stderr: {}", handle.stderr_string());
    kernel.shutdown();
}

#[test]
fn background_terminal_read_ignoring_sigttin_gets_eio() {
    // POSIX: a background reader that blocks or ignores SIGTTIN gets EIO
    // from the read instead of the signal (EINTR there would make a
    // retry-on-EINTR loop livelock).
    let kernel = boot_with(
        "eio-reader",
        guest("eio-reader", |env: &mut dyn RuntimeEnv| {
            env.sigaction(Signal::SIGTTIN, SigAction::Ignore).unwrap();
            let my_group = env.getpgid(0).unwrap();
            env.tcsetpgrp(my_group + 1000).unwrap();
            match env.read(0, 16) {
                Err(Errno::EIO) => 8,
                other => {
                    env.eprint(&format!("read: {other:?}\n"));
                    1
                }
            }
        }),
    );
    let handle = kernel.spawn("/usr/bin/eio-reader", &["eio-reader"], &[]).unwrap();
    let status = handle.wait();
    assert_eq!(status.code, Some(8), "stderr: {}", handle.stderr_string());
    kernel.shutdown();
}

#[test]
fn background_read_from_the_terminal_raises_sigttin_and_stops() {
    // A process whose group is not the foreground group reading from the
    // controlling terminal gets SIGTTIN; its default disposition stops the
    // process.  SIGCONT resumes it and lets it exit.
    let kernel = boot_with(
        "bg-reader",
        guest("bg-reader", |env: &mut dyn RuntimeEnv| {
            // Hand the foreground to some other (empty) group so we are a
            // background reader, then touch stdin.
            let my_group = env.getpgid(0).unwrap();
            env.tcsetpgrp(my_group + 1000).unwrap();
            match env.read(0, 16) {
                Err(Errno::EINTR) => 7,
                other => {
                    env.eprint(&format!("read: {other:?}\n"));
                    1
                }
            }
        }),
    );
    let handle = kernel.spawn("/usr/bin/bg-reader", &["bg-reader"], &[]).unwrap();
    wait_for_tasks(&kernel, Duration::from_secs(10), |tasks| {
        tasks
            .iter()
            .any(|(pid, _, _, state)| *pid == handle.pid && state == "stopped")
    });
    kernel.kill(handle.pid, Signal::SIGCONT).unwrap();
    let status = handle.wait();
    assert_eq!(status.code, Some(7), "stderr: {}", handle.stderr_string());
    kernel.shutdown();
}

// ---- the shell, the terminal and the utilities ------------------------------

#[test]
fn yes_piped_into_timeout_cat_terminates_via_sigterm() {
    // The acceptance scenario: an infinite producer feeding a `timeout`-
    // bounded consumer.  `timeout` SIGTERMs `cat` at the deadline, `yes`
    // dies of SIGPIPE once the last reader is gone, and the pipeline
    // reports 124 like coreutils.
    let mut term = Terminal::new(boot_full());
    let started = Instant::now();
    let result = term.run_line("yes | timeout 0.4 cat > /tmp/flood.txt").unwrap();
    assert_eq!(result.exit_code, 124, "stderr: {}", result.stderr);
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "pipeline should terminate promptly"
    );
    // The flood actually flowed through the pipe before the deadline.
    let meta = term.kernel().fs().stat("/tmp/flood.txt").unwrap();
    assert!(meta.size > 0, "cat wrote nothing before being killed");
    term.drain(Duration::from_secs(5));
    term.into_kernel().shutdown();
}

#[test]
fn timeout_passes_through_a_fast_child_exit_code() {
    let mut term = Terminal::new(boot_full());
    let result = term.run_line("timeout 5 true").unwrap();
    assert_eq!(result.exit_code, 0, "stderr: {}", result.stderr);
    let result = term.run_line("timeout 5 false").unwrap();
    assert_eq!(result.exit_code, 1);
    // `sleep` itself: sub-second sleeps complete on the kernel timer.
    let started = Instant::now();
    let result = term.run_line("sleep 0.1").unwrap();
    assert_eq!(result.exit_code, 0);
    assert!(
        started.elapsed() >= Duration::from_millis(80),
        "sleep returned too early"
    );
    term.into_kernel().shutdown();
}

#[test]
fn ctrl_c_kills_only_the_foreground_pipeline() {
    // One shell runs a background `sleep` and a foreground `sleep`.  The
    // terminal's Ctrl-C (SIGINT to the foreground group) must kill the
    // foreground pipeline only: the shell carries on with the script and
    // the background job survives until killed explicitly.
    let term = Terminal::new(boot_full());
    let kernel = term.kernel();
    let handle = kernel
        .spawn(
            "/bin/sh",
            &[
                "sh",
                "-c",
                "sleep 30 &\nsleep 30\nFG=$?\nkill $!\nwait\necho after-interrupt $FG",
            ],
            &[],
        )
        .unwrap();
    // Wait for both sleeps to be running, then for the foreground group to
    // be established (interrupt() fails with ESRCH until tcsetpgrp ran).
    wait_for_tasks(kernel, Duration::from_secs(10), |tasks| {
        tasks
            .iter()
            .filter(|(_, _, name, state)| name == "sleep" && state == "running")
            .count()
            >= 2
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match term.interrupt() {
            Ok(()) => break,
            Err(Errno::ESRCH) => {
                assert!(Instant::now() < deadline, "foreground group never appeared");
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("interrupt failed: {e}"),
        }
    }
    let status = handle
        .wait_timeout(Duration::from_secs(20))
        .expect("the shell should survive Ctrl-C and finish its script");
    assert!(
        status.success(),
        "status: {status:?}, stderr: {}",
        handle.stderr_string()
    );
    // The foreground sleep died of SIGINT (128 + 2); the background job was
    // still alive to be killed by the script's `kill $!`.
    assert_eq!(handle.stdout_string(), "after-interrupt 130\n");
    term.into_kernel().shutdown();
}

#[test]
fn ctrl_z_stops_the_foreground_job_and_fg_resumes_it() {
    // Ctrl-Z stops the foreground pipeline; the shell reports it as a
    // stopped job (via the WUNTRACED wait path) and `fg` resumes it to
    // completion.  This is the shell-level regression test for "wait4 on a
    // SIGTSTP-stopped child reports stop status instead of hanging".
    let term = Terminal::new(boot_full());
    let kernel = term.kernel();
    let handle = kernel
        .spawn(
            "/bin/sh",
            &["sh", "-c", "sleep 2\necho fg-status=$?\njobs\nfg %1\necho resumed=$?"],
            &[],
        )
        .unwrap();
    wait_for_tasks(kernel, Duration::from_secs(10), |tasks| {
        tasks
            .iter()
            .any(|(_, _, name, state)| name == "sleep" && state == "running")
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match term.suspend() {
            Ok(()) => break,
            Err(Errno::ESRCH) => {
                assert!(Instant::now() < deadline, "foreground group never appeared");
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("suspend failed: {e}"),
        }
    }
    let status = handle
        .wait_timeout(Duration::from_secs(20))
        .expect("the shell must get control back from a stopped foreground job");
    assert!(
        status.success(),
        "status: {status:?}, stderr: {}",
        handle.stderr_string()
    );
    let stdout = handle.stdout_string();
    // The stopped job yielded 128 + SIGTSTP(20); `jobs` lists it; `fg`
    // resumed it and the sleep finished normally.
    assert!(
        stdout.contains("fg-status=148"),
        "expected the stop status, got: {stdout}"
    );
    assert!(stdout.contains("[1]  Stopped  sleep 2"), "jobs output: {stdout}");
    assert!(stdout.contains("resumed=0"), "fg should resume to completion: {stdout}");
    let stderr = handle.stderr_string();
    assert!(stderr.contains("Stopped"), "the shell announces the stop: {stderr}");
    term.into_kernel().shutdown();
}

#[test]
fn background_jobs_bg_and_group_kill_through_the_shell() {
    // `&` creates a job, `kill -STOP $!` stops it, `jobs` reports it,
    // `bg` continues it, and a group-addressed `kill -- -PGID` (the first
    // member's pid is the pgid) terminates the whole pipeline.
    let mut term = Terminal::new(boot_full());
    let result = term
        .run_line(concat!(
            "sleep 30 | cat &\n",
            "kill -STOP $!\n",
            "jobs\n",
            "bg %1\n",
            "jobs\n",
            "kill -TERM $!\n",
            "echo done=$?"
        ))
        .unwrap();
    assert_eq!(result.exit_code, 0, "stderr: {}", result.stderr);
    assert!(
        result.stdout.contains("[1]  Stopped  sleep 30 | cat"),
        "jobs after stop: {}",
        result.stdout
    );
    assert!(
        result.stdout.contains("[1]  Running  sleep 30 | cat"),
        "jobs after bg: {}",
        result.stdout
    );
    assert!(result.stdout.contains("done=0"), "stdout: {}", result.stdout);
    // The `sleep 30` member (job leader) is still running in the background
    // when the shell exits; kill its whole group from the host side.
    let leader = term
        .ps()
        .into_iter()
        .find(|(_, _, name, state)| name == "sleep" && state != "zombie")
        .map(|(pid, ..)| pid);
    if let Some(pid) = leader {
        let _ = term.kernel().kill(pid, Signal::SIGKILL);
    }
    term.drain(Duration::from_secs(5));
    term.into_kernel().shutdown();
}

#[test]
fn kill_utility_terminates_a_background_sleep() {
    let mut term = Terminal::new(boot_full());
    let result = term.run_line("sleep 30 &\nkill $!\nwait\necho waited=$?").unwrap();
    assert_eq!(result.exit_code, 0, "stderr: {}", result.stderr);
    // `wait` observed the SIGTERM death: 128 + 15.
    assert!(result.stdout.contains("waited=143"), "stdout: {}", result.stdout);
    term.into_kernel().shutdown();
}

#[test]
fn negative_pid_kill_signals_the_whole_process_group() {
    // `kill(-pgid)` must reach every member of the group and nothing else.
    let kernel = boot_with(
        "leader",
        guest("leader", |env: &mut dyn RuntimeEnv| {
            let a = env
                .spawn("/usr/bin/member", &["member".to_string()], Default::default())
                .unwrap();
            let b = env
                .spawn("/usr/bin/member", &["member".to_string()], Default::default())
                .unwrap();
            // Move both children into a group led by the first.
            env.setpgid(a, a).unwrap();
            env.setpgid(b, a).unwrap();
            assert_eq!(env.getpgid(a).unwrap(), a);
            assert_eq!(env.getpgid(b).unwrap(), a);
            // We are NOT in that group; the group kill must spare us.
            assert_ne!(env.getpgid(0).unwrap(), a);
            env.kill_group(a, Signal::SIGKILL).unwrap();
            let first = env.wait(-1).unwrap();
            let second = env.wait(-1).unwrap();
            assert_eq!(first.term_signal(), Some(Signal::SIGKILL));
            assert_eq!(second.term_signal(), Some(Signal::SIGKILL));
            // A group with no members left reports ESRCH.
            assert_eq!(env.kill_group(a, Signal::SIGTERM), Err(Errno::ESRCH));
            0
        }),
    );
    kernel.registry().register(
        "/usr/bin/member",
        Arc::new(
            NodeLauncher::new(
                "member",
                guest("member", |env: &mut dyn RuntimeEnv| loop {
                    let _ = env.poll(&mut [], 1_000);
                }),
            )
            .with_profile(instant_async()),
        ),
    );
    let handle = kernel.spawn("/usr/bin/leader", &["leader"], &[]).unwrap();
    let status = handle.wait();
    assert!(
        status.success(),
        "status: {status:?}, stderr: {}",
        handle.stderr_string()
    );
    kernel.shutdown();
}

#[test]
fn signal_stats_are_counted() {
    let kernel = boot_with(
        "shooter",
        guest("shooter", |env: &mut dyn RuntimeEnv| {
            let child = env
                .spawn("/usr/bin/victim", &["victim".to_string()], Default::default())
                .unwrap();
            env.kill(child, Signal::SIGKILL).unwrap();
            let waited = env.wait(child as i32).unwrap();
            assert_eq!(waited.term_signal(), Some(Signal::SIGKILL));
            0
        }),
    );
    kernel.registry().register(
        "/usr/bin/victim",
        Arc::new(
            NodeLauncher::new(
                "victim",
                guest("victim", |env: &mut dyn RuntimeEnv| loop {
                    let _ = env.poll(&mut [], 500);
                }),
            )
            .with_profile(instant_async()),
        ),
    );
    let handle = kernel.spawn("/usr/bin/shooter", &["shooter"], &[]).unwrap();
    assert!(handle.wait().success(), "stderr: {}", handle.stderr_string());
    let stats = kernel.stats();
    assert!(stats.signals_sent >= 1, "stats: {stats:?}");
    assert!(stats.signals_delivered >= 1, "stats: {stats:?}");
    assert!(stats.count("kill") >= 1);
    kernel.shutdown();
}
