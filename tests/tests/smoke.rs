//! Smoke test: the minimal end-to-end flow.  Boots a kernel, spawns one
//! process over the asynchronous syscall convention, round-trips a single
//! write syscall through the kernel, and checks the observable effects.

use std::sync::Arc;

use browsix_core::{BootConfig, Kernel};
use browsix_runtime::{guest, ExecutionProfile, NodeLauncher, RuntimeEnv, SyscallConvention};

#[test]
fn kernel_boots_and_round_trips_one_async_syscall() {
    let config = BootConfig::in_memory();
    config.registry.register(
        "/usr/bin/hello",
        Arc::new(
            NodeLauncher::new(
                "hello",
                guest("hello", |env: &mut dyn RuntimeEnv| {
                    // One asynchronous write syscall to stdout: the payload
                    // crosses the structured-clone boundary to the kernel and
                    // the result crosses back.
                    let written = env.write(1, b"hello browsix\n").unwrap();
                    assert_eq!(written, b"hello browsix\n".len());
                    0
                }),
            )
            .with_profile(ExecutionProfile::instant(SyscallConvention::Async)),
        ),
    );
    let kernel = Kernel::boot(config);
    let handle = kernel.spawn("/usr/bin/hello", &["hello"], &[]).unwrap();
    let status = handle.wait();
    assert!(status.success(), "status: {status:?}");
    assert_eq!(handle.stdout_string(), "hello browsix\n");

    // The round trip must have been counted as asynchronous syscall traffic.
    let stats = kernel.stats();
    assert!(stats.async_syscalls > 0, "expected async syscalls, got {stats:?}");
    assert!(stats.count("write") >= 1, "expected a write syscall, got {stats:?}");
    kernel.shutdown();
}
