//! End-to-end tests for the readiness stack: per-resource wait queues,
//! `poll`, `O_NONBLOCK`, EPIPE/SIGPIPE delivery, and the `httpd` guest
//! multiplexing many concurrent connections through one poll loop.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use browsix_core::{BootConfig, Errno, Kernel, Signal};
use browsix_fs::FileSystem;
use browsix_http::{HttpRequest, Method};
use browsix_runtime::{
    guest, ExecutionProfile, NodeLauncher, PollFd, RuntimeEnv, SpawnStdio, SyscallConvention, POLLHUP, POLLIN, POLLOUT,
};

fn instant_async() -> ExecutionProfile {
    ExecutionProfile::instant(SyscallConvention::Async)
}

/// Boots a kernel with the shell, the coreutils and `httpd` registered, and
/// the httpd document root staged.
fn boot_full() -> Kernel {
    let config = browsix_apps::default_config();
    config.registry.register(
        "/usr/bin/httpd",
        Arc::new(NodeLauncher::new("httpd", browsix_apps::httpd_program()).with_profile(instant_async())),
    );
    let kernel = browsix_apps::boot_standard_kernel(config, instant_async());
    browsix_apps::stage_httpd_root(kernel.fs().as_ref());
    kernel
}

fn boot_with(name: &'static str, program: browsix_runtime::GuestFactory) -> Kernel {
    let config = BootConfig::in_memory();
    config.registry.register(
        &format!("/usr/bin/{name}"),
        Arc::new(NodeLauncher::new(name, program).with_profile(instant_async())),
    );
    Kernel::boot(config)
}

// ---- O_NONBLOCK and poll semantics ------------------------------------------

#[test]
fn nonblocking_pipe_reads_and_writes_return_eagain() {
    let kernel = boot_with(
        "nonblock",
        guest("nonblock", |env: &mut dyn RuntimeEnv| {
            let (r, w) = env.pipe().unwrap();
            env.set_nonblocking(r, true).unwrap();
            env.set_nonblocking(w, true).unwrap();

            // Empty pipe, writer open: read would block -> EAGAIN.
            assert_eq!(env.read(r, 16).unwrap_err(), Errno::EAGAIN);

            // Data makes it readable again.
            assert_eq!(env.write(w, b"ping").unwrap(), 4);
            assert_eq!(env.read(r, 16).unwrap(), b"ping");

            // Fill the pipe with non-blocking writes until EAGAIN; the total
            // accepted must be exactly the pipe capacity (64 KiB).
            let chunk = vec![7u8; 8 * 1024];
            let mut accepted = 0usize;
            loop {
                match env.write(w, &chunk) {
                    Ok(n) => accepted += n,
                    Err(Errno::EAGAIN) => break,
                    Err(e) => panic!("unexpected write error: {e}"),
                }
            }
            assert_eq!(accepted, 64 * 1024);

            // poll agrees: full pipe is readable but not writable.
            let mut pfds = [PollFd::readable(r), PollFd::writable(w)];
            assert_eq!(env.poll(&mut pfds, 0).unwrap(), 1);
            assert_eq!(pfds[0].revents, POLLIN);
            assert_eq!(pfds[1].revents, 0);

            // Draining restores writability.
            while !env.read(r, 64 * 1024).unwrap().is_empty() {
                if env.read(r, 1).unwrap_err() == Errno::EAGAIN {
                    break;
                }
            }
            let mut pfds = [PollFd::writable(w)];
            assert_eq!(env.poll(&mut pfds, 0).unwrap(), 1);
            assert_eq!(pfds[0].revents, POLLOUT);
            0
        }),
    );
    let handle = kernel.spawn("/usr/bin/nonblock", &["nonblock"], &[]).unwrap();
    let status = handle.wait();
    assert!(
        status.success(),
        "status: {status:?}, stderr: {}",
        handle.stderr_string()
    );
    kernel.shutdown();
}

#[test]
fn poll_blocks_until_timeout_and_reports_zero_ready() {
    let kernel = boot_with(
        "polltimeout",
        guest("polltimeout", |env: &mut dyn RuntimeEnv| {
            let (r, _w) = env.pipe().unwrap();
            let mut pfds = [PollFd::readable(r)];
            // Nothing will ever arrive: the 50 ms timeout must fire with no
            // descriptor ready.
            let ready = env.poll(&mut pfds, 50).unwrap();
            assert_eq!(ready, 0);
            assert_eq!(pfds[0].revents, 0);
            0
        }),
    );
    let handle = kernel.spawn("/usr/bin/polltimeout", &["polltimeout"], &[]).unwrap();
    assert!(handle.wait().success());
    kernel.shutdown();
}

#[test]
fn poll_reports_hangup_when_the_writer_closes() {
    let kernel = boot_with(
        "pollhup",
        guest("pollhup", |env: &mut dyn RuntimeEnv| {
            let (r, w) = env.pipe().unwrap();
            env.close(w).unwrap();
            let mut pfds = [PollFd::readable(r)];
            assert_eq!(env.poll(&mut pfds, -1).unwrap(), 1);
            assert_eq!(pfds[0].revents, POLLHUP);
            // And the read immediately reports EOF.
            assert!(env.read(r, 16).unwrap().is_empty());
            0
        }),
    );
    let handle = kernel.spawn("/usr/bin/pollhup", &["pollhup"], &[]).unwrap();
    assert!(handle.wait().success());
    kernel.shutdown();
}

#[test]
fn nonblocking_accept_returns_eagain_and_full_backlog_refuses() {
    let kernel = boot_with(
        "sockready",
        guest("sockready", |env: &mut dyn RuntimeEnv| {
            let listener = env.socket().unwrap();
            env.bind(listener, 7100).unwrap();
            env.listen(listener, 1).unwrap();
            env.set_nonblocking(listener, true).unwrap();
            assert_eq!(env.accept(listener).unwrap_err(), Errno::EAGAIN);

            // First connect fills the single-slot backlog...
            let c1 = env.socket().unwrap();
            env.connect(c1, 7100).unwrap();
            // ...so a second is refused outright instead of parking forever.
            let c2 = env.socket().unwrap();
            assert_eq!(env.connect(c2, 7100).unwrap_err(), Errno::ECONNREFUSED);

            // The queued connection is pollable and acceptable.
            let mut pfds = [PollFd::readable(listener)];
            assert_eq!(env.poll(&mut pfds, 0).unwrap(), 1);
            assert_eq!(pfds[0].revents, POLLIN);
            assert!(env.accept(listener).is_ok());
            0
        }),
    );
    let handle = kernel.spawn("/usr/bin/sockready", &["sockready"], &[]).unwrap();
    let status = handle.wait();
    assert!(
        status.success(),
        "status: {status:?}, stderr: {}",
        handle.stderr_string()
    );
    kernel.shutdown();
}

#[test]
fn accept_parked_on_a_closed_listener_errors_instead_of_hanging() {
    use browsix_runtime::{EmscriptenLauncher, EmscriptenMode};
    let config = BootConfig::in_memory();
    config.registry.register(
        "/usr/bin/closer",
        Arc::new(
            EmscriptenLauncher::new(
                "closer",
                guest("closer", |env: &mut dyn RuntimeEnv| {
                    if let Some(image) = env.fork_image() {
                        // Child: block in accept on the inherited listener;
                        // the parent closing its (shared) description must
                        // error this accept out, not strand it forever.
                        let listener = image[0] as i32;
                        return match env.accept(listener) {
                            Err(Errno::EINVAL) => 0,
                            other => {
                                env.eprint(&format!("child accept: {other:?}\n"));
                                1
                            }
                        };
                    }
                    let listener = env.socket().unwrap();
                    env.bind(listener, 7200).unwrap();
                    env.listen(listener, 4).unwrap();
                    let child = env.fork(vec![listener as u8]).unwrap();
                    // Give the child time to park in accept, then close the
                    // shared listener description, tearing the port down.
                    std::thread::sleep(Duration::from_millis(100));
                    env.close(listener).unwrap();
                    let waited = env.wait(child as i32).unwrap();
                    waited.exit_code.unwrap_or(1)
                }),
                EmscriptenMode::Emterpreter,
            )
            .with_profile(instant_async()),
        ),
    );
    let kernel = Kernel::boot(config);
    let handle = kernel.spawn("/usr/bin/closer", &["closer"], &[]).unwrap();
    let status = handle
        .wait_timeout(Duration::from_secs(30))
        .expect("parent (and the parked child accept) must finish");
    assert_eq!(status.code, Some(0), "stderr: {}", handle.stderr_string());
    kernel.shutdown();
}

// ---- EPIPE + SIGPIPE ---------------------------------------------------------

#[test]
fn blocked_writer_gets_sigpipe_when_the_reader_closes() {
    let config = BootConfig::in_memory();
    config.registry.register(
        "/usr/bin/gusher",
        Arc::new(
            NodeLauncher::new(
                "gusher",
                guest("gusher", |env: &mut dyn RuntimeEnv| {
                    // Write far more down stdout than the pipe holds so the
                    // write parks; when the parent closes the read end, the
                    // parked write must fail with EPIPE and SIGPIPE must
                    // kill us (no handler installed).
                    let payload = vec![b'x'; 256 * 1024];
                    let _ = env.write(1, &payload);
                    // Unreachable when SIGPIPE terminates the process.
                    7
                }),
            )
            .with_profile(instant_async()),
        ),
    );
    config.registry.register(
        "/usr/bin/parent",
        Arc::new(
            NodeLauncher::new(
                "parent",
                guest("parent", |env: &mut dyn RuntimeEnv| {
                    let (r, w) = env.pipe().unwrap();
                    let child = env
                        .spawn(
                            "/usr/bin/gusher",
                            &["gusher".to_string()],
                            SpawnStdio {
                                stdout: Some(w),
                                ..SpawnStdio::default()
                            },
                        )
                        .unwrap();
                    env.close(w).unwrap();
                    // Read a little, then slam the door.
                    let first = env.read(r, 4096).unwrap();
                    assert!(!first.is_empty());
                    env.close(r).unwrap();
                    let waited = env.wait(child as i32).unwrap();
                    // Terminated by SIGPIPE, not a normal exit.
                    assert_eq!(waited.exit_code, None);
                    assert_eq!(waited.status & 0x7f, Signal::SIGPIPE.number());
                    0
                }),
            )
            .with_profile(instant_async()),
        ),
    );
    let kernel = Kernel::boot(config);
    let handle = kernel.spawn("/usr/bin/parent", &["parent"], &[]).unwrap();
    let status = handle.wait();
    assert!(
        status.success(),
        "status: {status:?}, stderr: {}",
        handle.stderr_string()
    );
    kernel.shutdown();
}

#[test]
fn yes_head_pipeline_terminates_via_sigpipe() {
    let kernel = boot_full();
    // `yes` writes forever; `head -n 1` takes one line and exits, closing
    // the pipe's read end.  The blocked `yes` must then die of SIGPIPE and
    // the pipeline must finish with head's exit status.
    let handle = kernel.spawn("/bin/sh", &["sh", "-c", "yes | head -n 1"], &[]).unwrap();
    let status = handle
        .wait_timeout(Duration::from_secs(30))
        .expect("pipeline must terminate (yes must be killed by SIGPIPE)");
    assert_eq!(status.code, Some(0), "stderr: {}", handle.stderr_string());
    assert_eq!(handle.stdout_string(), "y\n");
    kernel.shutdown();
}

// ---- httpd -------------------------------------------------------------------

#[test]
fn httpd_serves_64_concurrent_connections_through_one_poll_loop() {
    const CLIENTS: usize = 64;
    let kernel = Arc::new(boot_full());
    let server = kernel
        .spawn(
            "/usr/bin/httpd",
            &["httpd", "--max-requests", &CLIENTS.to_string()],
            &[],
        )
        .unwrap();
    assert!(kernel.wait_for_port(browsix_apps::HTTPD_PORT, Duration::from_secs(10)));

    // 64 clients connect simultaneously; every one must get the right body
    // back through the server's single poll loop.
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let mut threads = Vec::new();
    for i in 0..CLIENTS {
        let kernel = Arc::clone(&kernel);
        let barrier = Arc::clone(&barrier);
        threads.push(std::thread::spawn(move || {
            barrier.wait();
            let path = if i % 2 == 0 { "/hello.txt" } else { "/index.html" };
            let response = kernel
                .http_request(
                    browsix_apps::HTTPD_PORT,
                    HttpRequest::new(Method::Get, path),
                    Duration::from_secs(30),
                )
                .unwrap_or_else(|e| panic!("client {i} ({path}): {e}"));
            assert!(response.is_success());
            if i % 2 == 0 {
                assert_eq!(response.body, b"hello from the vfs\n");
            } else {
                assert!(response.body.starts_with(b"<html>"));
            }
        }));
    }
    for thread in threads {
        thread.join().unwrap();
    }

    // With --max-requests served, the server exits on its own.
    let status = server
        .wait_timeout(Duration::from_secs(10))
        .expect("httpd must exit after serving max-requests");
    assert_eq!(status.code, Some(0), "stderr: {}", server.stderr_string());

    // The whole exchange ran on wait queues: wakeups happened, and none of
    // the old rescan machinery exists to hide a lost one.
    let stats = kernel.stats();
    assert!(stats.count("poll") > 0, "httpd must actually poll");
    assert!(stats.wakeups > 0, "wait-queue wakeups must drive completion");
    assert!(stats.eagain_returns > 0, "non-blocking accept/read must hit EAGAIN");
    Arc::try_unwrap(kernel).expect("all clients done").shutdown();
}

#[test]
fn httpd_serves_shell_driven_concurrent_curl_clients() {
    let kernel = boot_full();
    let server = kernel
        .spawn("/usr/bin/httpd", &["httpd", "--max-requests", "8"], &[])
        .unwrap();
    assert!(kernel.wait_for_port(browsix_apps::HTTPD_PORT, Duration::from_secs(10)));

    // Eight curls in the background, all racing, then `wait`: the shell-level
    // view of a concurrent client fleet.
    let script = (0..8)
        .map(|i| format!("curl http://localhost:8000/hello.txt -o /tmp/c{i} &"))
        .collect::<Vec<_>>()
        .join("\n")
        + "\nwait\n";
    let shell = kernel.spawn("/bin/sh", &["sh", "-c", &script], &[]).unwrap();
    let status = shell
        .wait_timeout(Duration::from_secs(30))
        .expect("shell script must finish");
    assert_eq!(status.code, Some(0), "stderr: {}", shell.stderr_string());
    for i in 0..8 {
        assert_eq!(
            kernel.fs().read_file(&format!("/tmp/c{i}")).unwrap(),
            b"hello from the vfs\n",
            "curl client {i}"
        );
    }
    assert!(server.wait_timeout(Duration::from_secs(10)).is_some());
    kernel.shutdown();
}

#[test]
fn httpd_serves_files_and_404s() {
    let kernel = boot_full();
    let _server = kernel
        .spawn("/usr/bin/httpd", &["httpd", "--max-requests", "3"], &[])
        .unwrap();
    assert!(kernel.wait_for_port(browsix_apps::HTTPD_PORT, Duration::from_secs(10)));

    let ok = kernel
        .http_request(
            browsix_apps::HTTPD_PORT,
            HttpRequest::new(Method::Get, "/payload.bin"),
            Duration::from_secs(10),
        )
        .unwrap();
    assert!(ok.is_success());
    assert_eq!(ok.body.len(), 32 * 1024);

    let index = kernel
        .http_request(
            browsix_apps::HTTPD_PORT,
            HttpRequest::new(Method::Get, "/"),
            Duration::from_secs(10),
        )
        .unwrap();
    assert!(index.body.starts_with(b"<html>"));

    let missing = kernel
        .http_request(
            browsix_apps::HTTPD_PORT,
            HttpRequest::new(Method::Get, "/nope.txt"),
            Duration::from_secs(10),
        )
        .unwrap();
    assert_eq!(missing.status, 404);
    kernel.shutdown();
}
