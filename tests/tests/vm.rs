//! End-to-end tests for the virtual-memory subsystem: `mmap` and friends
//! issued by real guest processes in workers, copy-on-write fork, POSIX
//! shared memory, and the zero-syscall shared-mapping data path.

use std::sync::Arc;

use browsix_core::{BootConfig, Errno, Kernel};
use browsix_fs::{FileSystem, OpenFlags};
use browsix_runtime::{
    guest, EmscriptenLauncher, EmscriptenMode, ExecutionProfile, NodeLauncher, RuntimeEnv, SyscallConvention,
    MAP_ANONYMOUS, MAP_PRIVATE, MAP_SHARED, PAGE_SIZE, PROT_READ, PROT_WRITE,
};

fn instant_async() -> ExecutionProfile {
    ExecutionProfile::instant(SyscallConvention::Async)
}

/// Boots a kernel and registers one Node-style guest at `/usr/bin/<name>`.
fn boot_node(name: &'static str, body: fn(&mut dyn RuntimeEnv) -> i32) -> Kernel {
    let kernel = Kernel::boot(BootConfig::in_memory());
    kernel.registry().register(
        &format!("/usr/bin/{name}"),
        Arc::new(NodeLauncher::new(name, guest(name, body)).with_profile(instant_async())),
    );
    kernel
}

#[test]
fn ftruncate_resizes_open_files_end_to_end() {
    let kernel = boot_node("truncator", |env: &mut dyn RuntimeEnv| {
        env.write_file("/data.bin", &[7u8; 1000]).unwrap();
        let fd = env.open("/data.bin", OpenFlags::read_write()).unwrap();
        // Shrink, then zero-extend; fstat observes each size.
        env.ftruncate(fd, 100).unwrap();
        assert_eq!(env.fstat(fd).unwrap().size, 100);
        env.ftruncate(fd, 300).unwrap();
        assert_eq!(env.fstat(fd).unwrap().size, 300);
        let tail = env.pread(fd, 300, 0).unwrap();
        assert_eq!(&tail[..100], &[7u8; 100][..]);
        assert_eq!(&tail[100..], &[0u8; 200][..]);
        env.close(fd).unwrap();
        // A read-only descriptor cannot truncate.
        let ro = env.open("/data.bin", OpenFlags::read_only()).unwrap();
        assert_eq!(env.ftruncate(ro, 0), Err(Errno::EINVAL));
        env.close(ro).unwrap();
        assert_eq!(env.ftruncate(99, 0), Err(Errno::EBADF));
        0
    });
    let handle = kernel.spawn("/usr/bin/truncator", &["truncator"], &[]).unwrap();
    let status = handle.wait();
    assert!(status.success(), "status: {status:?}");
    assert_eq!(kernel.fs().stat("/data.bin").unwrap().size, 300);
    assert!(kernel.stats().count("ftruncate") >= 3);
    kernel.shutdown();
}

#[test]
fn anonymous_mappings_store_and_load_through_vm_syscalls() {
    let kernel = boot_node("mapper", |env: &mut dyn RuntimeEnv| {
        let region = env
            .mmap(
                0,
                2 * PAGE_SIZE as u64,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            )
            .unwrap();
        assert!(!region.is_shared());
        // Fresh anonymous pages read as zeros.
        assert_eq!(env.vm_read(region.addr, 16).unwrap(), vec![0u8; 16]);
        // Stores land and cross page boundaries.
        env.vm_write(region.addr + PAGE_SIZE as u64 - 3, b"straddle").unwrap();
        assert_eq!(env.vm_read(region.addr + PAGE_SIZE as u64 - 3, 8).unwrap(), b"straddle");
        // Dropping write permission turns stores into EACCES; loads still work.
        env.mprotect(region.addr, region.len, PROT_READ).unwrap();
        assert_eq!(env.vm_write(region.addr, b"x"), Err(Errno::EACCES));
        assert!(env.vm_read(region.addr, 1).is_ok());
        // After munmap the range faults.
        env.munmap(region.addr, region.len).unwrap();
        assert_eq!(env.vm_read(region.addr, 1), Err(Errno::EFAULT));
        0
    });
    let handle = kernel.spawn("/usr/bin/mapper", &["mapper"], &[]).unwrap();
    assert!(handle.wait().success());
    kernel.shutdown();
}

#[test]
fn file_backed_mappings_read_through_the_page_cache() {
    let kernel = boot_node("filemap", |env: &mut dyn RuntimeEnv| {
        let mut image = vec![0u8; 2 * PAGE_SIZE];
        image[0..5].copy_from_slice(b"front");
        image[PAGE_SIZE..PAGE_SIZE + 4].copy_from_slice(b"back");
        env.write_file("/blob.bin", &image).unwrap();
        let fd = env.open("/blob.bin", OpenFlags::read_only()).unwrap();
        // Map the second page only (non-zero offset).
        let region = env
            .mmap(
                0,
                PAGE_SIZE as u64,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE,
                fd,
                PAGE_SIZE as u64,
            )
            .unwrap();
        assert_eq!(env.vm_read(region.addr, 4).unwrap(), b"back");
        // A private write is invisible to the file (copy-on-write from the
        // page cache).
        env.vm_write(region.addr, b"priv").unwrap();
        assert_eq!(env.vm_read(region.addr, 4).unwrap(), b"priv");
        let on_disk = env.read_file("/blob.bin").unwrap();
        assert_eq!(&on_disk[PAGE_SIZE..PAGE_SIZE + 4], b"back");
        env.close(fd).unwrap();
        0
    });
    let handle = kernel.spawn("/usr/bin/filemap", &["filemap"], &[]).unwrap();
    assert!(handle.wait().success());
    let stats = kernel.stats();
    assert!(
        stats.pages_shared >= 1,
        "file mapping should reference cache pages: {stats:?}"
    );
    kernel.shutdown();
}

#[test]
fn shared_file_mappings_write_back_on_msync() {
    let kernel = boot_node("msyncer", |env: &mut dyn RuntimeEnv| {
        env.write_file("/shared.bin", &vec![0u8; PAGE_SIZE]).unwrap();
        let fd = env.open("/shared.bin", OpenFlags::read_write()).unwrap();
        let region = env
            .mmap(0, PAGE_SIZE as u64, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0)
            .unwrap();
        assert!(region.is_shared());
        // Stores go straight to the shared buffer — no syscall — and msync
        // publishes them to the file.
        region.shared_write(128, b"durable").unwrap();
        env.msync(region.addr, 0).unwrap();
        let on_disk = env.read_file("/shared.bin").unwrap();
        assert_eq!(&on_disk[128..135], b"durable");
        env.munmap(region.addr, region.len).unwrap();
        env.close(fd).unwrap();
        0
    });
    let handle = kernel.spawn("/usr/bin/msyncer", &["msyncer"], &[]).unwrap();
    assert!(handle.wait().success());
    kernel.shutdown();
}

#[test]
fn cow_fork_isolates_parent_and_child_pages() {
    // Fork requires the async convention (Emterpreter-style launcher).
    let kernel = Kernel::boot(BootConfig::in_memory());
    kernel.registry().register(
        "/usr/bin/cowfork",
        Arc::new(
            EmscriptenLauncher::new(
                "cowfork",
                guest("cowfork", |env: &mut dyn RuntimeEnv| {
                    if env.fork_image().is_some() {
                        // Child: sees the parent's bytes, then rewrites them.
                        // The kernel gave us the parent's mappings by
                        // reference; this write is the COW fault.
                        let base = 0x1000_0000u64;
                        assert_eq!(env.vm_read(base, 6).unwrap(), b"parent");
                        env.vm_write(base, b"child!").unwrap();
                        assert_eq!(env.vm_read(base, 6).unwrap(), b"child!");
                        return 0;
                    }
                    let region = env
                        .mmap(
                            0,
                            16 * PAGE_SIZE as u64,
                            PROT_READ | PROT_WRITE,
                            MAP_PRIVATE | MAP_ANONYMOUS,
                            -1,
                            0,
                        )
                        .unwrap();
                    // The bump allocator places the first region at MAP_BASE,
                    // which the child relies on to find the mapping.
                    assert_eq!(region.addr, 0x1000_0000);
                    env.vm_write(region.addr, b"parent").unwrap();
                    let child = env.fork(b"tiny image".to_vec()).unwrap();
                    let waited = env.wait(child as i32).unwrap();
                    assert_eq!(waited.exit_code, Some(0));
                    // The child's write never reached our copy of the page.
                    assert_eq!(env.vm_read(region.addr, 6).unwrap(), b"parent");
                    7
                }),
                EmscriptenMode::Emterpreter,
            )
            .with_profile(instant_async()),
        ),
    );
    let handle = kernel.spawn("/usr/bin/cowfork", &["cowfork"], &[]).unwrap();
    let status = handle.wait();
    assert_eq!(status.code, Some(7), "status: {status:?}");
    let stats = kernel.stats();
    assert!(stats.cow_faults >= 1, "child write must COW-fault: {stats:?}");
    assert!(stats.pages_shared >= 1, "fork must share pages: {stats:?}");
    assert!(stats.pages_copied >= 1, "the fault must copy a page: {stats:?}");
    kernel.shutdown();
}

#[test]
fn fork_heavy_pipeline_shares_pages_instead_of_copying() {
    // A fork-heavy workload: each child inherits a 64-page mapping and
    // dirties exactly one page.  Sharing must dominate copying — the whole
    // point of COW fork being O(regions), not O(image bytes).
    let kernel = Kernel::boot(BootConfig::in_memory());
    kernel.registry().register(
        "/usr/bin/forkmany",
        Arc::new(
            EmscriptenLauncher::new(
                "forkmany",
                guest("forkmany", |env: &mut dyn RuntimeEnv| {
                    let base = 0x1000_0000u64;
                    if let Some(image) = env.fork_image() {
                        let index = image[0] as u64;
                        env.vm_write(base + index * PAGE_SIZE as u64, format!("child {index}").as_bytes())
                            .unwrap();
                        return 0;
                    }
                    let region = env
                        .mmap(
                            0,
                            64 * PAGE_SIZE as u64,
                            PROT_READ | PROT_WRITE,
                            MAP_PRIVATE | MAP_ANONYMOUS,
                            -1,
                            0,
                        )
                        .unwrap();
                    assert_eq!(region.addr, base);
                    // Touch every page so all 64 are resident before forking.
                    for page in 0..64u64 {
                        env.vm_write(base + page * PAGE_SIZE as u64, &[page as u8]).unwrap();
                    }
                    for index in 0..4u8 {
                        let child = env.fork(vec![index]).unwrap();
                        let waited = env.wait(child as i32).unwrap();
                        assert_eq!(waited.exit_code, Some(0));
                    }
                    // Children dirtied their own copies; ours still holds the
                    // page indices we wrote.
                    for page in 0..64u64 {
                        assert_eq!(
                            env.vm_read(base + page * PAGE_SIZE as u64, 1).unwrap(),
                            vec![page as u8]
                        );
                    }
                    0
                }),
                EmscriptenMode::Emterpreter,
            )
            .with_profile(instant_async()),
        ),
    );
    let handle = kernel.spawn("/usr/bin/forkmany", &["forkmany"], &[]).unwrap();
    assert!(handle.wait().success());
    let stats = kernel.stats();
    // 4 forks x 64 resident pages shared; only the dirtied pages copied.
    assert!(stats.pages_shared >= 4 * 64, "stats: {stats:?}");
    assert!(
        stats.pages_copied < stats.pages_shared / 8,
        "COW must copy far fewer pages than it shares: {stats:?}"
    );
    kernel.shutdown();
}

#[test]
fn shm_ping_passes_messages_with_no_data_path_syscalls() {
    let kernel = Kernel::boot(BootConfig::in_memory());
    browsix_utils::register_browsix(kernel.registry(), instant_async());
    // Two independent guest processes bounce 64 round trips through a
    // shm_open ring.  Start pong first; either order works (the ring is
    // created by whoever arrives first).
    let pong = kernel
        .spawn("/usr/bin/shm-ping", &["shm-ping", "-n", "64", "pong", "/ring"], &[])
        .unwrap();
    let ping = kernel
        .spawn("/usr/bin/shm-ping", &["shm-ping", "-n", "64", "ping", "/ring"], &[])
        .unwrap();
    let ping_status = ping.wait();
    let pong_status = pong.wait();
    assert!(ping_status.success(), "ping: {ping_status:?} {}", ping.stdout_string());
    assert!(pong_status.success(), "pong: {pong_status:?}");
    assert_eq!(ping.stdout_string(), "shm-ping: 64 round trips via /ring\n");

    let stats = kernel.stats();
    assert_eq!(stats.shm_objects, 1, "stats: {stats:?}");
    assert_eq!(stats.count("shm_open"), 2);
    assert!(stats.count("mmap") >= 2);
    // The acceptance property: 64 round trips crossed, yet the data path
    // issued zero read/write syscalls — only ping's one-line summary write.
    assert_eq!(stats.count("read"), 0, "stats: {stats:?}");
    assert!(stats.count("write") <= 2, "stats: {stats:?}");
    assert_eq!(stats.count("vm_read"), 0, "shared mappings need no vm_read: {stats:?}");
    assert_eq!(
        stats.count("vm_write"),
        0,
        "shared mappings need no vm_write: {stats:?}"
    );
    kernel.shutdown();
}

#[test]
fn shm_objects_outlive_unlink_until_last_reference() {
    let kernel = boot_node("shmlife", |env: &mut dyn RuntimeEnv| {
        let flags = OpenFlags {
            create: true,
            ..OpenFlags::read_write()
        };
        let fd = env.shm_open("/scratch", flags, 0o600).unwrap();
        env.ftruncate(fd, PAGE_SIZE as u64).unwrap();
        let region = env
            .mmap(0, PAGE_SIZE as u64, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0)
            .unwrap();
        region.shared_write(0, b"still here").unwrap();
        // Unlink the name: the descriptor and the mapping keep working.
        env.shm_unlink("/scratch").unwrap();
        assert_eq!(env.shm_unlink("/scratch"), Err(Errno::ENOENT));
        assert_eq!(env.shm_open("/scratch", OpenFlags::read_write(), 0), Err(Errno::ENOENT));
        assert_eq!(region.shared_read(0, 10).unwrap(), b"still here");
        assert_eq!(env.fstat(fd).unwrap().size, PAGE_SIZE as u64);
        // Exclusive recreation succeeds now that the name is free.
        let flags = OpenFlags {
            create: true,
            exclusive: true,
            ..OpenFlags::read_write()
        };
        let fresh = env.shm_open("/scratch", flags, 0o600).unwrap();
        assert_eq!(env.fstat(fresh).unwrap().size, 0);
        0
    });
    let handle = kernel.spawn("/usr/bin/shmlife", &["shmlife"], &[]).unwrap();
    assert!(handle.wait().success());
    assert_eq!(kernel.stats().shm_objects, 2);
    kernel.shutdown();
}
