//! End-to-end tests for the sharded kernel: deterministic placement,
//! cross-shard pipes and sockets, exactly-once EPIPE/SIGPIPE delivery, and a
//! property-based oracle checking that a multi-shard kernel is
//! observationally identical to the classic single-event-loop kernel.
//!
//! Tasks are owned by shard `pid % shards` and host spawns place round-robin
//! (see `browsix_core::kernel::shard`), so a parent and its non-fork children
//! routinely straddle shards — every pipeline here crosses shard boundaries
//! once `shards > 1`.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use browsix_core::kernel::shard::shard_of;
use browsix_core::{BootConfig, Kernel, Signal};
use browsix_fs::FileSystem;
use browsix_runtime::{guest, ExecutionProfile, NodeLauncher, RuntimeEnv, SpawnStdio, SyscallConvention};

fn instant_async() -> ExecutionProfile {
    ExecutionProfile::instant(SyscallConvention::Async)
}

/// Boots a kernel with the shell, coreutils and `httpd` registered, pinned
/// to `shards` event loops.
fn boot_full(shards: usize) -> Kernel {
    let config = browsix_apps::default_config().with_shards(shards);
    config.registry.register(
        "/usr/bin/httpd",
        Arc::new(NodeLauncher::new("httpd", browsix_apps::httpd_program()).with_profile(instant_async())),
    );
    let kernel = browsix_apps::boot_standard_kernel(config, instant_async());
    browsix_apps::stage_httpd_root(kernel.fs().as_ref());
    kernel
}

// ---- deterministic placement -------------------------------------------------

#[test]
fn pid_to_shard_assignment_is_deterministic_across_boots() {
    // Spawning the same program sequence on a fresh kernel must yield the
    // same pids (per-shard pid pools + a deterministic round-robin placement
    // counter), so a workload's shard layout is reproducible run to run.
    let collect = || {
        let kernel = boot_full(4);
        let pids: Vec<u32> = (0..8)
            .map(|_| {
                let handle = kernel.spawn("/usr/bin/true", &["true"], &[]).unwrap();
                handle.wait();
                handle.pid
            })
            .collect();
        kernel.shutdown();
        pids
    };
    let first = collect();
    let second = collect();
    assert_eq!(first, second, "placement must not depend on timing");

    // The documented ownership hash: shard = pid % shards.  Round-robin
    // placement spreads 8 sequential host spawns evenly over 4 shards.
    let mut per_shard = [0usize; 4];
    for &pid in &first {
        per_shard[shard_of(pid, 4)] += 1;
    }
    assert_eq!(per_shard, [2, 2, 2, 2], "pids: {first:?}");
}

// ---- cross-shard EPIPE/SIGPIPE ----------------------------------------------

#[test]
fn yes_head_pipeline_terminates_via_sigpipe_on_multi_shard_kernels() {
    // The PR-4 regression (`yes | head -n 1` must die of SIGPIPE, not spin)
    // re-run on sharded kernels: the shell, `yes` and `head` are placed
    // round-robin, so the pipe write that takes the EPIPE crosses shards.
    for shards in [1, 2, 4] {
        let kernel = boot_full(shards);
        let handle = kernel.spawn("/bin/sh", &["sh", "-c", "yes | head -n 1"], &[]).unwrap();
        let status = handle
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|| panic!("pipeline must terminate under {shards} shards"));
        assert_eq!(status.code, Some(0), "stderr: {}", handle.stderr_string());
        assert_eq!(handle.stdout_string(), "y\n", "shards: {shards}");
        kernel.shutdown();
    }
}

#[test]
fn blocked_cross_shard_writers_get_exactly_one_sigpipe_each() {
    // A parent creates four pipes (streams owned by its shard) and four
    // writer children; round-robin placement puts children on every shard of
    // a 4-shard kernel, so at least three write remotely.  Closing each read
    // end must kill the matching writer with SIGPIPE — observed exactly once
    // per child by wait4, in the order the parent chose.
    let config = BootConfig::in_memory().with_shards(4);
    config.registry.register(
        "/usr/bin/gusher",
        Arc::new(
            NodeLauncher::new(
                "gusher",
                guest("gusher", |env: &mut dyn RuntimeEnv| {
                    // Far more than the pipe holds, so the write parks.
                    let payload = vec![b'x'; 256 * 1024];
                    let _ = env.write(1, &payload);
                    // Unreachable: SIGPIPE terminates the process.
                    7
                }),
            )
            .with_profile(instant_async()),
        ),
    );
    config.registry.register(
        "/usr/bin/parent",
        Arc::new(
            NodeLauncher::new(
                "parent",
                guest("parent", |env: &mut dyn RuntimeEnv| {
                    let mut children = Vec::new();
                    for _ in 0..4 {
                        let (r, w) = env.pipe().unwrap();
                        let child = env
                            .spawn(
                                "/usr/bin/gusher",
                                &["gusher".to_string()],
                                SpawnStdio {
                                    stdout: Some(w),
                                    ..SpawnStdio::default()
                                },
                            )
                            .unwrap();
                        env.close(w).unwrap();
                        children.push((child, r));
                    }
                    for (child, r) in children {
                        // Drain a little so the writer is mid-stream, then
                        // close: the parked remote write must finish with
                        // EPIPE and the default SIGPIPE disposition kills
                        // the writer.
                        let first = env.read(r, 4096).unwrap();
                        assert!(!first.is_empty());
                        env.close(r).unwrap();
                        let waited = env.wait(child as i32).unwrap();
                        assert_eq!(waited.exit_code, None, "child {child} must not exit normally");
                        assert_eq!(waited.status & 0x7f, Signal::SIGPIPE.number());
                        // Exactly-once: the child is fully reaped, a second
                        // wait must not find it again.
                        assert!(env.wait(child as i32).is_err());
                    }
                    0
                }),
            )
            .with_profile(instant_async()),
        ),
    );
    let kernel = Kernel::boot(config);
    let handle = kernel.spawn("/usr/bin/parent", &["parent"], &[]).unwrap();
    let status = handle
        .wait_timeout(Duration::from_secs(30))
        .expect("parent must reap all four writers");
    assert!(
        status.success(),
        "status: {status:?}, stderr: {}",
        handle.stderr_string()
    );
    kernel.shutdown();
}

// ---- cross-shard sockets ----------------------------------------------------

#[test]
fn curl_reaches_httpd_across_shards() {
    // `httpd` owns its listener on one shard; `curl` is placed round-robin,
    // so repeated fetches exercise the remote `connect` handshake and
    // cross-shard socket reads/writes.
    let kernel = boot_full(4);
    let _server = kernel
        .spawn("/usr/bin/httpd", &["httpd", "--max-requests", "4"], &[])
        .unwrap();
    assert!(kernel.wait_for_port(browsix_apps::HTTPD_PORT, Duration::from_secs(10)));
    for _ in 0..4 {
        let handle = kernel
            .spawn(
                "/usr/bin/curl",
                &[
                    "curl",
                    &format!("http://localhost:{}/hello.txt", browsix_apps::HTTPD_PORT),
                ],
                &[],
            )
            .unwrap();
        let status = handle.wait_timeout(Duration::from_secs(30)).expect("curl must finish");
        assert_eq!(status.code, Some(0), "stderr: {}", handle.stderr_string());
        assert!(
            handle.stdout_string().contains("hello from the vfs"),
            "body: {}",
            handle.stdout_string()
        );
    }
    kernel.shutdown();
}

// ---- multi-shard vs single-shard oracle -------------------------------------

/// Runs `command` through the shell on a fresh kernel with `shards` shards
/// (with `input` staged at `/input.txt`) and returns `(exit code, stdout)`.
fn run_sharded(shards: usize, input: &str, command: &str) -> (Option<i32>, String) {
    let kernel = boot_full(shards);
    kernel.fs().write_file("/input.txt", input.as_bytes()).unwrap();
    let handle = kernel.spawn("/bin/sh", &["sh", "-c", command], &[]).unwrap();
    let status = handle
        .wait_timeout(Duration::from_secs(30))
        .unwrap_or_else(|| panic!("command `{command}` hung under {shards} shards"));
    let out = handle.stdout_string();
    kernel.shutdown();
    (status.code, out)
}

/// One deterministic pipeline stage (no stage prints pids or timestamps, so
/// output depends only on input bytes — never on placement).
fn stage_command(stage: &(u8, u8)) -> String {
    match stage.0 % 5 {
        0 => "cat".to_owned(),
        1 => format!("head -n {}", stage.1 % 16 + 1),
        2 => format!("tail -n {}", stage.1 % 16 + 1),
        3 => "sort".to_owned(),
        _ => "wc -l".to_owned(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The behavioral oracle of the shard refactor: a random pipeline of
    /// spawns, pipes, an optional SIGPIPE-inducing truncation and process
    /// exits must produce byte-identical output (FIFO order preserved, every
    /// stage completing exactly once) on a 4-shard kernel and on the
    /// single-shard oracle.
    #[test]
    fn random_pipelines_match_the_single_shard_oracle(
        lines in proptest::collection::vec("[a-z]{1,12}", 1..24),
        stages in proptest::collection::vec((0u8..=255, 0u8..=255), 0..3),
        truncate in 0u8..16,
    ) {
        let input = lines.join("\n") + "\n";
        // Either a bounded source (`cat /input.txt`) or an infinite one that
        // a `head` stage truncates — the latter forces an EPIPE/SIGPIPE on
        // whichever shard the producer landed on.
        let mut command = if truncate < 8 {
            "cat /input.txt".to_owned()
        } else {
            format!("yes | head -n {}", truncate - 7)
        };
        for stage in &stages {
            command.push_str(" | ");
            command.push_str(&stage_command(stage));
        }
        let oracle = run_sharded(1, &input, &command);
        let sharded = run_sharded(4, &input, &command);
        prop_assert_eq!(&oracle, &sharded, "command: {}", command);
    }
}
