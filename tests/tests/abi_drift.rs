//! ABI drift gate: the wire encoding of every syscall and result shape is
//! pinned, byte for byte, against the golden corpus in `abi/golden_corpus.txt`.
//!
//! The corpus was blessed from the hand-written codec *before* the codec was
//! replaced by `browsix-abigen` output, so this test is the proof that the
//! generated codec is byte-identical to the legacy one — and afterwards it is
//! the permanent regression oracle for the wire format itself: any change to
//! the bytes an existing shape produces is an ABI break and fails here.
//!
//! Rules for this file (mirroring the append-only opcode rule in
//! `docs/ABI.md`):
//!
//! - Existing entries in [`corpus_calls`]/[`corpus_results`] must NEVER be
//!   edited or reordered: each line of the golden file is keyed by position.
//! - New syscalls/result shapes are APPENDED, then the corpus is re-blessed
//!   with `BROWSIX_ABI_BLESS=1 cargo test -p browsix-tests --test abi_drift`.
//!   The resulting `git diff` of `abi/golden_corpus.txt` must be append-only;
//!   changed existing lines mean the encoder broke compatibility.

use browsix_core::{
    ByteSource, CompletionBatch, PollRequest, SigAction, Signal, SysResult, Syscall, SyscallBatch, NONBLOCK, POLLHUP,
    POLLIN, POLLOUT, SIG_BLOCK,
};
use browsix_fs::{DirEntry, Errno, FileType, Metadata, OpenFlags};

/// One instance of every call variant (both `stat` spellings, both byte
/// sources, …), in the order originally blessed.  Append-only.
fn corpus_calls() -> Vec<Syscall> {
    vec![
        Syscall::Spawn {
            path: "/usr/bin/pdflatex".into(),
            args: vec!["pdflatex".into(), "main.tex".into()],
            env: vec![("HOME".into(), "/home".into())],
            cwd: Some("/home".into()),
            stdio: [None, Some(4), Some(5)],
        },
        Syscall::Fork {
            image: vec![1, 2, 3],
            resume_point: 42,
        },
        Syscall::Pipe2,
        Syscall::Wait4 { pid: -1, options: 1 },
        Syscall::Exit { code: 3 },
        Syscall::Kill {
            pid: 7,
            signal: Signal::SIGTERM,
        },
        Syscall::Kill {
            pid: -5,
            signal: Signal::SIGINT,
        },
        Syscall::SignalAction {
            signal: Signal::SIGCHLD,
            action: SigAction::Handler { restart: false },
        },
        Syscall::SignalAction {
            signal: Signal::SIGINT,
            action: SigAction::Handler { restart: true },
        },
        Syscall::SignalAction {
            signal: Signal::SIGTTIN,
            action: SigAction::Ignore,
        },
        Syscall::SignalAction {
            signal: Signal::SIGUSR1,
            action: SigAction::Default,
        },
        Syscall::Sigprocmask {
            how: SIG_BLOCK,
            mask: 0x4200,
        },
        Syscall::Setpgid { pid: 3, pgid: 3 },
        Syscall::Getpgid { pid: 0 },
        Syscall::Tcsetpgrp { pgid: 3 },
        Syscall::GetPid,
        Syscall::GetPPid,
        Syscall::GetCwd,
        Syscall::Chdir { path: "/tmp".into() },
        Syscall::Open {
            path: "/etc/passwd".into(),
            flags: OpenFlags::read_only(),
            mode: 0,
        },
        Syscall::Open {
            path: "/tmp/out".into(),
            flags: OpenFlags::write_create_truncate(),
            mode: 0o644,
        },
        Syscall::Close { fd: 3 },
        Syscall::Read { fd: 3, len: 4096 },
        Syscall::Pread {
            fd: 3,
            len: 16,
            offset: 100,
        },
        Syscall::Write {
            fd: 1,
            data: ByteSource::Inline(b"hello".to_vec()),
        },
        Syscall::Write {
            fd: 1,
            data: ByteSource::SharedHeap { offset: 4096, len: 17 },
        },
        Syscall::Pwrite {
            fd: 1,
            data: ByteSource::SharedHeap { offset: 64, len: 10 },
            offset: 0,
        },
        Syscall::Seek {
            fd: 3,
            offset: -10,
            whence: 2,
        },
        Syscall::Dup { fd: 1 },
        Syscall::Dup2 { from: 4, to: 1 },
        Syscall::Unlink { path: "/tmp/x".into() },
        Syscall::Truncate {
            path: "/tmp/x".into(),
            size: 10,
        },
        Syscall::Rename {
            from: "/a".into(),
            to: "/b".into(),
        },
        Syscall::Fsync { fd: 3 },
        Syscall::Poll {
            fds: vec![
                PollRequest { fd: 3, events: POLLIN },
                PollRequest {
                    fd: 5,
                    events: POLLIN | POLLOUT,
                },
            ],
            timeout_ms: -1,
        },
        Syscall::Poll {
            fds: Vec::new(),
            timeout_ms: 250,
        },
        Syscall::SetFlags { fd: 4, flags: NONBLOCK },
        Syscall::Readdir {
            path: "/usr/bin".into(),
        },
        Syscall::Mkdir {
            path: "/tmp/d".into(),
            mode: 0o755,
        },
        Syscall::Rmdir { path: "/tmp/d".into() },
        Syscall::Stat {
            path: "/etc".into(),
            lstat: false,
        },
        Syscall::Stat {
            path: "/etc".into(),
            lstat: true,
        },
        Syscall::Fstat { fd: 0 },
        Syscall::Access {
            path: "/bin/sh".into(),
            mode: 1,
        },
        Syscall::Readlink {
            path: "/proc/self".into(),
        },
        Syscall::Utimes {
            path: "/tmp/x".into(),
            atime_ms: 1,
            mtime_ms: 2,
        },
        Syscall::Socket,
        Syscall::Bind { fd: 3, port: 8080 },
        Syscall::GetSockName { fd: 3 },
        Syscall::Listen { fd: 3, backlog: 16 },
        Syscall::Accept { fd: 3 },
        Syscall::Connect { fd: 4, port: 8080 },
        Syscall::Ftruncate { fd: 5, size: 8192 },
        Syscall::Mmap {
            addr: 0,
            len: 1 << 20,
            prot: 3,
            flags: 0x22,
            fd: -1,
            offset: 0,
        },
        Syscall::Mmap {
            addr: 0x2000_0000,
            len: 4096,
            prot: 1,
            flags: 1,
            fd: 5,
            offset: 4096,
        },
        Syscall::Munmap {
            addr: 0x1000_0000,
            len: 1 << 20,
        },
        Syscall::Msync {
            addr: 0x2000_0000,
            len: 0,
        },
        Syscall::Mprotect {
            addr: 0x1000_0000,
            len: 4096,
            prot: 1,
        },
        Syscall::ShmOpen {
            name: "/ring".into(),
            flags: OpenFlags {
                create: true,
                ..OpenFlags::read_write()
            }
            .to_bits(),
            mode: 0o600,
        },
        Syscall::ShmUnlink { name: "/ring".into() },
        Syscall::VmRead {
            addr: 0x1000_0040,
            len: 64,
        },
        Syscall::VmWrite {
            addr: 0x1000_0040,
            data: ByteSource::Inline(b"cow me".to_vec()),
        },
        Syscall::VmWrite {
            addr: 0x1000_0080,
            data: ByteSource::SharedHeap { offset: 128, len: 32 },
        },
        Syscall::Sendfile {
            out_fd: 4,
            in_fd: 3,
            offset: -1,
            len: 1 << 20,
        },
        Syscall::Sendfile {
            out_fd: 5,
            in_fd: 3,
            offset: 8192,
            len: 4096,
        },
        Syscall::Splice {
            fd_in: 3,
            fd_out: 4,
            len: 65536,
        },
        Syscall::RingSetup {
            sq_offset: 512 * 1024,
            cq_offset: 512 * 1024 + 16 + 64 * 256,
            slots: 64,
            slot_bytes: 256,
            buf_offset: 512 * 1024 + 2 * (16 + 64 * 256),
            buf_count: 7,
            buf_bytes: 64 * 1024,
        },
        Syscall::Getrusage { who: 0 },
    ]
}

/// One instance of every result shape, in the order originally blessed.
/// Append-only, same rule as [`corpus_calls`].
fn corpus_results() -> Vec<SysResult> {
    vec![
        SysResult::Ok,
        SysResult::Int(42),
        SysResult::Int(-1),
        SysResult::Pair(3, 4),
        SysResult::Data(vec![0, 1, 2, 250]),
        SysResult::Path("/home/user".into()),
        SysResult::Stat(Metadata {
            file_type: FileType::Directory,
            size: 0,
            mode: 0o755,
            mtime_ms: 1234,
            atime_ms: 5678,
        }),
        SysResult::Entries(vec![DirEntry::file("a.txt"), DirEntry::dir("sub")]),
        SysResult::Wait { pid: 9, status: 256 },
        SysResult::Poll(vec![POLLIN, 0, POLLOUT | POLLHUP]),
        SysResult::Poll(Vec::new()),
        SysResult::DataFixed { buf: 3, len: 4096 },
        SysResult::Err(Errno::ENOENT),
    ]
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Renders the whole corpus as stable `kind index name: hex` lines.
fn render_corpus() -> String {
    let mut out = String::new();
    for (i, call) in corpus_calls().iter().enumerate() {
        let mut buf = Vec::new();
        call.encode_into(&mut buf);
        out.push_str(&format!("call {i:03} {}: {}\n", call.name(), hex(&buf)));
    }
    for (i, res) in corpus_results().iter().enumerate() {
        let mut buf = Vec::new();
        res.encode_into(&mut buf);
        out.push_str(&format!("result {i:03}: {}\n", hex(&buf)));
    }
    // Whole-frame entries pin the batch headers (magic, version, counts) too.
    let batch = SyscallBatch {
        entries: corpus_calls(),
    };
    out.push_str(&format!("batch syscalls: {}\n", hex(&batch.encode())));
    let completions = CompletionBatch {
        completions: corpus_results()
            .into_iter()
            .enumerate()
            .map(|(i, result)| browsix_core::Completion {
                index: i as u32,
                result,
            })
            .collect(),
    };
    out.push_str(&format!("batch completions: {}\n", hex(&completions.encode())));
    out
}

fn corpus_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../abi/golden_corpus.txt")
}

#[test]
fn wire_encoding_matches_pinned_golden_corpus() {
    let rendered = render_corpus();
    let path = corpus_path();
    if std::env::var("BROWSIX_ABI_BLESS").is_ok() {
        std::fs::write(&path, &rendered).expect("write golden corpus");
        eprintln!("blessed {} ({} lines)", path.display(), rendered.lines().count());
        return;
    }
    let golden = std::fs::read_to_string(&path).expect("abi/golden_corpus.txt missing; bless with BROWSIX_ABI_BLESS=1");
    let mut mismatches = Vec::new();
    for (i, (got, want)) in rendered.lines().zip(golden.lines()).enumerate() {
        if got != want {
            mismatches.push(format!("line {}: \n  pinned:  {}\n  current: {}", i + 1, want, got));
        }
    }
    let (got_n, want_n) = (rendered.lines().count(), golden.lines().count());
    assert!(
        got_n >= want_n,
        "corpus shrank: {got_n} lines rendered vs {want_n} pinned — existing shapes were removed or reordered"
    );
    assert!(
        mismatches.is_empty(),
        "wire encoding drifted from the pinned ABI corpus (this is an ABI break):\n{}",
        mismatches.join("\n")
    );
    // New appended shapes (got_n > want_n) are allowed here; re-bless and
    // commit the extended corpus alongside the IDL change.
    assert_eq!(
        got_n, want_n,
        "corpus has {} un-blessed new entries; run BROWSIX_ABI_BLESS=1 cargo test -p browsix-tests --test abi_drift and commit",
        got_n - want_n
    );
}

/// Every golden line must decode back to the exact corpus value: pins the
/// decoder as well as the encoder.
#[test]
fn golden_corpus_decodes_to_the_corpus_values() {
    for (i, call) in corpus_calls().iter().enumerate() {
        let mut buf = Vec::new();
        call.encode_into(&mut buf);
        let mut r = browsix_core::wire::Reader::new(&buf);
        let decoded = Syscall::decode_from(&mut r).unwrap_or_else(|| panic!("call {i} failed to decode"));
        assert_eq!(&decoded, call, "call {i} changed under decode round-trip");
        assert!(r.is_empty(), "call {i} left trailing bytes");
    }
    for (i, res) in corpus_results().iter().enumerate() {
        let mut buf = Vec::new();
        res.encode_into(&mut buf);
        let mut r = browsix_core::wire::Reader::new(&buf);
        let decoded = SysResult::decode_from(&mut r).unwrap_or_else(|| panic!("result {i} failed to decode"));
        assert_eq!(&decoded, res, "result {i} changed under decode round-trip");
        assert!(r.is_empty(), "result {i} left trailing bytes");
    }
}
