//! End-to-end tests: kernel + runtime + guest programs running as real
//! Browsix processes in workers, over both system-call conventions.

use std::sync::Arc;
use std::time::Duration;

use browsix_core::{BootConfig, Kernel, Signal};
use browsix_fs::{FileSystem, OpenFlags};
use browsix_runtime::{
    guest, EmscriptenLauncher, EmscriptenMode, ExecutionProfile, NodeLauncher, RuntimeEnv, SpawnStdio,
    SyscallConvention,
};

/// Boots a kernel with a single registered program and no injected delays.
fn boot_with(name: &'static str, launcher: Arc<dyn browsix_core::ProgramLauncher>) -> Kernel {
    let config = BootConfig::in_memory();
    config.registry.register(&format!("/usr/bin/{name}"), launcher);
    Kernel::boot(config)
}

fn instant_async() -> ExecutionProfile {
    ExecutionProfile::instant(SyscallConvention::Async)
}

#[test]
fn getrusage_reports_per_task_counters() {
    let launcher = NodeLauncher::new(
        "usage",
        guest("usage", |env: &mut dyn RuntimeEnv| {
            // A few syscalls so the counter has something to count.
            env.mkdir("/out").unwrap();
            env.getpid();
            let usage = env.getrusage().unwrap();
            assert!(usage.iter().any(|(k, _)| k == "maxrss"), "usage: {usage:?}");
            let syscalls = usage
                .iter()
                .find(|(k, _)| k == "syscalls")
                .map(|(_, v)| *v)
                .expect("a `syscalls` counter");
            // mkdir + getpid + the getrusage call itself were all dispatched
            // for this task before the counter was read.
            assert!(syscalls >= 3, "syscalls counter: {syscalls}");
            env.write_file("/out/usage.txt", syscalls.to_string().as_bytes())
                .unwrap();
            0
        }),
    )
    .with_profile(instant_async());
    let kernel = boot_with("usage", Arc::new(launcher));
    let handle = kernel.spawn("/usr/bin/usage", &["usage"], &[]).unwrap();
    let status = handle.wait();
    assert!(status.success(), "status: {status:?}");
    let reported: u64 = String::from_utf8(kernel.fs().read_file("/out/usage.txt").unwrap())
        .unwrap()
        .parse()
        .unwrap();
    assert!(reported >= 3);
    kernel.shutdown();
}

#[test]
fn node_process_writes_files_and_stdout() {
    let launcher = NodeLauncher::new(
        "writer",
        guest("writer", |env: &mut dyn RuntimeEnv| {
            env.mkdir("/out").unwrap();
            env.write_file("/out/result.txt", b"computed by a browsix process")
                .unwrap();
            env.print("done\n");
            0
        }),
    )
    .with_profile(instant_async());
    let kernel = boot_with("writer", Arc::new(launcher));
    let handle = kernel.spawn("/usr/bin/writer", &["writer"], &[]).unwrap();
    let status = handle.wait();
    assert!(status.success(), "status: {status:?}");
    assert_eq!(handle.stdout_string(), "done\n");
    assert_eq!(
        kernel.fs().read_file("/out/result.txt").unwrap(),
        b"computed by a browsix process"
    );
    kernel.shutdown();
}

#[test]
fn async_and_sync_conventions_produce_identical_results() {
    for mode in [EmscriptenMode::Emterpreter, EmscriptenMode::AsmJs] {
        let launcher = EmscriptenLauncher::new(
            "cprog",
            guest("cprog", |env: &mut dyn RuntimeEnv| {
                // Exercise a mix of calls: files, directories, metadata, seeks.
                env.mkdir("/work").unwrap();
                env.chdir("/work").unwrap();
                let fd = env.open("data.bin", OpenFlags::write_create_truncate()).unwrap();
                env.write(fd, &[7u8; 1000]).unwrap();
                env.close(fd).unwrap();
                let meta = env.stat("data.bin").unwrap();
                assert_eq!(meta.size, 1000);
                let fd = env.open("data.bin", OpenFlags::read_only()).unwrap();
                env.seek(fd, 990, 0).unwrap();
                let tail = env.read(fd, 100).unwrap();
                assert_eq!(tail.len(), 10);
                env.close(fd).unwrap();
                assert_eq!(env.getcwd(), "/work");
                let entries = env.readdir(".").unwrap();
                assert_eq!(entries.len(), 1);
                42
            }),
            mode,
        )
        .with_profile(ExecutionProfile::instant(match mode {
            EmscriptenMode::AsmJs => SyscallConvention::Sync,
            EmscriptenMode::Emterpreter => SyscallConvention::Async,
        }));
        let kernel = boot_with(
            "cprog",
            Arc::new(EmscriptenLauncher::new("cprog", guest("unused", |_| 0), mode)),
        );
        // Replace registration with the real launcher (constructed above).
        kernel.registry().register("/usr/bin/cprog", Arc::new(launcher));
        let handle = kernel.spawn("/usr/bin/cprog", &["cprog"], &[]).unwrap();
        let status = handle.wait();
        assert_eq!(status.code, Some(42), "mode {mode:?}");
        kernel.shutdown();
    }
}

#[test]
fn sync_convention_is_used_when_shared_memory_is_available() {
    let kernel = Kernel::boot(BootConfig::in_memory());
    kernel.registry().register(
        "/usr/bin/probe",
        Arc::new(
            EmscriptenLauncher::new(
                "probe",
                guest("probe", |env: &mut dyn RuntimeEnv| {
                    // Report which convention the runtime selected via the exit code.
                    match env.profile().convention {
                        SyscallConvention::Sync => 1,
                        SyscallConvention::Async => 2,
                        SyscallConvention::Direct => 3,
                    }
                }),
                EmscriptenMode::AsmJs,
            )
            .with_profile(ExecutionProfile {
                name: "probe",
                compute_ns_per_unit: 0,
                convention: SyscallConvention::Sync,
                inject_compute: false,
            }),
        ),
    );
    let handle = kernel.spawn("/usr/bin/probe", &["probe"], &[]).unwrap();
    assert_eq!(handle.wait().code, Some(1));
    let stats = kernel.stats();
    assert!(stats.sync_syscalls > 0, "expected synchronous syscalls, got {stats:?}");
    kernel.shutdown();
}

#[test]
fn pipes_connect_parent_and_child_processes() {
    let kernel = Kernel::boot(BootConfig::in_memory());
    kernel.registry().register(
        "/usr/bin/producer",
        Arc::new(
            NodeLauncher::new(
                "producer",
                guest("producer", |env: &mut dyn RuntimeEnv| {
                    env.print("line from producer\n");
                    0
                }),
            )
            .with_profile(instant_async()),
        ),
    );
    kernel.registry().register(
        "/usr/bin/parent",
        Arc::new(
            NodeLauncher::new(
                "parent",
                guest("parent", |env: &mut dyn RuntimeEnv| {
                    let (read_fd, write_fd) = env.pipe().unwrap();
                    let child = env
                        .spawn(
                            "/usr/bin/producer",
                            &["producer".to_string()],
                            SpawnStdio {
                                stdout: Some(write_fd),
                                ..SpawnStdio::default()
                            },
                        )
                        .unwrap();
                    env.close(write_fd).unwrap();
                    let output = env.read(read_fd, 1024).unwrap();
                    let waited = env.wait(child as i32).unwrap();
                    assert_eq!(waited.exit_code, Some(0));
                    env.print(&format!("got: {}", String::from_utf8_lossy(&output)));
                    0
                }),
            )
            .with_profile(instant_async()),
        ),
    );
    let handle = kernel.spawn("/usr/bin/parent", &["parent"], &[]).unwrap();
    let status = handle.wait();
    assert!(status.success());
    assert_eq!(handle.stdout_string(), "got: line from producer\n");
    kernel.shutdown();
}

#[test]
fn sigkill_terminates_a_looping_process() {
    let kernel = Kernel::boot(BootConfig::in_memory());
    kernel.registry().register(
        "/usr/bin/spin",
        Arc::new(
            NodeLauncher::new(
                "spin",
                guest("spin", |env: &mut dyn RuntimeEnv| {
                    // Loop "forever", issuing syscalls so termination is observed.
                    for _ in 0..1_000_000 {
                        if env.stat("/").is_err() {
                            break;
                        }
                    }
                    0
                }),
            )
            .with_profile(instant_async()),
        ),
    );
    let handle = kernel.spawn("/usr/bin/spin", &["spin"], &[]).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    kernel.kill(handle.pid, Signal::SIGKILL).unwrap();
    let status = handle.wait();
    assert_eq!(status.signal, Some(Signal::SIGKILL));
    assert_eq!(status.code, None);
    kernel.shutdown();
}

#[test]
fn sigterm_with_handler_is_caught_not_fatal() {
    let kernel = Kernel::boot(BootConfig::in_memory());
    kernel.registry().register(
        "/usr/bin/trap",
        Arc::new(
            NodeLauncher::new(
                "trap",
                guest("trap", |env: &mut dyn RuntimeEnv| {
                    env.register_signal_handler(Signal::SIGTERM).unwrap();
                    env.print("ready\n");
                    // Poll for the signal at "syscall boundaries".
                    for _ in 0..500 {
                        if env.pending_signals().contains(&Signal::SIGTERM) {
                            env.print("caught sigterm\n");
                            return 5;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    1
                }),
            )
            .with_profile(instant_async()),
        ),
    );
    let handle = kernel.spawn("/usr/bin/trap", &["trap"], &[]).unwrap();
    // Wait for the handler to be installed before signalling.
    for _ in 0..200 {
        if handle.stdout_string().contains("ready") {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    kernel.kill(handle.pid, Signal::SIGTERM).unwrap();
    let status = handle.wait();
    assert_eq!(status.code, Some(5));
    assert!(handle.stdout_string().contains("caught sigterm"));
    kernel.shutdown();
}

#[test]
fn fork_creates_a_child_with_the_parent_image() {
    let kernel = Kernel::boot(BootConfig::in_memory());
    kernel.registry().register(
        "/usr/bin/forker",
        Arc::new(
            EmscriptenLauncher::new(
                "forker",
                guest("forker", |env: &mut dyn RuntimeEnv| {
                    if let Some(image) = env.fork_image() {
                        // Child: resume from the snapshot.
                        env.write_file("/forked.txt", &image).unwrap();
                        return 0;
                    }
                    // Parent: snapshot state and fork.
                    let child = env.fork(b"state captured before fork".to_vec()).unwrap();
                    let waited = env.wait(child as i32).unwrap();
                    assert_eq!(waited.exit_code, Some(0));
                    7
                }),
                EmscriptenMode::Emterpreter,
            )
            .with_profile(instant_async()),
        ),
    );
    let handle = kernel.spawn("/usr/bin/forker", &["forker"], &[]).unwrap();
    let status = handle.wait();
    assert_eq!(status.code, Some(7));
    assert_eq!(
        kernel.fs().read_file("/forked.txt").unwrap(),
        b"state captured before fork"
    );
    kernel.shutdown();
}

#[test]
fn wait_reports_child_exit_codes_and_echild_when_no_children() {
    let kernel = Kernel::boot(BootConfig::in_memory());
    kernel.registry().register(
        "/usr/bin/failing",
        Arc::new(
            NodeLauncher::new("failing", guest("failing", |_env: &mut dyn RuntimeEnv| 3)).with_profile(instant_async()),
        ),
    );
    kernel.registry().register(
        "/usr/bin/waiter",
        Arc::new(
            NodeLauncher::new(
                "waiter",
                guest("waiter", |env: &mut dyn RuntimeEnv| {
                    assert_eq!(env.wait(-1).unwrap_err(), browsix_core::Errno::ECHILD);
                    let child = env
                        .spawn("/usr/bin/failing", &["failing".to_string()], SpawnStdio::inherit())
                        .unwrap();
                    let waited = env.wait(child as i32).unwrap();
                    assert_eq!(waited.exit_code, Some(3));
                    assert_eq!(waited.pid, child);
                    0
                }),
            )
            .with_profile(instant_async()),
        ),
    );
    let handle = kernel.spawn("/usr/bin/waiter", &["waiter"], &[]).unwrap();
    assert!(handle.wait().success());
    kernel.shutdown();
}

#[test]
fn kernel_stats_count_processes_and_syscalls() {
    let kernel = Kernel::boot(BootConfig::in_memory());
    kernel.registry().register(
        "/usr/bin/noop",
        Arc::new(
            NodeLauncher::new(
                "noop",
                guest("noop", |env: &mut dyn RuntimeEnv| {
                    let _ = env.getpid();
                    let _ = env.stat("/");
                    0
                }),
            )
            .with_profile(instant_async()),
        ),
    );
    let handle = kernel.spawn("/usr/bin/noop", &["noop"], &[]).unwrap();
    handle.wait();
    let stats = kernel.stats();
    assert!(stats.processes_spawned >= 1);
    assert!(stats.processes_exited >= 1);
    assert!(stats.count("getpid") >= 1);
    assert!(stats.count("stat") >= 1);
    assert!(stats.total_syscalls >= 3);
    kernel.shutdown();
}
