//! End-to-end tests for the persistent syscall rings and the zero-copy data
//! path: `httpd` serving a large file over `sendfile` without the bytes ever
//! entering guest memory, and a shell pipeline whose every system call rides
//! the shared-memory submission/completion rings instead of framed messages.

use std::sync::Arc;
use std::time::Duration;

use browsix_fs::FileSystem;
use browsix_http::{HttpRequest, Method};
use browsix_runtime::{ExecutionProfile, NodeLauncher, SyscallConvention, RINGS_ENV_VAR};

fn instant(convention: SyscallConvention) -> ExecutionProfile {
    ExecutionProfile::instant(convention)
}

// ---- sendfile: zero-copy file serving ----------------------------------------

/// One megabyte served end-to-end over `sendfile`: the body must arrive
/// intact, the kernel must account a full megabyte of zero-copy transfer
/// (256 pages), and — the point of the exercise — the guest's data-path
/// `read`/`write` traffic must NOT scale with the body.  The server touches
/// the request line and the response header; the 1 MiB of payload moves
/// page cache → socket entirely inside the kernel.
#[test]
fn httpd_serves_one_mebibyte_over_sendfile_with_zero_data_path_syscalls() {
    const BODY: usize = 1024 * 1024;
    let config = browsix_apps::default_config();
    config.registry.register(
        "/usr/bin/httpd",
        Arc::new(
            NodeLauncher::new("httpd", browsix_apps::httpd_program()).with_profile(instant(SyscallConvention::Async)),
        ),
    );
    let kernel = browsix_apps::boot_standard_kernel(config, instant(SyscallConvention::Async));
    browsix_apps::stage_httpd_root(kernel.fs().as_ref());
    let payload: Vec<u8> = (0..BODY).map(|i| (i % 241) as u8).collect();
    kernel
        .fs()
        .write_file(&format!("{}/big.bin", browsix_apps::HTTPD_ROOT), &payload)
        .expect("stage big.bin");

    let server = kernel.spawn("/usr/bin/httpd", &["httpd"], &[]).expect("start httpd");
    assert!(kernel.wait_for_port(browsix_apps::HTTPD_PORT, Duration::from_secs(10)));

    // Settle, then snapshot: everything after `before` belongs to one request.
    let before = kernel.stats();
    let response = kernel
        .http_request(
            browsix_apps::HTTPD_PORT,
            HttpRequest::new(Method::Get, "/big.bin"),
            Duration::from_secs(30),
        )
        .expect("big.bin request");
    assert!(response.is_success());
    assert_eq!(response.body.len(), BODY);
    assert_eq!(response.body, payload, "sendfile corrupted the body");
    let after = kernel.stats();

    // The megabyte moved over sendfile, page by page, inside the kernel.
    assert!(after.count("sendfile") > before.count("sendfile"), "no sendfile issued");
    assert!(
        after.sendfile_bytes - before.sendfile_bytes >= BODY as u64,
        "sendfile moved {} bytes, expected at least {BODY}",
        after.sendfile_bytes - before.sendfile_bytes
    );
    assert!(
        after.zero_copy_pages - before.zero_copy_pages >= (BODY / 4096) as u64,
        "zero-copy page count did not cover the body: {}",
        after.zero_copy_pages - before.zero_copy_pages
    );

    // Zero data-path read/write syscalls: the guest read the request line and
    // wrote the header — a handful of calls — but nothing proportional to the
    // 1 MiB body (the copy path would need ≥ 16 round trips at 64 KiB each,
    // each a read AND a write).
    let reads = after.count("read") - before.count("read");
    let writes = after.count("write") - before.count("write");
    assert!(reads <= 4, "data-path reads leaked into the guest: {reads} reads");
    assert!(writes <= 4, "data-path writes leaked into the guest: {writes} writes");

    let _ = kernel.kill(server.pid, browsix_core::Signal::SIGKILL);
    kernel.shutdown();
}

/// `--copy` is the control: same request, classic read-then-write loop.  The
/// body still arrives intact but the zero-copy counters stay flat — proving
/// the sendfile test above is measuring the mechanism, not noise.
#[test]
fn httpd_copy_mode_serves_the_same_bytes_without_zero_copy() {
    let config = browsix_apps::default_config();
    config.registry.register(
        "/usr/bin/httpd",
        Arc::new(
            NodeLauncher::new("httpd", browsix_apps::httpd_program()).with_profile(instant(SyscallConvention::Async)),
        ),
    );
    let kernel = browsix_apps::boot_standard_kernel(config, instant(SyscallConvention::Async));
    browsix_apps::stage_httpd_root(kernel.fs().as_ref());
    let server = kernel
        .spawn("/usr/bin/httpd", &["httpd", "--copy"], &[])
        .expect("start httpd --copy");
    assert!(kernel.wait_for_port(browsix_apps::HTTPD_PORT, Duration::from_secs(10)));

    let before = kernel.stats();
    let response = kernel
        .http_request(
            browsix_apps::HTTPD_PORT,
            HttpRequest::new(Method::Get, "/payload.bin"),
            Duration::from_secs(30),
        )
        .expect("payload request");
    assert!(response.is_success());
    assert_eq!(response.body.len(), 32 * 1024);
    let after = kernel.stats();

    assert_eq!(
        after.sendfile_bytes, before.sendfile_bytes,
        "--copy must not use sendfile"
    );
    assert!(
        after.count("write") - before.count("write") >= 1,
        "copy mode serves the body through write"
    );

    let _ = kernel.kill(server.pid, browsix_core::Signal::SIGKILL);
    kernel.shutdown();
}

// ---- rings: the shell pipeline as transport workout --------------------------

/// Boots a kernel whose shell and coreutils are asm.js builds running the
/// synchronous convention — the only configuration where processes get a
/// shared heap, and therefore the one where the persistent rings engage.
/// (The standard registrations use Emterpreter/Node launchers, which are
/// async-only, exactly as in the paper.)
fn boot_sync_world() -> browsix_core::Kernel {
    use browsix_runtime::{EmscriptenLauncher, EmscriptenMode};
    let config = browsix_apps::default_config();
    let sync = instant(SyscallConvention::Sync);
    let shell = Arc::new(
        EmscriptenLauncher::new("dash", browsix_shell::shell_program(), EmscriptenMode::AsmJs)
            .with_profile(sync.clone()),
    );
    config
        .registry
        .register("/bin/sh", shell.clone() as Arc<dyn browsix_core::ProgramLauncher>);
    config
        .registry
        .register("/bin/dash", shell as Arc<dyn browsix_core::ProgramLauncher>);
    for (name, factory) in browsix_utils::all_utilities() {
        config.registry.register(
            &format!("/usr/bin/{name}"),
            Arc::new(EmscriptenLauncher::new(name, factory, EmscriptenMode::AsmJs).with_profile(sync.clone())),
        );
    }
    let kernel = browsix_core::Kernel::boot(config);
    for dir in ["/home", "/tmp", "/usr", "/usr/bin", "/bin"] {
        let _ = kernel.fs().mkdir(dir);
    }
    kernel
}

/// A real shell pipeline under the Sync convention: every process sets up a
/// ring at startup and submits its system calls through it.  The pipeline's
/// output must be correct AND the kernel's ring counters must show the
/// transport actually carried the traffic (SQEs drained, doorbells rung,
/// CQEs posted).
#[test]
fn shell_pipeline_runs_over_the_ring_transport() {
    let kernel = boot_sync_world();
    let handle = kernel
        .spawn("/bin/sh", &["sh", "-c", "echo over the ring | cat"], &[])
        .expect("spawn pipeline");
    let status = handle
        .wait_timeout(Duration::from_secs(30))
        .expect("pipeline must finish");
    assert_eq!(status.code, Some(0), "stderr: {}", handle.stderr_string());
    assert_eq!(handle.stdout_string(), "over the ring\n");

    let stats = kernel.stats();
    assert!(stats.sq_polled > 0, "no SQEs were drained — rings never engaged");
    assert!(stats.cq_posted > 0, "no CQEs were posted");
    assert!(stats.doorbells > 0, "no doorbells were rung");
    // The shell, echo and cat all submitted real work through the rings: far
    // more entries than the handful of ring_setup calls themselves.
    assert!(
        stats.sq_polled > stats.count("ring_setup"),
        "rings carried only their own setup traffic"
    );
    kernel.shutdown();
}

/// `BROWSIX_SYSCALL_RINGS=0` in a process's environment opts it out: the
/// pipeline still works, entirely over the framed fallback, and the ring
/// counters stay at zero.
#[test]
fn rings_can_be_disabled_per_process_via_the_environment() {
    let kernel = boot_sync_world();
    let handle = kernel
        .spawn(
            "/bin/sh",
            &["sh", "-c", "echo framed fallback | cat"],
            &[(RINGS_ENV_VAR, "0")],
        )
        .expect("spawn pipeline");
    let status = handle
        .wait_timeout(Duration::from_secs(30))
        .expect("pipeline must finish");
    assert_eq!(status.code, Some(0), "stderr: {}", handle.stderr_string());
    assert_eq!(handle.stdout_string(), "framed fallback\n");

    let stats = kernel.stats();
    assert_eq!(stats.sq_polled, 0, "disabled rings must carry no traffic");
    assert_eq!(stats.count("ring_setup"), 0, "disabled rings must not even be set up");
    kernel.shutdown();
}
