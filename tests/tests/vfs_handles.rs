//! End-to-end tests for the inode/handle-based VFS: descriptor I/O through
//! open-file handles, O_APPEND atomicity, EXDEV across mounts, fsync, and
//! the cache counters surfaced in the kernel statistics.

use std::sync::Arc;

use browsix_browser::{NetworkProfile, RemoteEndpoint, StaticFiles};
use browsix_core::{BootConfig, Kernel};
use browsix_fs::{Errno, FileSystem, HttpFs, MemFs, OpenFlags};
use browsix_runtime::{guest, ExecutionProfile, NodeLauncher, RuntimeEnv, SyscallConvention};

/// Boots a kernel with a single registered program and no injected delays.
fn boot_with(name: &'static str, body: fn(&mut dyn RuntimeEnv) -> i32) -> Kernel {
    let config = BootConfig::in_memory();
    config.registry.register(
        &format!("/usr/bin/{name}"),
        Arc::new(
            NodeLauncher::new(name, guest(name, body))
                .with_profile(ExecutionProfile::instant(SyscallConvention::Async)),
        ),
    );
    Kernel::boot(config)
}

fn run(kernel: &Kernel, name: &str) {
    let handle = kernel.spawn(&format!("/usr/bin/{name}"), &[name], &[]).unwrap();
    let status = handle.wait();
    assert!(status.success(), "guest failed: {status:?}\n{}", handle.stdout_string());
}

#[test]
fn o_append_interleaved_descriptors_never_clobber() {
    let kernel = boot_with("appender", |env| {
        // Two *independent* open-file descriptions plus a dup'd alias of the
        // first: three descriptors appending interleaved.  Every write must
        // land at the then-current end of file — the regression this guards
        // against is an O_APPEND write trusting a stale stored offset.
        let a = env.open("/log", OpenFlags::append_create()).unwrap();
        let b = env.open("/log", OpenFlags::append_create()).unwrap();
        env.dup2(a, 9).unwrap();
        env.write(a, b"a1 ").unwrap();
        env.write(b, b"b1 ").unwrap();
        env.write(9, b"d1 ").unwrap();
        env.write(b, b"b2 ").unwrap();
        env.write(a, b"a2 ").unwrap();
        env.close(a).unwrap();
        env.close(b).unwrap();
        env.close(9).unwrap();
        0
    });
    run(&kernel, "appender");
    assert_eq!(kernel.fs().read_file("/log").unwrap(), b"a1 b1 d1 b2 a2 ");
    kernel.shutdown();
}

#[test]
fn o_append_reads_start_at_zero_but_writes_go_to_the_end() {
    let kernel = boot_with("append-rw", |env| {
        env.write_file("/notes", b"head ").unwrap();
        let fd = env
            .open(
                "/notes",
                OpenFlags {
                    read: true,
                    write: true,
                    append: true,
                    ..OpenFlags::default()
                },
            )
            .unwrap();
        // POSIX: the offset starts at 0 for reading...
        assert_eq!(env.read(fd, 5).unwrap(), b"head ");
        // ...but every write seeks to the end first,
        env.write(fd, b"tail").unwrap();
        // and leaves the offset at the new end.
        assert_eq!(env.seek(fd, 0, 1).unwrap(), 9);
        env.close(fd).unwrap();
        0
    });
    run(&kernel, "append-rw");
    assert_eq!(kernel.fs().read_file("/notes").unwrap(), b"head tail");
    kernel.shutdown();
}

#[test]
fn rename_across_mounts_is_exdev() {
    let kernel = boot_with("mover", |env| {
        env.write_file("/file.txt", b"payload").unwrap();
        // /scratch is a different backend: rename must report EXDEV and
        // leave the source untouched.
        assert_eq!(env.rename("/file.txt", "/scratch/file.txt"), Err(Errno::EXDEV));
        assert_eq!(env.read_file("/file.txt").unwrap(), b"payload");
        // Same-backend rename still works.
        env.rename("/file.txt", "/renamed.txt").unwrap();
        0
    });
    kernel.fs().mount("/scratch", Arc::new(MemFs::new())).unwrap();
    run(&kernel, "mover");
    assert_eq!(kernel.fs().read_file("/renamed.txt").unwrap(), b"payload");
    kernel.shutdown();
}

#[test]
fn fsync_succeeds_on_files_and_fails_on_pipes() {
    let kernel = boot_with("syncer", |env| {
        let fd = env.open("/data", OpenFlags::write_create_truncate()).unwrap();
        env.write(fd, b"durable").unwrap();
        env.fsync(fd).unwrap();
        env.close(fd).unwrap();
        assert_eq!(env.fsync(fd), Err(Errno::EBADF));
        let (r, w) = env.pipe().unwrap();
        assert_eq!(env.fsync(w), Err(Errno::EINVAL));
        assert_eq!(env.fsync(r), Err(Errno::EINVAL));
        0
    });
    run(&kernel, "syncer");
    kernel.shutdown();
}

#[test]
fn open_descriptor_keeps_working_across_rename_and_unlink() {
    let kernel = boot_with("inode-user", |env| {
        env.write_file("/doc.txt", b"version-1").unwrap();
        let fd = env.open("/doc.txt", OpenFlags::read_write()).unwrap();
        // Rename the file out from under the descriptor: I/O keeps working
        // because the descriptor is bound to the inode, not the name.
        env.rename("/doc.txt", "/doc-final.txt").unwrap();
        env.pwrite(fd, b"VERSION-2", 0).unwrap();
        assert_eq!(env.pread(fd, 9, 0).unwrap(), b"VERSION-2");
        // Even after unlink the open descriptor stays usable.
        env.unlink("/doc-final.txt").unwrap();
        assert_eq!(env.stat("/doc-final.txt"), Err(Errno::ENOENT));
        assert_eq!(env.pread(fd, 9, 0).unwrap(), b"VERSION-2");
        env.close(fd).unwrap();
        0
    });
    run(&kernel, "inode-user");
    kernel.shutdown();
}

#[test]
fn kernel_stats_surface_vfs_cache_counters() {
    let kernel = boot_with("reader", |env| {
        // Descriptor reads of an httpfs-backed file in small chunks: the
        // page cache turns them into one ranged fetch plus cache hits.
        let fd = env.open("/remote/blob.bin", OpenFlags::read_only()).unwrap();
        let mut total = 0;
        loop {
            let chunk = env.read(fd, 512).unwrap();
            if chunk.is_empty() {
                break;
            }
            total += chunk.len();
        }
        assert_eq!(total, 8192);
        env.close(fd).unwrap();
        // Path-heavy loop to exercise the dentry cache.
        for _ in 0..10 {
            env.stat("/remote/blob.bin").unwrap();
        }
        0
    });
    let files = StaticFiles::new();
    files.insert("/blob.bin", vec![5u8; 8192]);
    let endpoint = RemoteEndpoint::with_static_files(files, NetworkProfile::instant());
    let http = HttpFs::new(endpoint, vec![("/blob.bin".to_string(), 8192)]).with_page_size(1024);
    kernel.fs().mount("/remote", Arc::new(http)).unwrap();

    run(&kernel, "reader");
    let stats = kernel.stats();
    assert!(stats.page_cache_misses > 0, "pages must have been fetched");
    assert!(stats.page_cache_hits > 0, "chunked reads must hit the page cache");
    assert!(stats.dentry_cache_hits > 0, "repeated stats must hit the dentry cache");
    assert_eq!(stats.count("fsync"), 0);
    kernel.shutdown();
}
