//! Quickstart: boot a Browsix kernel, run Unix programs in it, compose them
//! with pipes from the shell, and read results back from the shared file
//! system — the `kernel.system(...)` flow of Figure 4 in the paper.
//!
//! Run with: `cargo run -p browsix-apps --example quickstart`

use browsix_apps::{boot_standard_kernel, default_config, Terminal};
use browsix_fs::FileSystem;
use browsix_runtime::{ExecutionProfile, SyscallConvention};

fn main() {
    // Boot the kernel with the coreutils and the dash-like shell registered.
    // The "instant" profile disables the calibrated JavaScript cost model so
    // the example is snappy; benchmarks use the calibrated profiles.
    let kernel = boot_standard_kernel(default_config(), ExecutionProfile::instant(SyscallConvention::Async));

    // The embedding application shares the kernel's file system directly.
    kernel.fs().mkdir("/home/demo").unwrap();
    kernel
        .fs()
        .write_file("/home/demo/fruit.txt", b"apple\nbanana\napple pie\ncherry\n")
        .unwrap();

    // kernel.system(): run a single program, capture its output and exit code.
    let handle = kernel.system("ls -l /usr/bin").expect("spawn ls");
    let status = handle.wait();
    println!("`ls -l /usr/bin` exited with {:?}", status.code);
    println!("{}", handle.stdout_string());

    // The terminal wraps the shell: pipelines, redirection, expansion.
    let mut terminal = Terminal::new(kernel);
    let result = terminal
        .run_line("cat /home/demo/fruit.txt | grep apple | sort > /home/demo/apples.txt")
        .expect("run pipeline");
    println!("pipeline exited with {}", result.exit_code);

    let apples = terminal.kernel().fs().read_file("/home/demo/apples.txt").unwrap();
    println!("apples.txt:\n{}", String::from_utf8_lossy(&apples));

    // Kernel statistics: how many system calls the pipeline issued.
    let stats = terminal.kernel().stats();
    println!(
        "kernel handled {} syscalls from {} processes ({} bytes structured-cloned)",
        stats.total_syscalls, stats.processes_spawned, stats.bytes_copied
    );

    terminal.into_kernel().shutdown();
}
