//! The meme-generator case study: the same Go-style server runs remotely and
//! inside Browsix; the client routes requests based on network and device
//! characteristics, so meme generation keeps working offline.
//!
//! Run with: `cargo run -p browsix-apps --example meme_generator`

use browsix_apps::meme::{MemeClient, MemeEnvironment, RouteDecision};

fn main() {
    // Boot the kernel, start the in-Browsix server (waiting for its socket
    // notification), and stand up the simulated remote deployment.
    let client = MemeClient::new(MemeEnvironment::boot_for_tests(), /* desktop */ false);

    // Mobile device with the network up: the policy prefers the remote server.
    let (route, backgrounds) = client.list_backgrounds().expect("list backgrounds");
    println!("available backgrounds (served by {route:?}): {backgrounds:?}");

    let (route, meme) = client
        .generate(
            "grumpy-cat.png",
            "I DO NOT ALWAYS RUN SERVERS",
            "BUT WHEN I DO, IT IS IN A BROWSER",
        )
        .expect("generate meme");
    println!("generated a {}-byte meme via {route:?}", meme.len());

    // The network disappears: requests transparently fail over to the
    // in-Browsix server — disconnected operation, no code changes.
    client.environment().remote.set_online(false);
    let (route, meme) = client
        .generate("doge.png", "SUCH OFFLINE", "VERY KERNEL")
        .expect("generate offline");
    assert_eq!(route, RouteDecision::InBrowsix);
    println!("offline: generated a {}-byte meme via {route:?}", meme.len());

    // Inspect what the in-Browsix server did.
    let stats = client.environment().kernel.stats();
    println!(
        "in-browser server: {} syscalls, listening ports: {:?}",
        stats.total_syscalls,
        client.environment().kernel.listening_ports()
    );
}
