//! The LaTeX editor case study: build a single-page paper with a bibliography
//! entirely "in the browser" — make, pdflatex and bibtex run as Browsix
//! processes and the TeX Live distribution is fetched lazily over HTTP.
//!
//! Run with: `cargo run -p browsix-apps --example latex_editor`
//! (pass `--calibrated` to use the paper-calibrated cost model, which makes
//! the sync/async builds take seconds, as in the paper).

use browsix_apps::latex::{LatexEditor, LatexEnvironment, LatexMode};
use browsix_browser::NetworkProfile;

fn main() {
    let calibrated = std::env::args().any(|a| a == "--calibrated");
    let scale = if calibrated { 1.0 } else { 0.02 };

    for (label, mode) in [
        ("synchronous syscalls (Chrome, asm.js)", LatexMode::Sync),
        ("asynchronous syscalls (Emterpreter, needed for fork)", LatexMode::Async),
    ] {
        println!("== building with {label} ==");
        let editor = LatexEditor::new(LatexEnvironment::boot(mode, scale, NetworkProfile::cdn()));
        println!("editor shows {} bytes of LaTeX source", editor.document().len());

        let outcome = editor.build_pdf();
        println!("build succeeded: {}", outcome.success);
        println!("build time: {:.2}s", outcome.elapsed.as_secs_f64());
        if let Some(pdf) = &outcome.pdf {
            println!("generated PDF: {} bytes", pdf.len());
        }
        let stats = editor.environment().texlive.stats();
        println!(
            "TeX Live: fetched {} of {} files lazily over HTTP ({} bytes)",
            stats.fetches,
            editor.environment().texlive.manifest_len(),
            stats.bytes_fetched
        );
        for line in outcome.stdout.lines().take(6) {
            println!("  | {line}");
        }
        println!();
    }
}
