//! The Browsix terminal case study: a scripted interactive session against
//! the dash-like shell, exercising pipelines, redirection, variables,
//! background jobs and `ps`-style kernel inspection.
//!
//! Run with: `cargo run -p browsix-apps --example terminal_session`

use browsix_apps::{boot_standard_kernel, default_config, Terminal};
use browsix_runtime::{ExecutionProfile, SyscallConvention};

fn main() {
    let kernel = boot_standard_kernel(default_config(), ExecutionProfile::instant(SyscallConvention::Async));
    let mut terminal = Terminal::new(kernel);

    let session = r#"
        mkdir -p /home/user/notes
        cd /
        echo apple > /home/user/notes/fruit.txt
        echo banana >> /home/user/notes/fruit.txt
        echo cherry >> /home/user/notes/fruit.txt
        cat /home/user/notes/fruit.txt | sort -r | head -n 2
        wc -l /home/user/notes/fruit.txt
        sha1sum /home/user/notes/fruit.txt
        GREETING=hello
        echo $GREETING from the browsix terminal
        ls /home/user/notes
        false || echo "the || operator works"
    "#;

    for line in session.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let result = terminal.run_line(line).expect("run command");
        println!("$ {line}");
        print!("{}", result.stdout);
        if !result.stderr.is_empty() {
            eprint!("{}", result.stderr);
        }
        if result.exit_code != 0 {
            println!("[exit {}]", result.exit_code);
        }
    }

    println!("\nkernel task table (ps):");
    for (pid, ppid, name, state) in terminal.ps() {
        println!("  pid={pid:<4} ppid={ppid:<4} {state:<8} {name}");
    }
    println!("\ncommand history: {} lines", terminal.history().len());
    terminal.into_kernel().shutdown();
}
